//! The Section 6 reduction: CNF satisfiability as an existential query over a
//! normal form.
//!
//! A CNF formula is encoded as a complex object of type `{<int × bool>}`:
//!
//! * a positive literal `u` is the pair `(u, true)`, a negative literal `¬u`
//!   is `(u, false)`;
//! * a clause (disjunction) is the **or-set** of its literal encodings;
//! * the conjunction of clauses is the ordinary **set** of its clause
//!   encodings.
//!
//! Conceptually the object stands for a set of literal choices — one literal
//! per clause.  Such a choice corresponds to a satisfying assignment exactly
//! when it never picks both `(u, true)` and `(u, false)`, i.e. when the
//! chosen set satisfies the functional dependency *variable → polarity*.
//! Hence the paper's existential query
//!
//! ```text
//! ∃(p)(normalize(x))        p = "the functional dependency #1 → #2 holds"
//! ```
//!
//! is true iff the formula is satisfiable, which shows that existential
//! queries over normal forms cannot be answered in time polynomial in the
//! size of the *unnormalized* object unless P = NP.
//!
//! Three evaluation strategies are provided (compared in experiments E7 and
//! E12): eager normalization, lazy normalization with early exit, and the
//! DPLL baseline of [`crate::dpll`].

use or_nra::derived::{cartesian_product, forall, negate};
use or_nra::lazy::LazyNormalizer;
use or_nra::morphism::Morphism as M;
use or_nra::prelude::{eval, or_exists};
use or_nra::EvalError;
use or_object::{Type, Value};

use crate::cnf::{Cnf, Literal};
use crate::dpll;

/// Encode a literal as `(variable, polarity)`.
pub fn encode_literal(lit: Literal) -> Value {
    Value::pair(Value::Int(lit.var as i64), Value::Bool(lit.positive))
}

/// Encode a CNF formula as an object of type `{<int × bool>}`.
pub fn encode_cnf(cnf: &Cnf) -> Value {
    Value::set(
        cnf.clauses
            .iter()
            .map(|clause| Value::orset(clause.literals.iter().copied().map(encode_literal))),
    )
}

/// The type of encoded formulae.
pub fn encoding_type() -> Type {
    Type::set(Type::orset(Type::prod(Type::Int, Type::Bool)))
}

/// The predicate `p : {int × bool} → bool` checking the functional dependency
/// "variable determines polarity": whenever `(x, b)` and `(x, b')` are both
/// in the relation, `b = b'`.  This is the paper's relational-algebra
/// predicate, built from the derived operator library.
pub fn fd_predicate() -> M {
    // the element of the pairwise product is ((x, b), (y, b'))
    let same_var = M::pair(M::Proj1.then(M::Proj1), M::Proj2.then(M::Proj1)).then(M::Eq);
    let same_polarity = M::pair(M::Proj1.then(M::Proj2), M::Proj2.then(M::Proj2)).then(M::Eq);
    let violation = M::pair(same_var, negate(same_polarity)).then(M::Prim(or_nra::Prim::And));
    M::pair(M::Id, M::Id)
        .then(cartesian_product())
        .then(forall(negate(violation)))
}

/// The full or-NRA⁺ existential query `∃(p) ∘ normalize : {<int × bool>} → bool`.
pub fn existential_sat_query() -> M {
    M::Normalize.then(or_exists(fd_predicate()))
}

/// Decide satisfiability by evaluating the existential query with eager
/// normalization (materializes the whole normal form — exponential).
pub fn sat_by_eager_normalization(cnf: &Cnf) -> Result<bool, EvalError> {
    if cnf.clauses.is_empty() {
        // The empty conjunction encodes to the empty set, whose *typed*
        // normal form at {<int × bool>} is <{}>; the empty choice satisfies
        // the functional dependency vacuously, so the query is true.  (The
        // untyped `normalize` primitive would leave the empty set unchanged —
        // see the discussion in or_nra::normalize — so we answer the
        // degenerate case directly.)
        return Ok(true);
    }
    let encoded = encode_cnf(cnf);
    let result = eval(&existential_sat_query(), &encoded)?;
    Ok(result == Value::Bool(true))
}

/// The outcome of the lazy evaluation strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LazySatOutcome {
    /// Whether the formula is satisfiable.
    pub satisfiable: bool,
    /// The witnessing choice of literals, if satisfiable.
    pub witness: Option<Value>,
    /// How many candidate denotations were inspected before stopping.
    pub inspected: u128,
    /// The total number of denotations the eager strategy would build.
    pub total: u128,
}

/// Decide satisfiability by lazily enumerating the normal form and stopping
/// at the first candidate satisfying the functional dependency (the
/// stream-based evaluation suggested in the paper's conclusion).
pub fn sat_by_lazy_normalization(cnf: &Cnf) -> Result<LazySatOutcome, EvalError> {
    let encoded = encode_cnf(cnf);
    let predicate = fd_predicate();
    let mut lazy = LazyNormalizer::new(&encoded);
    let total = lazy.total();
    let (witness, inspected) =
        lazy.find_witness(|candidate| Ok(eval(&predicate, candidate)? == Value::Bool(true)))?;
    Ok(LazySatOutcome {
        satisfiable: witness.is_some(),
        witness,
        inspected,
        total,
    })
}

/// Decide satisfiability with the DPLL baseline.
pub fn sat_by_dpll(cnf: &Cnf) -> bool {
    dpll::is_satisfiable(cnf)
}

/// Extract a variable assignment from a witnessing set of literal encodings
/// (unmentioned variables default to `false`).
pub fn assignment_from_witness(witness: &Value, num_vars: u32) -> Option<Vec<bool>> {
    let items = match witness {
        Value::Set(items) => items,
        _ => return None,
    };
    let mut assignment = vec![false; num_vars as usize];
    for item in items {
        let (var, polarity) = item.as_pair()?;
        let var = var.as_int()? as usize;
        let polarity = polarity.as_bool()?;
        if var < assignment.len() {
            assignment[var] = polarity;
        }
    }
    Some(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Clause, CnfGenerator};

    fn cnf_of(clauses: &[&[(u32, bool)]]) -> Cnf {
        Cnf::new(clauses.iter().map(|clause| {
            Clause::new(clause.iter().map(|&(v, pos)| Literal {
                var: v,
                positive: pos,
            }))
        }))
    }

    #[test]
    fn encoding_has_the_right_type_and_shape() {
        let cnf = cnf_of(&[&[(0, true), (1, false)], &[(1, true)]]);
        let encoded = encode_cnf(&cnf);
        assert!(encoded.has_type(&encoding_type()));
        assert_eq!(encoded.elements().unwrap().len(), 2);
    }

    #[test]
    fn fd_predicate_detects_conflicting_choices() {
        let consistent = Value::set([
            Value::pair(Value::Int(0), Value::Bool(true)),
            Value::pair(Value::Int(1), Value::Bool(false)),
        ]);
        assert_eq!(
            eval(&fd_predicate(), &consistent).unwrap(),
            Value::Bool(true)
        );
        let conflicting = Value::set([
            Value::pair(Value::Int(0), Value::Bool(true)),
            Value::pair(Value::Int(0), Value::Bool(false)),
        ]);
        assert_eq!(
            eval(&fd_predicate(), &conflicting).unwrap(),
            Value::Bool(false)
        );
        // the empty choice is vacuously consistent
        assert_eq!(
            eval(&fd_predicate(), &Value::empty_set()).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn satisfiable_and_unsatisfiable_examples() {
        // (x0 ∨ x1) ∧ (¬x0) — satisfiable with x1
        let sat = cnf_of(&[&[(0, true), (1, true)], &[(0, false)]]);
        assert!(sat_by_eager_normalization(&sat).unwrap());
        assert!(sat_by_lazy_normalization(&sat).unwrap().satisfiable);
        assert!(sat_by_dpll(&sat));

        // x0 ∧ ¬x0 — unsatisfiable
        let unsat = cnf_of(&[&[(0, true)], &[(0, false)]]);
        assert!(!sat_by_eager_normalization(&unsat).unwrap());
        assert!(!sat_by_lazy_normalization(&unsat).unwrap().satisfiable);
        assert!(!sat_by_dpll(&unsat));
    }

    #[test]
    fn empty_clause_makes_the_encoding_inconsistent() {
        let falsum = cnf_of(&[&[]]);
        let encoded = encode_cnf(&falsum);
        assert!(encoded.contains_empty_orset());
        assert!(!sat_by_eager_normalization(&falsum).unwrap());
        assert!(!sat_by_lazy_normalization(&falsum).unwrap().satisfiable);
    }

    #[test]
    fn empty_formula_is_trivially_satisfiable() {
        let verum = Cnf::new([]);
        assert!(sat_by_dpll(&verum));
        assert!(sat_by_lazy_normalization(&verum).unwrap().satisfiable);
        assert!(sat_by_eager_normalization(&verum).unwrap());
    }

    #[test]
    fn all_strategies_agree_with_brute_force_on_random_formulae() {
        let mut gen = CnfGenerator::new(42);
        for round in 0..25 {
            let num_vars = 3 + (round % 4) as u32;
            let num_clauses = 2 + (round % 6);
            let cnf = gen.random_kcnf(
                num_vars,
                num_clauses,
                2 + (round % 2).min(num_vars as usize - 1),
            );
            let expected = cnf.brute_force_satisfiable();
            assert_eq!(sat_by_dpll(&cnf), expected, "dpll on {cnf}");
            assert_eq!(
                sat_by_eager_normalization(&cnf).unwrap(),
                expected,
                "eager on {cnf}"
            );
            let lazy = sat_by_lazy_normalization(&cnf).unwrap();
            assert_eq!(lazy.satisfiable, expected, "lazy on {cnf}");
            if let Some(witness) = lazy.witness {
                let assignment = assignment_from_witness(&witness, cnf.num_vars).unwrap();
                assert!(cnf.satisfied_by(&assignment));
            }
        }
    }

    #[test]
    fn lazy_evaluation_stops_early_on_easy_satisfiable_formulae() {
        // Keep the instance small: the lazy strategy's early exit is about
        // *how many* candidates it inspects, not about instance size, and on
        // adversarial orderings it can still need exponentially many
        // inspections (that is exactly the NP-hardness content of Section 6).
        let mut gen = CnfGenerator::new(8);
        let cnf = gen.planted_satisfiable(6, 10, 3);
        let outcome = sat_by_lazy_normalization(&cnf).unwrap();
        assert!(outcome.satisfiable);
        assert!(
            outcome.inspected < outcome.total,
            "early exit expected: inspected {} of {}",
            outcome.inspected,
            outcome.total
        );
    }

    #[test]
    fn witness_assignments_satisfy_the_formula() {
        let cnf = cnf_of(&[
            &[(0, true), (1, true)],
            &[(0, false), (2, true)],
            &[(1, false), (2, false)],
        ]);
        let outcome = sat_by_lazy_normalization(&cnf).unwrap();
        assert!(outcome.satisfiable);
        let assignment = assignment_from_witness(&outcome.witness.unwrap(), cnf.num_vars).unwrap();
        assert!(cnf.satisfied_by(&assignment));
    }
}
