//! Propositional formulae in conjunctive normal form and random generators.
//!
//! Section 6 of the paper proves that existential queries over normal forms
//! cannot be evaluated in time polynomial in the size of the *unnormalized*
//! object (unless P = NP) by encoding CNF satisfiability.  This module is the
//! supporting substrate: CNF formulae, assignments, evaluation, and the
//! uniform random k-CNF generator used by experiments E7 and E12.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A propositional variable, identified by a 0-based index.
pub type Var = u32;

/// A literal: a variable together with a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    /// The variable.
    pub var: Var,
    /// `true` for the positive literal `u`, `false` for the negation `¬u`.
    pub positive: bool,
}

impl Literal {
    /// Positive literal of a variable.
    pub fn pos(var: Var) -> Literal {
        Literal {
            var,
            positive: true,
        }
    }

    /// Negative literal of a variable.
    pub fn neg(var: Var) -> Literal {
        Literal {
            var,
            positive: false,
        }
    }

    /// The literal with opposite polarity.
    pub fn negated(self) -> Literal {
        Literal {
            var: self.var,
            positive: !self.positive,
        }
    }

    /// Evaluate under an assignment (`None` entries are unassigned and make
    /// the literal undetermined).
    pub fn eval(self, assignment: &[Option<bool>]) -> Option<bool> {
        assignment
            .get(self.var as usize)
            .copied()
            .flatten()
            .map(|v| v == self.positive)
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var)
        } else {
            write!(f, "~x{}", self.var)
        }
    }
}

/// A clause: a disjunction of literals.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Clause {
    /// The literals of the clause.
    pub literals: Vec<Literal>,
}

impl Clause {
    /// Build a clause from literals (duplicates removed, order normalized).
    pub fn new(literals: impl IntoIterator<Item = Literal>) -> Clause {
        let mut lits: Vec<Literal> = literals.into_iter().collect();
        lits.sort();
        lits.dedup();
        Clause { literals: lits }
    }

    /// Is the clause a tautology (contains a literal and its negation)?
    pub fn is_tautology(&self) -> bool {
        self.literals
            .iter()
            .any(|l| self.literals.contains(&l.negated()))
    }

    /// Evaluate under a (total) assignment.
    pub fn eval(&self, assignment: &[Option<bool>]) -> Option<bool> {
        let mut undetermined = false;
        for lit in &self.literals {
            match lit.eval(assignment) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => undetermined = true,
            }
        }
        if undetermined {
            None
        } else {
            Some(false)
        }
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, lit) in self.literals.iter().enumerate() {
            if i > 0 {
                write!(f, " \\/ ")?;
            }
            write!(f, "{lit}")?;
        }
        write!(f, ")")
    }
}

/// A CNF formula: a conjunction of clauses over variables `0..num_vars`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cnf {
    /// Number of variables (variables are `0..num_vars`).
    pub num_vars: u32,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl Cnf {
    /// Build a formula from clauses, computing `num_vars` from the maximum
    /// variable mentioned.
    pub fn new(clauses: impl IntoIterator<Item = Clause>) -> Cnf {
        let clauses: Vec<Clause> = clauses.into_iter().collect();
        let num_vars = clauses
            .iter()
            .flat_map(|c| c.literals.iter())
            .map(|l| l.var + 1)
            .max()
            .unwrap_or(0);
        Cnf { num_vars, clauses }
    }

    /// Evaluate under an assignment; `None` when the assignment leaves the
    /// formula undetermined.
    pub fn eval(&self, assignment: &[Option<bool>]) -> Option<bool> {
        let mut undetermined = false;
        for clause in &self.clauses {
            match clause.eval(assignment) {
                Some(false) => return Some(false),
                Some(true) => {}
                None => undetermined = true,
            }
        }
        if undetermined {
            None
        } else {
            Some(true)
        }
    }

    /// Is the formula satisfied by a total assignment given as booleans?
    pub fn satisfied_by(&self, assignment: &[bool]) -> bool {
        let wrapped: Vec<Option<bool>> = assignment.iter().copied().map(Some).collect();
        self.eval(&wrapped) == Some(true)
    }

    /// Brute-force satisfiability by enumerating all assignments; usable only
    /// for small `num_vars`, as an oracle in tests.
    pub fn brute_force_satisfiable(&self) -> bool {
        assert!(self.num_vars <= 24, "brute force limited to 24 variables");
        let n = self.num_vars;
        (0u64..(1 << n)).any(|mask| {
            let assignment: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            self.satisfied_by(&assignment)
        })
    }

    /// Total number of literal occurrences.
    pub fn literal_count(&self) -> usize {
        self.clauses.iter().map(|c| c.literals.len()).sum()
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "true");
        }
        for (i, clause) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " /\\ ")?;
            }
            write!(f, "{clause}")?;
        }
        Ok(())
    }
}

/// Deterministic random k-CNF generator.
#[derive(Debug)]
pub struct CnfGenerator {
    rng: StdRng,
}

impl CnfGenerator {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        CnfGenerator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A uniform random k-CNF formula with `num_vars` variables and
    /// `num_clauses` clauses; each clause has `k` distinct variables with
    /// random polarities.
    pub fn random_kcnf(&mut self, num_vars: u32, num_clauses: usize, k: usize) -> Cnf {
        assert!(k as u32 <= num_vars, "clause width exceeds variable count");
        let mut clauses = Vec::with_capacity(num_clauses);
        for _ in 0..num_clauses {
            let mut vars: Vec<Var> = Vec::with_capacity(k);
            while vars.len() < k {
                let v = self.rng.gen_range(0..num_vars);
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
            clauses.push(Clause::new(vars.into_iter().map(|v| {
                if self.rng.gen() {
                    Literal::pos(v)
                } else {
                    Literal::neg(v)
                }
            })));
        }
        Cnf { num_vars, clauses }
    }

    /// A formula that is satisfiable by construction: plant a hidden
    /// assignment and make sure every clause contains at least one literal it
    /// satisfies.
    pub fn planted_satisfiable(&mut self, num_vars: u32, num_clauses: usize, k: usize) -> Cnf {
        let hidden: Vec<bool> = (0..num_vars).map(|_| self.rng.gen()).collect();
        let mut cnf = self.random_kcnf(num_vars, num_clauses, k);
        for clause in &mut cnf.clauses {
            if clause.eval(&hidden.iter().copied().map(Some).collect::<Vec<_>>()) != Some(true) {
                // flip one literal to agree with the hidden assignment
                let lit = clause.literals[self.rng.gen_range(0..clause.literals.len())];
                let fixed = Literal {
                    var: lit.var,
                    positive: hidden[lit.var as usize],
                };
                let mut lits = clause.literals.clone();
                lits.retain(|l| l.var != lit.var);
                lits.push(fixed);
                *clause = Clause::new(lits);
            }
        }
        cnf
    }

    /// An unsatisfiable formula: all `2^k` polarity combinations over the
    /// same `k` variables (every assignment falsifies exactly one clause),
    /// padded with random clauses up to `num_clauses`.
    pub fn unsatisfiable(&mut self, num_vars: u32, num_clauses: usize, k: usize) -> Cnf {
        assert!(k <= 16, "unsatisfiable core width limited to 16");
        let core_vars: Vec<Var> = (0..k as u32).collect();
        let mut clauses = Vec::new();
        for mask in 0u32..(1 << k) {
            clauses.push(Clause::new(core_vars.iter().enumerate().map(|(i, &v)| {
                Literal {
                    var: v,
                    positive: mask & (1 << i) != 0,
                }
            })));
        }
        let mut cnf = self.random_kcnf(
            num_vars.max(k as u32),
            num_clauses.saturating_sub(clauses.len()),
            k,
        );
        clauses.append(&mut cnf.clauses);
        Cnf {
            num_vars: num_vars.max(k as u32),
            clauses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_and_clause_evaluation() {
        let assignment = vec![Some(true), Some(false), None];
        assert_eq!(Literal::pos(0).eval(&assignment), Some(true));
        assert_eq!(Literal::neg(0).eval(&assignment), Some(false));
        assert_eq!(Literal::pos(2).eval(&assignment), None);
        let clause = Clause::new([Literal::neg(0), Literal::pos(1)]);
        assert_eq!(clause.eval(&assignment), Some(false));
        let clause = Clause::new([Literal::neg(0), Literal::pos(2)]);
        assert_eq!(clause.eval(&assignment), None);
    }

    #[test]
    fn cnf_evaluation_and_satisfaction() {
        // (x0 ∨ ¬x1) ∧ (¬x0 ∨ x1)  — satisfied iff x0 == x1
        let cnf = Cnf::new([
            Clause::new([Literal::pos(0), Literal::neg(1)]),
            Clause::new([Literal::neg(0), Literal::pos(1)]),
        ]);
        assert!(cnf.satisfied_by(&[true, true]));
        assert!(cnf.satisfied_by(&[false, false]));
        assert!(!cnf.satisfied_by(&[true, false]));
        assert!(cnf.brute_force_satisfiable());
    }

    #[test]
    fn empty_formula_is_true_and_empty_clause_is_false() {
        let empty = Cnf::new([]);
        assert!(empty.satisfied_by(&[]));
        let falsum = Cnf::new([Clause::new([])]);
        assert!(!falsum.brute_force_satisfiable());
    }

    #[test]
    fn tautology_detection() {
        let clause = Clause::new([Literal::pos(0), Literal::neg(0)]);
        assert!(clause.is_tautology());
        let clause = Clause::new([Literal::pos(0), Literal::neg(1)]);
        assert!(!clause.is_tautology());
    }

    #[test]
    fn random_kcnf_has_requested_shape() {
        let mut gen = CnfGenerator::new(11);
        let cnf = gen.random_kcnf(10, 30, 3);
        assert_eq!(cnf.num_vars, 10);
        assert_eq!(cnf.clauses.len(), 30);
        assert!(cnf.clauses.iter().all(|c| c.literals.len() == 3));
    }

    #[test]
    fn planted_formulae_are_satisfiable() {
        let mut gen = CnfGenerator::new(3);
        for _ in 0..10 {
            let cnf = gen.planted_satisfiable(8, 24, 3);
            assert!(cnf.brute_force_satisfiable());
        }
    }

    #[test]
    fn constructed_unsatisfiable_formulae_are_unsatisfiable() {
        let mut gen = CnfGenerator::new(4);
        for _ in 0..5 {
            let cnf = gen.unsatisfiable(6, 12, 3);
            assert!(!cnf.brute_force_satisfiable());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CnfGenerator::new(7).random_kcnf(6, 10, 3);
        let b = CnfGenerator::new(7).random_kcnf(6, 10, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn display_renders_formulae() {
        let cnf = Cnf::new([Clause::new([Literal::pos(0), Literal::neg(1)])]);
        assert_eq!(cnf.to_string(), "(x0 \\/ ~x1)");
    }
}
