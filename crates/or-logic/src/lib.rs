//! # or-logic — Boolean satisfiability substrate for the Section 6 reduction
//!
//! The paper proves NP-hardness of existential queries over normal forms by
//! encoding CNF satisfiability as the query "is there a possibility — in the
//! normal form — that satisfies a functional dependency?".  This crate
//! provides everything needed to run that reduction as an experiment:
//!
//! * [`cnf`] — CNF formulae, evaluation, and deterministic random generators
//!   (uniform k-CNF, planted-satisfiable, constructed-unsatisfiable);
//! * [`dpll`] — a classic DPLL solver used as the baseline;
//! * [`encode`] — the encoding of CNF into objects of type `{<int × bool>}`,
//!   the functional-dependency predicate expressed in or-NRA, and the three
//!   evaluation strategies (eager normalization, lazy normalization with
//!   early exit, DPLL).
//!
//! ```
//! use or_logic::cnf::{Clause, Cnf, Literal};
//! use or_logic::encode;
//!
//! // (x0 ∨ x1) ∧ ¬x0  — satisfiable
//! let cnf = Cnf::new([
//!     Clause::new([Literal::pos(0), Literal::pos(1)]),
//!     Clause::new([Literal::neg(0)]),
//! ]);
//! assert!(encode::sat_by_dpll(&cnf));
//! assert!(encode::sat_by_lazy_normalization(&cnf).unwrap().satisfiable);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod cnf;
pub mod dpll;
pub mod encode;

pub use cnf::{Clause, Cnf, CnfGenerator, Literal};
pub use dpll::{is_satisfiable, solve, Solution};
