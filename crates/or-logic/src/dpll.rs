//! A DPLL satisfiability solver.
//!
//! The solver is the *baseline* for experiments E7/E12: the paper's point is
//! that deciding an existential query over a normal form amounts to SAT, so a
//! dedicated SAT procedure (polynomial space, exponential worst-case time)
//! is the natural comparator for the normalize-then-scan evaluation
//! strategies.  The implementation is a classic recursive DPLL with unit
//! propagation, pure-literal elimination and a most-occurrences branching
//! heuristic — deliberately simple, deterministic and dependency-free.

use std::collections::HashMap;

use crate::cnf::{Cnf, Literal, Var};

/// Statistics of one solver run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of branching decisions.
    pub decisions: u64,
    /// Number of unit propagations.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
}

/// The result of solving a formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Solution {
    /// Satisfiable, with a witnessing assignment (indexed by variable).
    Satisfiable(Vec<bool>),
    /// Unsatisfiable.
    Unsatisfiable,
}

impl Solution {
    /// Is the formula satisfiable?
    pub fn is_sat(&self) -> bool {
        matches!(self, Solution::Satisfiable(_))
    }
}

/// Solve a CNF formula with DPLL.
pub fn solve(cnf: &Cnf) -> (Solution, SolverStats) {
    let mut stats = SolverStats::default();
    let mut assignment: Vec<Option<bool>> = vec![None; cnf.num_vars as usize];
    let sat = dpll(cnf, &mut assignment, &mut stats);
    if sat {
        let witness: Vec<bool> = assignment.iter().map(|v| v.unwrap_or(false)).collect();
        debug_assert!(cnf.satisfied_by(&witness));
        (Solution::Satisfiable(witness), stats)
    } else {
        (Solution::Unsatisfiable, stats)
    }
}

/// Convenience wrapper returning only the satisfiability verdict.
pub fn is_satisfiable(cnf: &Cnf) -> bool {
    solve(cnf).0.is_sat()
}

fn dpll(cnf: &Cnf, assignment: &mut Vec<Option<bool>>, stats: &mut SolverStats) -> bool {
    // Unit propagation and pure literal elimination to fixpoint.
    let mut trail: Vec<Var> = Vec::new();
    loop {
        match propagate_once(cnf, assignment, stats) {
            Propagation::Conflict => {
                stats.conflicts += 1;
                for v in trail {
                    assignment[v as usize] = None;
                }
                return false;
            }
            Propagation::Assigned(v) => trail.push(v),
            Propagation::Fixpoint => break,
        }
    }
    match cnf.eval(assignment) {
        Some(true) => return true,
        Some(false) => {
            stats.conflicts += 1;
            for v in trail {
                assignment[v as usize] = None;
            }
            return false;
        }
        None => {}
    }
    // Branch on the unassigned variable with the most occurrences in
    // not-yet-satisfied clauses.
    let var = match branching_variable(cnf, assignment) {
        Some(v) => v,
        None => {
            // no unassigned variable left but formula undetermined cannot
            // happen; treat defensively as conflict
            for v in trail {
                assignment[v as usize] = None;
            }
            return false;
        }
    };
    for value in [true, false] {
        stats.decisions += 1;
        assignment[var as usize] = Some(value);
        if dpll(cnf, assignment, stats) {
            return true;
        }
        assignment[var as usize] = None;
    }
    for v in trail {
        assignment[v as usize] = None;
    }
    false
}

enum Propagation {
    Assigned(Var),
    Conflict,
    Fixpoint,
}

fn propagate_once(
    cnf: &Cnf,
    assignment: &mut [Option<bool>],
    stats: &mut SolverStats,
) -> Propagation {
    // unit clauses
    for clause in &cnf.clauses {
        let mut unassigned: Option<Literal> = None;
        let mut satisfied = false;
        let mut unassigned_count = 0;
        for lit in &clause.literals {
            match lit.eval(assignment) {
                Some(true) => {
                    satisfied = true;
                    break;
                }
                Some(false) => {}
                None => {
                    unassigned_count += 1;
                    unassigned = Some(*lit);
                }
            }
        }
        if satisfied {
            continue;
        }
        match unassigned_count {
            0 => return Propagation::Conflict,
            1 => {
                let lit = unassigned.expect("exactly one unassigned literal");
                assignment[lit.var as usize] = Some(lit.positive);
                stats.propagations += 1;
                return Propagation::Assigned(lit.var);
            }
            _ => {}
        }
    }
    // pure literals
    let mut polarity: HashMap<Var, (bool, bool)> = HashMap::new();
    for clause in &cnf.clauses {
        if clause.eval(assignment) == Some(true) {
            continue;
        }
        for lit in &clause.literals {
            if assignment[lit.var as usize].is_none() {
                let entry = polarity.entry(lit.var).or_insert((false, false));
                if lit.positive {
                    entry.0 = true;
                } else {
                    entry.1 = true;
                }
            }
        }
    }
    for (var, (pos, neg)) in polarity {
        if pos != neg {
            assignment[var as usize] = Some(pos);
            stats.propagations += 1;
            return Propagation::Assigned(var);
        }
    }
    Propagation::Fixpoint
}

fn branching_variable(cnf: &Cnf, assignment: &[Option<bool>]) -> Option<Var> {
    let mut counts: HashMap<Var, usize> = HashMap::new();
    for clause in &cnf.clauses {
        if clause.eval(assignment) == Some(true) {
            continue;
        }
        for lit in &clause.literals {
            if assignment[lit.var as usize].is_none() {
                *counts.entry(lit.var).or_insert(0) += 1;
            }
        }
    }
    counts
        .into_iter()
        .max_by_key(|&(var, count)| (count, std::cmp::Reverse(var)))
        .map(|(var, _)| var)
        .or_else(|| (0..cnf.num_vars).find(|&v| assignment[v as usize].is_none()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Clause, CnfGenerator};

    #[test]
    fn trivial_formulae() {
        assert!(is_satisfiable(&Cnf::new([])));
        assert!(!is_satisfiable(&Cnf::new([Clause::new([])])));
        assert!(is_satisfiable(&Cnf::new([Clause::new([Literal::pos(0)])])));
    }

    #[test]
    fn simple_unsat_core() {
        // x0 ∧ ¬x0
        let cnf = Cnf::new([
            Clause::new([Literal::pos(0)]),
            Clause::new([Literal::neg(0)]),
        ]);
        assert!(!is_satisfiable(&cnf));
    }

    #[test]
    fn xor_chain_is_satisfiable_with_witness() {
        let cnf = Cnf::new([
            Clause::new([Literal::pos(0), Literal::pos(1)]),
            Clause::new([Literal::neg(0), Literal::neg(1)]),
            Clause::new([Literal::pos(1), Literal::pos(2)]),
            Clause::new([Literal::neg(1), Literal::neg(2)]),
        ]);
        let (solution, _) = solve(&cnf);
        match solution {
            Solution::Satisfiable(witness) => assert!(cnf.satisfied_by(&witness)),
            Solution::Unsatisfiable => panic!("formula is satisfiable"),
        }
    }

    #[test]
    fn agrees_with_brute_force_on_random_formulae() {
        let mut gen = CnfGenerator::new(21);
        for round in 0..40 {
            let num_vars = 4 + (round % 5) as u32;
            let num_clauses = 3 + (round % 13);
            let cnf = gen.random_kcnf(num_vars, num_clauses, 3.min(num_vars as usize));
            assert_eq!(
                is_satisfiable(&cnf),
                cnf.brute_force_satisfiable(),
                "disagreement on {cnf}"
            );
        }
    }

    #[test]
    fn planted_and_constructed_families_are_classified_correctly() {
        let mut gen = CnfGenerator::new(5);
        for _ in 0..10 {
            assert!(is_satisfiable(&gen.planted_satisfiable(12, 40, 3)));
        }
        for _ in 0..5 {
            assert!(!is_satisfiable(&gen.unsatisfiable(10, 20, 3)));
        }
    }

    #[test]
    fn statistics_are_collected() {
        let mut gen = CnfGenerator::new(9);
        let cnf = gen.random_kcnf(12, 50, 3);
        let (_, stats) = solve(&cnf);
        assert!(stats.decisions + stats.propagations > 0);
    }
}
