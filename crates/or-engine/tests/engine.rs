//! Integration tests: the engine against the tree-walking interpreter, in
//! every execution configuration.

use or_db::{Field, Relation, Schema};
use or_engine::prelude::*;
use or_nra::derived;
use or_nra::eval::eval;
use or_nra::morphism::{Morphism as M, Prim};
use or_nra::optimize::lower;
use or_object::{Type, Value};

/// 200 rows of (id, cost) pairs.
fn priced_rows(n: i64) -> Vec<Value> {
    (0..n)
        .map(|i| Value::pair(Value::Int(i), Value::Int((i * 7) % 50)))
        .collect()
}

/// A predicate `cost ≤ bound` over (id, cost) rows.
fn cheap(bound: i64) -> M {
    M::Proj2
        .then(M::pair(M::Id, M::constant(Value::Int(bound))))
        .then(M::Prim(Prim::Leq))
}

#[test]
fn filter_project_pipeline_matches_interpreter() {
    let rows = priced_rows(200);
    let query = derived::select(cheap(10)).then(M::map(M::Proj1));
    let plan = lower(&query).expect("query is in the lowerable fragment");
    let expected = eval(&query, &Value::set(rows.clone())).unwrap();
    for workers in [1, 2, 4, 7] {
        let exec = Executor::new(
            ExecConfig::default()
                .with_workers(workers)
                .with_batch_size(16),
        );
        let got = exec.run_to_value(&plan, &[&rows]).unwrap();
        assert_eq!(got, expected, "with {workers} workers");
    }
}

#[test]
fn parallel_execution_reports_worker_count() {
    let rows = priced_rows(100);
    let plan = PhysicalPlan::scan(0).filter(cheap(25));
    // pinned workers bypass the small-input sequential fallback
    let exec = Executor::new(ExecConfig::default().with_pinned_workers(4));
    let (result_rows, stats) = exec.run_with_stats(&plan, &[&rows]).unwrap();
    assert_eq!(stats.workers, 4);
    assert_eq!(stats.rows, result_rows.len());
    assert!(!result_rows.is_empty());
    assert!(
        stats.morsels >= 4,
        "each worker claimed at least one morsel"
    );
}

/// Regression test for the fanout-8 benchmark anomaly: on a small driving
/// input the parallel leg used to pay thread + merge overhead for no gain.
/// The executor now falls back to one worker below
/// `ExecConfig::min_parallel_rows` unless the worker count is pinned.
#[test]
fn small_inputs_fall_back_to_sequential_unless_pinned() {
    let rows = priced_rows(100);
    let plan = PhysicalPlan::scan(0).filter(cheap(25));
    // unpinned: 100 rows < min_parallel_rows ⇒ sequential
    let exec = Executor::new(ExecConfig::default().with_workers(8));
    let (_, stats) = exec.run_with_stats(&plan, &[&rows]).unwrap();
    assert_eq!(stats.workers, 1, "below the cost threshold runs sequential");
    assert_eq!(stats.morsels, 0, "the sequential path bypasses the queue");
    // lowering the threshold re-enables parallelism for the same input
    let exec = Executor::new(
        ExecConfig::default()
            .with_workers(8)
            .with_min_parallel_rows(50),
    );
    let (_, stats) = exec.run_with_stats(&plan, &[&rows]).unwrap();
    assert_eq!(stats.workers, 8);
    // pinning always wins over the threshold
    let exec = Executor::new(ExecConfig::default().with_pinned_workers(8));
    let (_, stats) = exec.run_with_stats(&plan, &[&rows]).unwrap();
    assert_eq!(stats.workers, 8);
}

#[test]
fn cartesian_and_join_match_the_derived_operators() {
    let left: Vec<Value> = (0..12).map(Value::Int).collect();
    let right: Vec<Value> = (0..12).map(|i| Value::Int(i % 4)).collect();
    // cartesian: compare against the derived cartesian_product morphism on
    // the pair of sets
    let pair_value = Value::pair(Value::set(left.clone()), Value::set(right.clone()));
    let expected = eval(&derived::cartesian_product(), &pair_value).unwrap();
    let plan = PhysicalPlan::scan(0).cartesian(PhysicalPlan::scan(1));
    let exec = Executor::new(ExecConfig::default().with_workers(3));
    let got = exec.run_to_value(&plan, &[&left, &right]).unwrap();
    assert_eq!(got, expected);

    // join l = r: equals filtering the cartesian product by eq
    let join_plan = PhysicalPlan::scan(0).join(
        PhysicalPlan::scan(1),
        M::pair(M::Proj1, M::Proj2).then(M::Eq),
    );
    let expected_join = {
        let filtered = derived::select(M::Eq);
        let cart_then_filter = derived::cartesian_product().then(filtered);
        eval(&cart_then_filter, &pair_value).unwrap()
    };
    let got_join = exec.run_to_value(&join_plan, &[&left, &right]).unwrap();
    assert_eq!(got_join, expected_join);
}

#[test]
fn equi_join_hash_path_agrees_with_nested_loop() {
    let users: Vec<Value> = (0..30)
        .map(|i| Value::pair(Value::Int(i), Value::Int(i % 5)))
        .collect();
    let groups: Vec<Value> = (0..5)
        .map(|g| Value::pair(Value::Int(g), Value::str(format!("g{g}"))))
        .collect();
    // predicate over (user_row, group_row): snd(user) == fst(group)
    let equi = M::pair(
        M::Proj1.then(M::Proj2), // reads only the left side
        M::Proj2.then(M::Proj1), // reads only the right side
    )
    .then(M::Eq);
    // generic shape the hash detector does NOT accept (swapped operand order
    // inside a both() wrapper), forcing the nested loop
    let generic = derived::both(
        M::pair(M::Proj1.then(M::Proj2), M::Proj2.then(M::Proj1)).then(M::Eq),
        derived::always(),
    );
    let exec = Executor::new(ExecConfig::default().with_workers(2));
    let hash_plan = PhysicalPlan::scan(0).join(PhysicalPlan::scan(1), equi);
    let loop_plan = PhysicalPlan::scan(0).join(PhysicalPlan::scan(1), generic);
    let a = exec.run_to_value(&hash_plan, &[&users, &groups]).unwrap();
    let b = exec.run_to_value(&loop_plan, &[&users, &groups]).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.elements().unwrap().len(), 30);
}

/// A build side past `JOIN_PARTITION_MIN_ROWS` goes through the
/// hash-partitioned probe table; results must match the nested-loop join
/// over the same data, sequentially and under pinned parallel workers.
#[test]
fn partitioned_hash_join_agrees_with_nested_loop() {
    let n_right = (or_engine::ops::JOIN_PARTITION_MIN_ROWS + 500) as i64;
    let left: Vec<Value> = (0..120)
        .map(|i| Value::pair(Value::Int(i), Value::Int(i % 40)))
        .collect();
    let right: Vec<Value> = (0..n_right)
        .map(|j| Value::pair(Value::Int(j % 40), Value::Int(j)))
        .collect();
    // snd(left) == fst(right), in the shape the hash detector accepts
    let equi = M::pair(M::Proj1.then(M::Proj2), M::Proj2.then(M::Proj1)).then(M::Eq);
    // …and in a both() wrapper it does not, forcing the nested loop
    let generic = derived::both(
        M::pair(M::Proj1.then(M::Proj2), M::Proj2.then(M::Proj1)).then(M::Eq),
        derived::always(),
    );
    let hash_plan = PhysicalPlan::scan(0).join(PhysicalPlan::scan(1), equi);
    let loop_plan = PhysicalPlan::scan(0).join(PhysicalPlan::scan(1), generic);
    let seq = Executor::new(ExecConfig::sequential());
    let expected = seq.run_to_value(&loop_plan, &[&left, &right]).unwrap();
    let got_seq = seq.run_to_value(&hash_plan, &[&left, &right]).unwrap();
    assert_eq!(got_seq, expected);
    for workers in [2, 4] {
        let par = Executor::new(ExecConfig::default().with_pinned_workers(workers));
        let got = par.run_to_value(&hash_plan, &[&left, &right]).unwrap();
        assert_eq!(got, expected, "with {workers} pinned workers");
    }
}

#[test]
fn union_plans_match_the_union_morphism() {
    // ∪ ∘ ⟨map(π₁), map(π₂)⟩ lowers to a Union of two projections
    let query = M::pair(M::map(M::Proj1), M::map(M::Proj2)).then(M::Union);
    let plan = lower(&query).expect("union shape is lowerable");
    assert!(plan.to_string().contains("Union"), "plan: {plan}");
    let rows: Vec<Value> = (0..40)
        .map(|i| Value::pair(Value::Int(i), Value::Int(100 + i % 7)))
        .collect();
    let expected = eval(&query, &Value::set(rows.clone())).unwrap();
    // the right side must be emitted exactly once regardless of the worker
    // count (lead-worker discipline), and the merge dedups across workers
    for workers in [1, 2, 5] {
        let exec = Executor::new(
            ExecConfig::default()
                .with_workers(workers)
                .with_batch_size(8),
        );
        let got = exec.run_to_value(&plan, &[&rows]).unwrap();
        assert_eq!(got, expected, "with {workers} workers");
    }
}

#[test]
fn union_of_filtered_pipelines_matches_interpreter() {
    // union(cheap ids, expensive ids) — both arms filter, then project
    let expensive = M::Proj2
        .then(M::pair(M::constant(Value::Int(40)), M::Id))
        .then(M::Prim(Prim::Leq));
    let query = M::pair(
        derived::select(cheap(10)).then(M::map(M::Proj1)),
        derived::select(expensive).then(M::map(M::Proj1)),
    )
    .then(M::Union);
    let plan = lower(&query).expect("union of pipelines is lowerable");
    let rows = priced_rows(120);
    let expected = eval(&query, &Value::set(rows.clone())).unwrap();
    for workers in [1, 4] {
        let exec = Executor::new(ExecConfig::default().with_workers(workers));
        assert_eq!(
            exec.run_to_value(&plan, &[&rows]).unwrap(),
            expected,
            "with {workers} workers"
        );
    }
}

#[test]
fn flatten_plans_match_the_mu_morphism() {
    // rows are sets of ints; μ streams their elements
    let rows: Vec<Value> = (0..30)
        .map(|i| Value::int_set([i, i + 1, (i * 3) % 10]))
        .collect();
    let plan = lower(&M::Mu).expect("bare mu is lowerable");
    assert!(plan.to_string().contains("Flatten"), "plan: {plan}");
    let expected = eval(&M::Mu, &Value::set(rows.clone())).unwrap();
    for workers in [1, 3] {
        let exec = Executor::new(
            ExecConfig::default()
                .with_workers(workers)
                .with_batch_size(4),
        );
        assert_eq!(
            exec.run_to_value(&plan, &[&rows]).unwrap(),
            expected,
            "with {workers} workers"
        );
    }
    // the dependent-generator shape: project each row to a set, then flatten
    let nested: Vec<Value> = (0..12)
        .map(|i| Value::pair(Value::Int(i), Value::int_set([i, i + 5])))
        .collect();
    let query = M::map(M::Proj2).then(M::Mu);
    let plan = lower(&query).unwrap();
    let expected = eval(&query, &Value::set(nested.clone())).unwrap();
    let exec = Executor::new(ExecConfig::default().with_workers(2));
    assert_eq!(exec.run_to_value(&plan, &[&nested]).unwrap(), expected);
}

#[test]
fn flatten_reports_non_set_rows() {
    let rows = vec![Value::int_set([1, 2]), Value::Int(7)];
    let plan = lower(&M::Mu).unwrap();
    let exec = Executor::new(ExecConfig::default());
    assert!(matches!(
        exec.run(&plan, &[rows.as_slice()]),
        Err(EngineError::FlattenNonSet { .. })
    ));
}

#[test]
fn or_expand_matches_the_conceptual_morphism() {
    // rows with or-set fields: (name, <office alternatives>)
    let rows: Vec<Value> = vec![
        Value::pair(Value::str("joe"), Value::int_orset([515])),
        Value::pair(Value::str("mary"), Value::int_orset([515, 212])),
        Value::pair(Value::str("ann"), Value::int_orset([100, 212, 300])),
    ];
    let query = M::map(M::Normalize.then(M::OrToSet)).then(M::Mu);
    let plan = lower(&query).expect("or-expand shape is lowerable");
    assert!(plan.to_string().contains("OrExpand"));
    let expected = eval(&query, &Value::set(rows.clone())).unwrap();
    for workers in [1, 3] {
        let exec = Executor::new(ExecConfig::default().with_workers(workers));
        let got = exec.run_to_value(&plan, &[&rows]).unwrap();
        assert_eq!(got, expected, "with {workers} workers");
    }
}

/// A relation of (id, (<cpu alternatives>, <ram alternatives>)) rows with
/// or-set fanout `fanout` × `fanout/2`.
fn fanout_relation(rows: i64, fanout: i64) -> Relation {
    let schema = Schema::new([
        Field::new("id", Type::Int),
        Field::new("cpu", Type::orset(Type::Int)),
        Field::new("ram", Type::orset(Type::Int)),
    ])
    .unwrap();
    Relation::from_records(
        "fanout",
        schema,
        (0..rows).map(|i| {
            Value::pair(
                Value::Int(i),
                Value::pair(
                    Value::int_orset((0..fanout).map(|k| (i + k) % (fanout + 3))),
                    Value::int_orset((0..fanout / 2).map(|k| (i * 3 + k) % (fanout + 1))),
                ),
            )
        }),
    )
    .unwrap()
}

#[test]
fn high_fanout_expansion_matches_interpreter() {
    // fanout 8 × 4 = 32 possible worlds per row
    let rel = fanout_relation(40, 8);
    let query = M::map(M::Normalize.then(M::OrToSet)).then(M::Mu);
    let plan = lower(&query).expect("or-expand shape is lowerable");
    let expected = rel.query(&query).unwrap();
    for workers in [1, 4] {
        let config = ExecConfig::default()
            .with_workers(workers)
            .with_batch_size(64);
        let got = run_plan(&plan, &[&rel], config).unwrap();
        assert_eq!(got, expected, "with {workers} workers");
    }
}

#[test]
fn planned_expansion_pushes_filters_and_agrees_with_interpreter() {
    let rel = fanout_relation(30, 8);
    // expand, then keep worlds with id ≤ 10 — the filter reads only the
    // or-free id component, so the planner moves it below the expansion
    let keep_id = M::Proj1
        .then(M::pair(M::Id, M::constant(Value::Int(10))))
        .then(M::Prim(Prim::Leq));
    let query = M::map(M::Normalize.then(M::OrToSet))
        .then(M::Mu)
        .then(derived::select(keep_id));
    let plan = lower(&query).expect("expand-then-filter is lowerable");
    let expected = rel.query(&query).unwrap();
    let (got, stats, report) =
        run_plan_optimized(&plan, &[&rel], ExecConfig::default().with_workers(4)).unwrap();
    assert_eq!(got, expected);
    assert_eq!(
        report.pushed_filters, 1,
        "filter should move below OrExpand"
    );
    assert!(report.estimate.is_some());
    assert!(stats.workers >= 1 && stats.workers <= 4);
}

#[test]
fn planned_expansion_keeps_orset_reading_filters_above() {
    let rel = fanout_relation(10, 4);
    // a filter over the *expanded* cpu value: on worlds, cpu is a plain int
    // — this predicate does not typecheck on unexpanded rows, so it must
    // stay above the expansion (and the results must still agree)
    let cpu_small = M::Proj2
        .then(M::Proj1)
        .then(M::pair(M::Id, M::constant(Value::Int(2))))
        .then(M::Prim(Prim::Leq));
    let query = M::map(M::Normalize.then(M::OrToSet))
        .then(M::Mu)
        .then(derived::select(cpu_small));
    let plan = lower(&query).unwrap();
    let expected = rel.query(&query).unwrap();
    let (got, _, report) = run_plan_optimized(&plan, &[&rel], ExecConfig::default()).unwrap();
    assert_eq!(got, expected);
    assert_eq!(report.pushed_filters, 0);
}

#[test]
fn interned_dedup_collapses_shared_worlds() {
    // every row expands to the same two worlds: dedup must leave exactly 2
    let rows: Vec<Value> = (0..50)
        .map(|_| Value::int_orset([1, 2]))
        .collect::<std::collections::HashSet<_>>() // rows themselves dedup to 1
        .into_iter()
        .collect();
    let many: Vec<Value> = (0..8)
        .map(|i| Value::pair(Value::Int(i % 2), Value::int_orset([7, 9])))
        .collect();
    let plan = PhysicalPlan::scan(0).or_expand();
    let exec = Executor::new(ExecConfig::default().with_batch_size(3));
    let out = exec.run(&plan, &[&many]).unwrap();
    // 2 distinct ids × 2 alternatives
    assert_eq!(out.len(), 4);
    let out2 = exec.run(&plan, &[&rows]).unwrap();
    assert_eq!(out2, vec![Value::Int(1), Value::Int(2)]);
}

#[test]
fn or_expand_budget_is_enforced_and_reported() {
    // a row with 3 × 3 × 3 = 27 denotations
    let wide = Value::pair(
        Value::int_orset([1, 2, 3]),
        Value::pair(Value::int_orset([4, 5, 6]), Value::int_orset([7, 8, 9])),
    );
    let rows = vec![wide];
    let plan = PhysicalPlan::scan(0).or_expand_budgeted(8);
    let exec = Executor::new(ExecConfig::default());
    match exec.run(&plan, &[rows.as_slice()]) {
        Err(EngineError::BudgetExceeded { budget: 8, needed }) => {
            assert_eq!(needed, 27);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
    // a budget of 27 admits the row
    let plan = PhysicalPlan::scan(0).or_expand_budgeted(27);
    assert_eq!(exec.run(&plan, &[rows.as_slice()]).unwrap().len(), 27);
    // config-level default budget applies to budget-less plans
    let plan = PhysicalPlan::scan(0).or_expand();
    let strict = Executor::new(ExecConfig::default().with_or_budget(4));
    assert!(matches!(
        strict.run(&plan, &[rows.as_slice()]),
        Err(EngineError::BudgetExceeded { budget: 4, .. })
    ));
}

#[test]
fn relations_run_plans_and_morphisms() {
    let schema =
        Schema::new([Field::new("name", Type::Str), Field::new("cost", Type::Int)]).unwrap();
    let mut rel = Relation::new("parts", schema);
    for (name, cost) in [("bolt", 2), ("gear", 40), ("cam", 15), ("rod", 90)] {
        rel.insert(vec![Value::str(name), Value::Int(cost)])
            .unwrap();
    }
    let query = derived::select(cheap(20)).then(M::map(M::Proj1));
    let config = ExecConfig::default().with_workers(2);
    let via_morphism = run_morphism(&rel, &query, config).unwrap();
    assert_eq!(
        via_morphism,
        Value::set([Value::str("bolt"), Value::str("cam")])
    );
    let plan = lower(&query).unwrap();
    let (via_plan, stats) = run_plan_with_stats(&plan, &[&rel], config).unwrap();
    assert_eq!(via_plan, via_morphism);
    assert_eq!(stats.rows, 2);
    // interpreter agreement through the Relation API
    assert_eq!(rel.query(&query).unwrap(), via_morphism);
}

#[test]
fn unsupported_morphisms_report_lower_errors() {
    let rel = Relation::new("empty", Schema::new([Field::new("n", Type::Int)]).unwrap());
    // whole-relation normalize is deliberately outside the fragment
    let result = run_morphism(&rel, &M::Normalize, ExecConfig::default());
    assert!(matches!(result, Err(EngineError::Lower(_))));
}

#[test]
fn missing_inputs_are_reported() {
    let plan = PhysicalPlan::scan(1).filter(cheap(5));
    let rows = priced_rows(3);
    let exec = Executor::new(ExecConfig::default());
    assert!(matches!(
        exec.run(&plan, &[rows.as_slice()]),
        Err(EngineError::MissingInput {
            slot: 1,
            provided: 1
        })
    ));
}

#[test]
fn partition_accessors_feed_the_engine() {
    // Relation::partitions is what the executor's contract is built on:
    // running the plan per partition and set-unioning equals running whole.
    let schema = Schema::new([Field::new("n", Type::Int)]).unwrap();
    let rel = Relation::from_records("nums", schema, (0..57).map(Value::Int)).unwrap();
    let plan = PhysicalPlan::scan(0)
        .filter(M::pair(M::Id, M::constant(Value::Int(30))).then(M::Prim(Prim::Lt)));
    let exec = Executor::new(ExecConfig::default());
    let whole = exec.run(&plan, &[rel.records()]).unwrap();
    let mut pieced: Vec<Value> = Vec::new();
    for part in rel.partitions(4) {
        pieced.extend(exec.run(&plan, &[part]).unwrap());
    }
    pieced.sort();
    pieced.dedup();
    assert_eq!(pieced, whole);
    // batches cover the same rows
    let batched: usize = rel.batches(10).map(<[Value]>::len).sum();
    assert_eq!(batched, rel.len());
}

#[test]
fn benchmark_shapes_run_fully_columnar() {
    // The two committed benchmark workloads must be handled 100% by the
    // columnar path: zero scalar-fallback batches, and forcing the scalar
    // path produces identical rows.
    let rows = priced_rows(5000);
    // scan_filter_project: select(cost <= 30) then map(fst)
    let query = derived::select(cheap(30)).then(M::map(M::Proj1));
    let plan = lower(&query).expect("lowerable");
    let exec = Executor::new(ExecConfig::sequential());
    let (columnar_rows, stats) = exec.run_with_stats(&plan, &[&rows]).unwrap();
    assert!(stats.columnar_batches > 0);
    assert_eq!(
        stats.scalar_fallback_batches, 0,
        "filter+project over (id, cost) pairs must stay columnar"
    );
    let scalar_exec = Executor::new(ExecConfig::sequential().with_columnar(false));
    let (scalar_rows, scalar_stats) = scalar_exec.run_with_stats(&plan, &[&rows]).unwrap();
    assert_eq!(columnar_rows, scalar_rows);
    assert_eq!(scalar_stats.columnar_batches, 0);
    assert!(scalar_stats.scalar_fallback_batches > 0);

    // equi_join: join on snd(left) == fst(right)
    let left: Vec<Value> = (0..2000)
        .map(|i| Value::pair(Value::Int(i), Value::Int(i % 40)))
        .collect();
    let right: Vec<Value> = (0..40)
        .map(|g| Value::pair(Value::Int(g), Value::Int(g * 100)))
        .collect();
    let predicate = M::pair(M::Proj1.then(M::Proj2), M::Proj2.then(M::Proj1)).then(M::Eq);
    let plan = PhysicalPlan::scan(0).join(PhysicalPlan::scan(1), predicate);
    let (join_rows, stats) = exec.run_with_stats(&plan, &[&left, &right]).unwrap();
    assert_eq!(join_rows.len(), 2000);
    assert!(stats.columnar_batches > 0);
    assert_eq!(
        stats.scalar_fallback_batches, 0,
        "hash probe with a path key must stay columnar"
    );
    let (scalar_join, _) = scalar_exec.run_with_stats(&plan, &[&left, &right]).unwrap();
    assert_eq!(join_rows, scalar_join);
}

#[test]
fn columnar_fallback_preserves_error_parity() {
    // A row that breaks the analyzed column shape (a string where the
    // integer compare expects an int) makes the columnar path fall back
    // per batch — and the scalar path then raises exactly the error the
    // interpreter would.  Columnar on and off must be indistinguishable,
    // errors included.
    let mut rows = priced_rows(100);
    rows.push(Value::pair(Value::Int(1000), Value::str("oops")));
    let query = derived::select(cheap(50));
    let plan = lower(&query).expect("lowerable");
    let col_err = Executor::new(ExecConfig::sequential().with_batch_size(32))
        .run(&plan, &[&rows])
        .unwrap_err();
    let scalar_err = Executor::new(
        ExecConfig::sequential()
            .with_batch_size(32)
            .with_columnar(false),
    )
    .run(&plan, &[&rows])
    .unwrap_err();
    assert_eq!(format!("{col_err:?}"), format!("{scalar_err:?}"));
    // the interpreter rejects the same relation
    assert!(eval(&query, &Value::set(rows)).is_err());
}
