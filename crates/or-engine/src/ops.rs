//! The streaming operators of the engine — interned end to end.
//!
//! Every operator implements [`Operator`]: a pull-based ("volcano")
//! interface that yields **batches** of rows rather than single rows, so the
//! per-row virtual-dispatch overhead is amortized over
//! [`crate::exec::ExecConfig::batch_size`] rows.  A batch is a plain
//! `Vec<InternId>` — rows live in the query's hash-consing arena
//! ([`or_object::intern::Interner`]) and every operator computes on
//! `u32`-sized ids; `None` signals exhaustion.  [`Value`]s are
//! materialized exactly once, at the executor's result boundary.
//!
//! Plans are **compiled** before execution ([`compile`]): per-row morphisms
//! (filter predicates, projection heads, join keys) become interned
//! [`RowProgram`]s with their constants pre-interned, broadcast (right)
//! sides of joins/cartesians are materialized once into shared id rows, and
//! equi-join probe tables are built once per query as id-keyed hash maps —
//! [`JoinTable`]s, hash-**partitioned** on both the build and the probe
//! side once the build side reaches [`JOIN_PARTITION_MIN_ROWS`] rows.  The
//! compiled tree is plain data, shared by every worker of a morsel-driven
//! run.
//!
//! Operator inventory (mirroring [`PhysicalPlan`]):
//!
//! * [`ScanOp`] — streams an id slice in batches (the slice is either a
//!   whole interned input or one partition of the driving input);
//! * [`FilterOp`] / [`ProjectOp`] — per-row [`RowProgram`] evaluation: no
//!   `Value` tree is ever rebuilt;
//! * [`AttachEnvOp`] — materializes its input, runs the setup morphism once
//!   (the one deliberately value-level step: the setup is an arbitrary
//!   whole-set morphism), then streams interned `(env, row)` pairs;
//! * [`CartesianOp`] / [`JoinOp`] — the right side is a materialized id
//!   slice broadcast to all workers; equi-join predicates of the shape
//!   `eq ∘ ⟨f ∘ π₁, g ∘ π₂⟩` probe a prebuilt `InternId`-keyed
//!   [`JoinTable`] (partitioned by key hash for large build sides), so a
//!   probe hashes 4 bytes instead of a row tree;
//! * [`UnionOp`] — streams the left side, then the right; combined with the
//!   executor's canonical id merge this is exact set union.  On partitioned
//!   runs only the lead worker streams the right side;
//! * [`FlattenOp`] — row-wise `μ`: each row must be an interned set node,
//!   its element ids are streamed;
//! * [`OrExpandOp`] — batched per-row lazy α-expansion via
//!   [`LazyNormalizer::of_interned`], decoding each possible world straight
//!   into the shared arena: or-free sub-rows are reused as ids (zero
//!   re-interning), streaming dedup is a `HashSet<InternId>`, and the
//!   per-row denotation budget is enforced before any decoding happens.

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::Arc;

use or_nra::colprog::{ColumnPredicate, ColumnProgram};
use or_nra::eval::eval;
use or_nra::lazy::LazyNormalizer;
use or_nra::morphism::Morphism;
use or_nra::physical::PhysicalPlan;
use or_nra::rowprog::RowProgram;
use or_object::intern::{Field, FnvBuildHasher, IdSet, InternId, Interner, Node};
use or_object::Value;

use crate::column::{self, ColumnarCounters, IdBlock};
use crate::error::EngineError;

/// Pull-based batch iterator over interned rows.  The arena is threaded
/// through every pull: operators construct new rows (pairs, projected
/// values, expanded worlds) directly in it.
pub trait Operator {
    /// Produce the next batch of rows, or `None` when exhausted.
    fn next_batch(&mut self, arena: &mut Interner) -> Result<Option<Vec<InternId>>, EngineError>;

    /// An upper bound on the rows still to come, when one is cheaply known
    /// (scans know their slice; row-local operators pass their input's
    /// bound through).  Accumulation sites use it to reserve once instead
    /// of growing repeatedly.
    fn rows_hint(&self) -> Option<usize> {
        None
    }
}

/// Drain an operator into a vector of row ids, pre-sizing from the
/// operator's row-count hint.
pub fn drain(op: &mut dyn Operator, arena: &mut Interner) -> Result<Vec<InternId>, EngineError> {
    drain_within(op, arena, None)
}

/// [`drain`] with a wall-clock deadline, checked between batches: a query
/// whose budget expires mid-pipeline is cancelled within one batch of work
/// of the deadline instead of running to completion.
pub(crate) fn drain_within(
    op: &mut dyn Operator,
    arena: &mut Interner,
    deadline: Option<&crate::exec::Deadline>,
) -> Result<Vec<InternId>, EngineError> {
    let mut out = Vec::with_capacity(op.rows_hint().unwrap_or(0));
    while let Some(batch) = op.next_batch(arena)? {
        if let Some(deadline) = deadline {
            deadline.check()?;
        }
        out.extend(batch);
    }
    Ok(out)
}

/// Everything an operator-tree build needs besides the compiled plan
/// itself.  Cheap to copy; shared by the executor's sequential and worker
/// paths.
#[derive(Clone, Copy)]
pub struct BuildCtx<'a> {
    /// Slot-indexed interned inputs (caller inputs plus executor-hoisted
    /// slots), all valid in the query arena (or its base chain).  Slots the
    /// caller pre-interned are borrowed; slots interned at query time are
    /// owned.
    pub inputs: &'a [Cow<'a, [InternId]>],
    /// Rows per operator batch.
    pub batch_size: usize,
    /// Default per-row or-expansion budget for budget-less `OrExpand` nodes.
    pub or_budget: Option<u64>,
    /// Is this the lead worker of a partitioned run?  `Union` right sides
    /// are independent of the driving partition, so only the lead worker
    /// streams them — the canonical merge (set union) makes emitting them
    /// once both sufficient and non-redundant.  Sequential runs always
    /// build with `true`.
    pub lead_worker: bool,
    /// Use the columnar block path where the compiled plan offers one
    /// ([`crate::exec::ExecConfig::columnar`]; differential tests force it
    /// off to pin the scalar path).
    pub columnar: bool,
    /// The query's shared columnar/scalar batch counters — one set per
    /// execution, shared by every operator and worker lane.
    pub counters: &'a ColumnarCounters,
}

/// Discard bucket for compile-time broadcast materialization
/// ([`materialize_right`] runs a subplan *inside* `compile`, before the
/// executor's per-query counters exist).  Those batches are part of plan
/// compilation, not the streamed pipeline, so they are deliberately kept
/// out of [`crate::exec::ExecStats`].
static COMPILE_TIME_COUNTERS: ColumnarCounters = ColumnarCounters::new();

/// An equi-join probe table: right-side key id → indices into the
/// broadcast rows.  Hashing a key is hashing 4 bytes.
pub type IdTable = HashMap<InternId, Vec<u32>, FnvBuildHasher>;

/// Build sides at or above this many rows get a hash-**partitioned** probe
/// table instead of one monolithic map.
pub const JOIN_PARTITION_MIN_ROWS: usize = 4096;

/// Number of hash partitions of a partitioned probe table (a power of two;
/// the partition index is the key hash's top bits).
pub const JOIN_PARTITIONS: usize = 16;

/// The hash partition a key id belongs to.  A Fibonacci (multiplicative)
/// hash over the raw id, deliberately *not* the FNV the per-partition
/// `HashMap` uses — correlated hashes would funnel each partition's keys
/// into a fraction of its buckets.
fn join_partition(key: InternId) -> usize {
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    ((key.index() as u64).wrapping_mul(GOLDEN) >> 60) as usize
}

/// An equi-join probe table, hash-partitioned when the build side is large.
///
/// Small build sides keep the single id-keyed map.  At
/// [`JOIN_PARTITION_MIN_ROWS`] rows the build side is split into
/// [`JOIN_PARTITIONS`] sub-tables by key hash: both sides of the join are
/// then effectively partitioned — build rows land in the sub-table their
/// key hashes to, and each probe hashes its left key once to select the one
/// sub-table it can possibly match, touching a fraction of the build
/// instead of one large cache-hostile map.
#[derive(Debug)]
pub enum JoinTable {
    /// One map over the whole build side.
    Single(IdTable),
    /// [`JOIN_PARTITIONS`] maps; a key's partition is `join_partition`.
    Partitioned(Vec<IdTable>),
}

impl JoinTable {
    /// Build the probe table over the broadcast rows, keyed by `right_key`.
    fn build(
        rows: &[InternId],
        right_key: &RowProgram,
        arena: &mut Interner,
    ) -> Result<JoinTable, EngineError> {
        if rows.len() < JOIN_PARTITION_MIN_ROWS {
            let mut table = IdTable::default();
            table.reserve(rows.len());
            for (i, &row) in rows.iter().enumerate() {
                let key = right_key.run(row, arena)?;
                table.entry(key).or_default().push(i as u32);
            }
            return Ok(JoinTable::Single(table));
        }
        let mut parts: Vec<IdTable> = (0..JOIN_PARTITIONS).map(|_| IdTable::default()).collect();
        for part in &mut parts {
            part.reserve(rows.len() / JOIN_PARTITIONS);
        }
        for (i, &row) in rows.iter().enumerate() {
            let key = right_key.run(row, arena)?;
            parts[join_partition(key)]
                .entry(key)
                .or_default()
                .push(i as u32);
        }
        Ok(JoinTable::Partitioned(parts))
    }

    /// The build-row indices whose key equals `key`.
    pub fn get(&self, key: InternId) -> Option<&[u32]> {
        match self {
            JoinTable::Single(table) => table.get(&key).map(Vec::as_slice),
            JoinTable::Partitioned(parts) => {
                parts[join_partition(key)].get(&key).map(Vec::as_slice)
            }
        }
    }

    /// Is this the partitioned (large-build) form?
    pub fn is_partitioned(&self) -> bool {
        matches!(self, JoinTable::Partitioned(_))
    }
}

/// The materialized right (broadcast) side of a join or cartesian product.
#[derive(Debug, Clone)]
pub enum Broadcast {
    /// A bare scan: the rows are input slot `i` (shared, never copied).
    Slot(usize),
    /// A subplan, run **once at compile time**; its rows are shared by
    /// every worker.
    Rows(Arc<Vec<InternId>>),
}

impl Broadcast {
    fn rows<'a>(&'a self, ctx: &BuildCtx<'a>) -> Result<&'a [InternId], EngineError> {
        match self {
            Broadcast::Slot(slot) => {
                ctx.inputs
                    .get(*slot)
                    .map(Cow::as_ref)
                    .ok_or(EngineError::MissingInput {
                        slot: *slot,
                        provided: ctx.inputs.len(),
                    })
            }
            Broadcast::Rows(rows) => Ok(rows.as_slice()),
        }
    }
}

/// How a join evaluates its predicate.
#[derive(Debug, Clone)]
pub enum JoinKind {
    /// Equality predicate `eq ∘ ⟨f ∘ π₁, g ∘ π₂⟩`: probe a prebuilt
    /// id-keyed table with the left key.
    Hash {
        /// Left-side key extractor.
        left_key: RowProgram,
        /// The key extractor as a bare field path, when it is one — the
        /// columnar probe gathers the whole key column in one pass
        /// instead of running `left_key` per row.
        key_path: Option<Vec<Field>>,
        /// Right-key id → right-row indices, built once per query and
        /// hash-partitioned for large build sides.
        table: Arc<JoinTable>,
    },
    /// General predicate: nested-loop over the broadcast rows.
    Loop {
        /// The predicate over interned `(left, right)` pairs.
        predicate: RowProgram,
    },
}

/// A [`PhysicalPlan`] compiled against a query arena: morphisms are
/// interned [`RowProgram`]s, broadcast sides are materialized id rows, and
/// equi-join tables are prebuilt.  Plain shareable data — workers of a
/// partitioned run all build their operator trees from the same compiled
/// plan.
#[derive(Debug, Clone)]
pub enum CompiledPlan {
    /// Read every row of input slot `i`.
    Scan(usize),
    /// Keep the rows whose predicate is true.
    Filter {
        /// Compiled row predicate.
        predicate: RowProgram,
        /// The predicate's columnar form, when it falls in the
        /// column-expressible compare fragment — chosen once at compile
        /// time ([`ColumnPredicate::of`]).
        columnar: Option<ColumnPredicate>,
        /// Upstream plan.
        input: Box<CompiledPlan>,
    },
    /// Apply a program to every row.
    Project {
        /// Compiled row transformer.
        f: RowProgram,
        /// The transformer's columnar form (gathers + pair formation),
        /// when every operation is column-expressible
        /// ([`ColumnProgram::of`]).
        columnar: Option<ColumnProgram>,
        /// Upstream plan.
        input: Box<CompiledPlan>,
    },
    /// Evaluate `setup` once against the materialized input set, then
    /// stream `(env, row)` pairs.  Kept as a morphism: the setup is a
    /// whole-set computation outside the per-row fragment.
    AttachEnv {
        /// The setup morphism (`{t} → env × {t'}`).
        setup: Morphism,
        /// Upstream plan.
        input: Box<CompiledPlan>,
    },
    /// All pairs of left and broadcast rows.
    Cartesian {
        /// Left (streamed, partitionable) side.
        left: Box<CompiledPlan>,
        /// Right (materialized, broadcast) side.
        right: Broadcast,
    },
    /// Pairs of left and broadcast rows satisfying the join predicate.
    Join {
        /// Left (streamed, partitionable) side.
        left: Box<CompiledPlan>,
        /// Right (materialized, broadcast) side.
        right: Broadcast,
        /// Hash fast path or nested loop.
        kind: JoinKind,
    },
    /// Set union of two row streams.
    Union {
        /// Left (streamed, partitionable) side.
        left: Box<CompiledPlan>,
        /// Right side (streamed whole by the lead worker).
        right: Box<CompiledPlan>,
    },
    /// Row-wise `μ`: every row must be a set node; its elements stream.
    Flatten {
        /// Upstream plan.
        input: Box<CompiledPlan>,
    },
    /// Per-row lazy α-expansion.
    OrExpand {
        /// Per-row denotation cap (`None` = executor default).
        budget: Option<u64>,
        /// Deduplicate expanded rows incrementally while streaming.
        dedup: bool,
        /// Upstream plan.
        input: Box<CompiledPlan>,
    },
}

impl CompiledPlan {
    /// The input slot of the driving scan (the leaf reached by
    /// `input`/`left` children) — the slot the parallel executor
    /// partitions.
    pub fn driving_scan(&self) -> usize {
        match self {
            CompiledPlan::Scan(i) => *i,
            CompiledPlan::Filter { input, .. }
            | CompiledPlan::Project { input, .. }
            | CompiledPlan::AttachEnv { input, .. }
            | CompiledPlan::Flatten { input }
            | CompiledPlan::OrExpand { input, .. } => input.driving_scan(),
            CompiledPlan::Cartesian { left, .. }
            | CompiledPlan::Join { left, .. }
            | CompiledPlan::Union { left, .. } => left.driving_scan(),
        }
    }

    /// Does an `AttachEnv` survive on the driving path?  (It then needs to
    /// see the whole input, so the plan cannot be partitioned.)
    pub fn has_driving_attach_env(&self) -> bool {
        match self {
            CompiledPlan::Scan(_) => false,
            CompiledPlan::AttachEnv { .. } => true,
            CompiledPlan::Filter { input, .. }
            | CompiledPlan::Project { input, .. }
            | CompiledPlan::Flatten { input }
            | CompiledPlan::OrExpand { input, .. } => input.has_driving_attach_env(),
            CompiledPlan::Cartesian { left, .. }
            | CompiledPlan::Join { left, .. }
            | CompiledPlan::Union { left, .. } => left.has_driving_attach_env(),
        }
    }
}

/// Compile a physical plan against the query arena: intern every plan
/// constant, compile per-row morphisms to [`RowProgram`]s, materialize
/// non-scan broadcast sides (each subplan runs exactly once, here), and
/// build the id-keyed probe table of every equi-join.
pub fn compile(
    plan: &PhysicalPlan,
    arena: &mut Interner,
    inputs: &[Cow<'_, [InternId]>],
    batch_size: usize,
    or_budget: Option<u64>,
) -> Result<CompiledPlan, EngineError> {
    Ok(match plan {
        PhysicalPlan::Scan(slot) => CompiledPlan::Scan(*slot),
        PhysicalPlan::Filter { predicate, input } => {
            let predicate = RowProgram::compile(predicate, arena);
            let columnar = ColumnPredicate::of(&predicate);
            CompiledPlan::Filter {
                predicate,
                columnar,
                input: Box::new(compile(input, arena, inputs, batch_size, or_budget)?),
            }
        }
        PhysicalPlan::Project { f, input } => {
            let f = RowProgram::compile(f, arena);
            let columnar = ColumnProgram::of(&f);
            CompiledPlan::Project {
                f,
                columnar,
                input: Box::new(compile(input, arena, inputs, batch_size, or_budget)?),
            }
        }
        PhysicalPlan::AttachEnv { setup, input } => CompiledPlan::AttachEnv {
            setup: setup.clone(),
            input: Box::new(compile(input, arena, inputs, batch_size, or_budget)?),
        },
        PhysicalPlan::Union { left, right } => CompiledPlan::Union {
            left: Box::new(compile(left, arena, inputs, batch_size, or_budget)?),
            right: Box::new(compile(right, arena, inputs, batch_size, or_budget)?),
        },
        PhysicalPlan::Flatten { input } => CompiledPlan::Flatten {
            input: Box::new(compile(input, arena, inputs, batch_size, or_budget)?),
        },
        PhysicalPlan::OrExpand {
            budget,
            dedup,
            input,
        } => CompiledPlan::OrExpand {
            budget: *budget,
            dedup: *dedup,
            input: Box::new(compile(input, arena, inputs, batch_size, or_budget)?),
        },
        PhysicalPlan::Cartesian { left, right } => {
            let left = compile(left, arena, inputs, batch_size, or_budget)?;
            let right = materialize_right(right, arena, inputs, batch_size, or_budget)?;
            CompiledPlan::Cartesian {
                left: Box::new(left),
                right,
            }
        }
        PhysicalPlan::Join {
            predicate,
            left,
            right,
        } => {
            let left = compile(left, arena, inputs, batch_size, or_budget)?;
            let right = materialize_right(right, arena, inputs, batch_size, or_budget)?;
            let kind = match equi_join_keys(predicate) {
                Some((left_key, right_key)) => {
                    let left_key = RowProgram::compile(&left_key, arena);
                    let right_key = RowProgram::compile(&right_key, arena);
                    let rows: &[InternId] =
                        match &right {
                            Broadcast::Slot(slot) => inputs.get(*slot).map(Cow::as_ref).ok_or(
                                EngineError::MissingInput {
                                    slot: *slot,
                                    provided: inputs.len(),
                                },
                            )?,
                            Broadcast::Rows(rows) => rows.as_slice(),
                        };
                    // the borrow on `inputs`/`right` is disjoint from the
                    // arena, so key programs can intern freely
                    let table = JoinTable::build(rows, &right_key, arena)?;
                    let key_path = match ColumnProgram::of(&left_key) {
                        Some(ColumnProgram::Path(p)) => Some(p),
                        _ => None,
                    };
                    JoinKind::Hash {
                        left_key,
                        key_path,
                        table: Arc::new(table),
                    }
                }
                None => JoinKind::Loop {
                    predicate: RowProgram::compile(predicate, arena),
                },
            };
            CompiledPlan::Join {
                left: Box::new(left),
                right,
                kind,
            }
        }
    })
}

/// Produce the broadcast form of a right side: a bare `Scan` is shared by
/// slot, anything else is compiled and run to completion **once**, at
/// compile time — workers then share the materialized id rows instead of
/// re-running the subplan per partition.
fn materialize_right(
    right: &PhysicalPlan,
    arena: &mut Interner,
    inputs: &[Cow<'_, [InternId]>],
    batch_size: usize,
    or_budget: Option<u64>,
) -> Result<Broadcast, EngineError> {
    if let PhysicalPlan::Scan(slot) = right {
        if inputs.get(*slot).is_none() {
            return Err(EngineError::MissingInput {
                slot: *slot,
                provided: inputs.len(),
            });
        }
        return Ok(Broadcast::Slot(*slot));
    }
    let compiled = compile(right, arena, inputs, batch_size, or_budget)?;
    let ctx = BuildCtx {
        inputs,
        batch_size,
        or_budget,
        lead_worker: true,
        columnar: true,
        counters: &COMPILE_TIME_COUNTERS,
    };
    let mut op = build(&compiled, ctx, None)?;
    let rows = drain(op.as_mut(), arena)?;
    Ok(Broadcast::Rows(Arc::new(rows)))
}

/// Evaluate an `AttachEnv` setup morphism against the materialized input set
/// and unpack the required `(env, {rows})` shape.  Shared by the streaming
/// operator and the executor's pre-partitioning hoist so the two paths
/// cannot diverge.
pub(crate) fn unpack_setup_result(
    setup: &Morphism,
    set_value: &Value,
) -> Result<(Value, Vec<Value>), EngineError> {
    let result = eval(setup, set_value)?;
    let (env, rows_value) = match result.as_pair() {
        Some((env, rows_value)) => (env.clone(), rows_value.clone()),
        None => {
            return Err(EngineError::BadSetupResult {
                value: result.to_string(),
            })
        }
    };
    match rows_value {
        Value::Set(items) => Ok((env, items)),
        other => Err(EngineError::BadSetupResult {
            value: Value::pair(env, other).to_string(),
        }),
    }
}

/// Build the operator tree for a compiled plan.
///
/// `ctx.inputs` are the interned relations (slot-indexed id rows);
/// `driver_override`, when present, replaces the rows of the **driving
/// scan** (the leaf reached by `input`/`left` children) — this is how the
/// parallel executor hands each worker its partition.  Non-driving scans
/// always read the full input.
pub fn build<'a>(
    plan: &'a CompiledPlan,
    ctx: BuildCtx<'a>,
    driver_override: Option<&'a [InternId]>,
) -> Result<Box<dyn Operator + 'a>, EngineError> {
    match plan {
        CompiledPlan::Scan(slot) => {
            let rows = match driver_override {
                Some(rows) => rows,
                None => {
                    ctx.inputs
                        .get(*slot)
                        .map(Cow::as_ref)
                        .ok_or(EngineError::MissingInput {
                            slot: *slot,
                            provided: ctx.inputs.len(),
                        })?
                }
            };
            Ok(Box::new(ScanOp {
                rows,
                pos: 0,
                batch_size: ctx.batch_size,
            }))
        }
        CompiledPlan::Filter {
            predicate,
            columnar,
            input,
        } => Ok(Box::new(FilterOp {
            input: build(input, ctx, driver_override)?,
            predicate,
            columnar: if ctx.columnar {
                columnar.as_ref()
            } else {
                None
            },
            block: IdBlock::default(),
            counters: ctx.counters,
        })),
        CompiledPlan::Project { f, columnar, input } => Ok(Box::new(ProjectOp {
            input: build(input, ctx, driver_override)?,
            f,
            columnar: if ctx.columnar {
                columnar.as_ref()
            } else {
                None
            },
            counters: ctx.counters,
        })),
        CompiledPlan::AttachEnv { setup, input } => Ok(Box::new(AttachEnvOp {
            input: Some(build(input, ctx, driver_override)?),
            setup,
            batch_size: ctx.batch_size,
            state: None,
        })),
        CompiledPlan::Union { left, right } => Ok(Box::new(UnionOp {
            left: build(left, ctx, driver_override)?,
            // the right side is independent of the driving partition: only
            // the lead worker streams it (the merge is set union)
            right: if ctx.lead_worker {
                Some(build(right, ctx, None)?)
            } else {
                None
            },
        })),
        CompiledPlan::Flatten { input } => Ok(Box::new(FlattenOp {
            input: build(input, ctx, driver_override)?,
            pending: Vec::new(),
            batch_size: ctx.batch_size,
        })),
        CompiledPlan::Cartesian { left, right } => Ok(Box::new(CartesianOp {
            left: build(left, ctx, driver_override)?,
            right_rows: right.rows(&ctx)?,
            pending: Vec::new(),
            batch_size: ctx.batch_size,
        })),
        CompiledPlan::Join { left, right, kind } => Ok(Box::new(JoinOp {
            left: build(left, ctx, driver_override)?,
            right_rows: right.rows(&ctx)?,
            kind,
            pending: Vec::new(),
            batch_size: ctx.batch_size,
            columnar: ctx.columnar,
            block: IdBlock::default(),
            counters: ctx.counters,
        })),
        CompiledPlan::OrExpand {
            budget,
            dedup,
            input,
        } => {
            // Scan fusion: expanding directly over a scan reads the id rows
            // in place instead of copying them through intermediate batches.
            let source = if let CompiledPlan::Scan(slot) = &**input {
                let rows =
                    match driver_override {
                        Some(rows) => rows,
                        None => ctx.inputs.get(*slot).map(Cow::as_ref).ok_or(
                            EngineError::MissingInput {
                                slot: *slot,
                                provided: ctx.inputs.len(),
                            },
                        )?,
                    };
                ExpandSource::Rows { rows, pos: 0 }
            } else {
                ExpandSource::Op {
                    input: build(input, ctx, driver_override)?,
                    queue: Vec::new(),
                }
            };
            Ok(Box::new(OrExpandOp {
                source,
                budget: budget.or(ctx.or_budget),
                seen: if *dedup { Some(IdSet::default()) } else { None },
                current: None,
                batch_size: ctx.batch_size,
            }))
        }
    }
}

/// Streams an id slice in batches.
pub struct ScanOp<'a> {
    rows: &'a [InternId],
    pos: usize,
    batch_size: usize,
}

impl Operator for ScanOp<'_> {
    fn next_batch(&mut self, _arena: &mut Interner) -> Result<Option<Vec<InternId>>, EngineError> {
        if self.pos >= self.rows.len() {
            return Ok(None);
        }
        let end = (self.pos + self.batch_size).min(self.rows.len());
        let batch = self.rows[self.pos..end].to_vec();
        self.pos = end;
        Ok(Some(batch))
    }

    fn rows_hint(&self) -> Option<usize> {
        Some(self.rows.len() - self.pos)
    }
}

/// Keeps the rows whose predicate evaluates to `true`.  Columnar fast
/// path: gather the operand columns once per batch, run a branch-free
/// compare kernel into the block's selection vector, gather survivors;
/// any shape mismatch re-runs the whole batch through the scalar row
/// program (identical rows, identical errors).
pub struct FilterOp<'a> {
    input: Box<dyn Operator + 'a>,
    predicate: &'a RowProgram,
    columnar: Option<&'a ColumnPredicate>,
    block: IdBlock,
    counters: &'a ColumnarCounters,
}

impl Operator for FilterOp<'_> {
    fn next_batch(&mut self, arena: &mut Interner) -> Result<Option<Vec<InternId>>, EngineError> {
        // Loop so that a fully-filtered batch does not end the stream.
        while let Some(batch) = self.input.next_batch(arena)? {
            let mut out = Vec::with_capacity(batch.len());
            let columnar = match self.columnar {
                Some(pred) => column::filter_block(pred, &batch, arena, &mut self.block, &mut out),
                None => false,
            };
            if !columnar {
                out.clear();
                for &row in &batch {
                    let verdict = self.predicate.run(row, arena)?;
                    match arena.node(verdict) {
                        Node::Bool(true) => out.push(row),
                        Node::Bool(false) => {}
                        _ => {
                            return Err(EngineError::NonBooleanPredicate {
                                value: arena.value(verdict).to_string(),
                            })
                        }
                    }
                }
            }
            self.counters.note(columnar);
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
        Ok(None)
    }

    fn rows_hint(&self) -> Option<usize> {
        // an upper bound: filtering never adds rows
        self.input.rows_hint()
    }
}

/// Applies a row program to every row.  Columnar fast path: a projection
/// chain is one gather pass over the batch; pair formation interns once
/// per output row at the result boundary.  Shape mismatches re-run the
/// batch through the scalar row program.
pub struct ProjectOp<'a> {
    input: Box<dyn Operator + 'a>,
    f: &'a RowProgram,
    columnar: Option<&'a ColumnProgram>,
    counters: &'a ColumnarCounters,
}

impl Operator for ProjectOp<'_> {
    fn next_batch(&mut self, arena: &mut Interner) -> Result<Option<Vec<InternId>>, EngineError> {
        match self.input.next_batch(arena)? {
            None => Ok(None),
            Some(batch) => {
                let mut out = Vec::with_capacity(batch.len());
                let columnar = match self.columnar {
                    Some(prog) => column::project_block(prog, &batch, arena, &mut out),
                    None => false,
                };
                if !columnar {
                    out.clear();
                    for row in &batch {
                        out.push(self.f.run(*row, arena)?);
                    }
                }
                self.counters.note(columnar);
                Ok(Some(out))
            }
        }
    }

    fn rows_hint(&self) -> Option<usize> {
        self.input.rows_hint()
    }
}

/// Materializes its input, evaluates `setup` once on the whole set, then
/// streams interned `(env, row)` pairs.  The setup morphism is the one
/// value-level evaluation in the operator inventory: it sees the whole set
/// at once and is outside the per-row fragment, so the input ids are
/// decoded for it and the results re-interned.
pub struct AttachEnvOp<'a> {
    input: Option<Box<dyn Operator + 'a>>,
    setup: &'a Morphism,
    batch_size: usize,
    state: Option<(InternId, Vec<InternId>, usize)>,
}

impl Operator for AttachEnvOp<'_> {
    fn next_batch(&mut self, arena: &mut Interner) -> Result<Option<Vec<InternId>>, EngineError> {
        if self.state.is_none() {
            let mut input = self.input.take().expect("AttachEnvOp polled after setup");
            let ids = drain(input.as_mut(), arena)?;
            let rows: Vec<Value> = ids.iter().map(|&id| arena.decode(id)).collect();
            let set_value = Value::set(rows);
            let (env, rows) = unpack_setup_result(self.setup, &set_value)?;
            let env = arena.intern(&env);
            let rows: Vec<InternId> = rows.iter().map(|r| arena.intern(r)).collect();
            self.state = Some((env, rows, 0));
        }
        let (env, rows, pos) = self.state.as_mut().expect("state initialized above");
        if *pos >= rows.len() {
            return Ok(None);
        }
        let end = (*pos + self.batch_size).min(rows.len());
        let env = *env;
        let batch = rows[*pos..end]
            .iter()
            .map(|&row| arena.pair(env, row))
            .collect();
        *pos = end;
        Ok(Some(batch))
    }
}

/// Streams the left side to exhaustion, then the right side.  Together with
/// the executor's canonical merge (id sort + dedup) this computes exact set
/// union.  `right` is `None` on non-lead workers of a partitioned run: the
/// right side does not depend on the partition, so one worker emitting it is
/// enough.
pub struct UnionOp<'a> {
    left: Box<dyn Operator + 'a>,
    right: Option<Box<dyn Operator + 'a>>,
}

impl Operator for UnionOp<'_> {
    fn next_batch(&mut self, arena: &mut Interner) -> Result<Option<Vec<InternId>>, EngineError> {
        if let Some(batch) = self.left.next_batch(arena)? {
            return Ok(Some(batch));
        }
        match &mut self.right {
            Some(right) => right.next_batch(arena),
            None => Ok(None),
        }
    }
}

/// Streams the elements of each input row (`μ` applied row-wise); every row
/// must be an interned set node.  Like [`CartesianOp`], the (potentially
/// much larger) expansion of an input batch is buffered in `pending` and
/// emitted in `batch_size` chunks, so downstream operators keep seeing
/// bounded batches even when individual rows are huge sets.
pub struct FlattenOp<'a> {
    input: Box<dyn Operator + 'a>,
    pending: Vec<InternId>,
    batch_size: usize,
}

impl Operator for FlattenOp<'_> {
    fn next_batch(&mut self, arena: &mut Interner) -> Result<Option<Vec<InternId>>, EngineError> {
        // Loop so that a batch of empty sets does not end the stream.
        while self.pending.is_empty() {
            match self.input.next_batch(arena)? {
                None => return Ok(None),
                Some(batch) => {
                    if let Some(&first) = batch.first() {
                        // reserve from the first row's width as a cheap
                        // batch-size estimate
                        if let Node::Set(items) = arena.node(first) {
                            self.pending.reserve(items.len() * batch.len());
                        }
                    }
                    for row in batch {
                        match arena.node(row) {
                            Node::Set(items) => self.pending.extend(items.iter().copied()),
                            _ => {
                                return Err(EngineError::FlattenNonSet {
                                    value: arena.value(row).to_string(),
                                })
                            }
                        }
                    }
                }
            }
        }
        let take = self.pending.len().min(self.batch_size.max(1));
        let rest = self.pending.split_off(take);
        let batch = std::mem::replace(&mut self.pending, rest);
        Ok(Some(batch))
    }
}

/// All pairs of left and broadcast rows.
pub struct CartesianOp<'a> {
    left: Box<dyn Operator + 'a>,
    right_rows: &'a [InternId],
    pending: Vec<InternId>,
    batch_size: usize,
}

impl Operator for CartesianOp<'_> {
    fn next_batch(&mut self, arena: &mut Interner) -> Result<Option<Vec<InternId>>, EngineError> {
        while self.pending.is_empty() {
            match self.left.next_batch(arena)? {
                None => return Ok(None),
                Some(batch) => {
                    self.pending.reserve(batch.len() * self.right_rows.len());
                    for &l in &batch {
                        for &r in self.right_rows {
                            self.pending.push(arena.pair(l, r));
                        }
                    }
                }
            }
        }
        let take = self.pending.len().min(self.batch_size.max(1));
        let rest = self.pending.split_off(take);
        let batch = std::mem::replace(&mut self.pending, rest);
        Ok(Some(batch))
    }
}

/// Nested-loop join with a hash fast path for equality predicates.  When
/// the left key is a bare field path, the hash probe runs columnar: the
/// whole key column is gathered in one pass and probed as a batch
/// ([`column::probe_block`]); a left row without the key path re-runs the
/// batch through the per-row key program.
pub struct JoinOp<'a> {
    left: Box<dyn Operator + 'a>,
    right_rows: &'a [InternId],
    kind: &'a JoinKind,
    pending: Vec<InternId>,
    batch_size: usize,
    columnar: bool,
    block: IdBlock,
    counters: &'a ColumnarCounters,
}

impl Operator for JoinOp<'_> {
    fn next_batch(&mut self, arena: &mut Interner) -> Result<Option<Vec<InternId>>, EngineError> {
        while self.pending.is_empty() {
            match self.left.next_batch(arena)? {
                None => return Ok(None),
                Some(batch) => match self.kind {
                    JoinKind::Hash {
                        left_key,
                        key_path,
                        table,
                    } => {
                        let columnar = match key_path {
                            Some(path) if self.columnar => column::probe_block(
                                path,
                                &batch,
                                self.right_rows,
                                table,
                                arena,
                                &mut self.block,
                                &mut self.pending,
                            ),
                            _ => false,
                        };
                        if !columnar {
                            for &l in &batch {
                                let key = left_key.run(l, arena)?;
                                if let Some(matches) = table.get(key) {
                                    self.pending.reserve(matches.len());
                                    for &i in matches {
                                        self.pending
                                            .push(arena.pair(l, self.right_rows[i as usize]));
                                    }
                                }
                            }
                        }
                        self.counters.note(columnar);
                    }
                    JoinKind::Loop { predicate } => {
                        for &l in &batch {
                            for &r in self.right_rows {
                                let pair = arena.pair(l, r);
                                let verdict = predicate.run(pair, arena)?;
                                match arena.node(verdict) {
                                    Node::Bool(true) => self.pending.push(pair),
                                    Node::Bool(false) => {}
                                    _ => {
                                        return Err(EngineError::NonBooleanPredicate {
                                            value: arena.value(verdict).to_string(),
                                        })
                                    }
                                }
                            }
                        }
                    }
                },
            }
        }
        let take = self.pending.len().min(self.batch_size.max(1));
        let rest = self.pending.split_off(take);
        let batch = std::mem::replace(&mut self.pending, rest);
        Ok(Some(batch))
    }
}

/// Recognize `eq ∘ ⟨f ∘ π₁, g ∘ π₂⟩` and return `(f, g)` — the per-side key
/// extractors of an equi-join, with the pair projection stripped so each can
/// be applied to its own row directly.
fn equi_join_keys(predicate: &Morphism) -> Option<(Morphism, Morphism)> {
    if let Morphism::Compose(eq, pair) = predicate {
        if **eq == Morphism::Eq {
            if let Morphism::PairWith(a, b) = &**pair {
                if let (Some(f), Some(g)) = (
                    strip_side(a, &Morphism::Proj1),
                    strip_side(b, &Morphism::Proj2),
                ) {
                    return Some((f, g));
                }
            }
        }
    }
    None
}

/// If `m` has the form `f ∘ proj` (it reads only one side of the pair),
/// return `f` (with bare `proj` becoming `id`).
fn strip_side(m: &Morphism, proj: &Morphism) -> Option<Morphism> {
    match m {
        _ if m == proj => Some(Morphism::Id),
        Morphism::Compose(f, g) => {
            if &**g == proj {
                Some((**f).clone())
            } else {
                let inner = strip_side(g, proj)?;
                Some(Morphism::compose((**f).clone(), inner))
            }
        }
        _ => None,
    }
}

/// Batched per-row lazy α-expansion with interned streaming dedup and a
/// denotation budget.
///
/// Rows arrive as ids in the shared query arena; each is compiled via
/// [`LazyNormalizer::of_interned`], so its or-free sub-structure is reused
/// **as ids** and only genuine choice points are decoded per world.  Worlds
/// land in the same arena — repeated sub-values across rows are stored
/// once, world identity is an [`InternId`], and the dedup filter is a hash
/// set of 4-byte ids.  Surviving worlds are emitted as ids; nothing is
/// materialized here.  The per-row denotation budget is enforced from the
/// normalizer's closed-form count before any decoding happens.
pub struct OrExpandOp<'a> {
    source: ExpandSource<'a>,
    budget: Option<u64>,
    seen: Option<IdSet>,
    current: Option<LazyNormalizer>,
    batch_size: usize,
}

/// Where an [`OrExpandOp`] pulls its rows from: a fused scan reading an id
/// slice in place, or an arbitrary upstream operator with an owned queue.
enum ExpandSource<'a> {
    Rows {
        rows: &'a [InternId],
        pos: usize,
    },
    Op {
        input: Box<dyn Operator + 'a>,
        queue: Vec<InternId>,
    },
}

impl ExpandSource<'_> {
    /// Compile the next row's normalizer, or `None` when exhausted.
    fn next_normalizer(
        &mut self,
        arena: &mut Interner,
    ) -> Result<Option<LazyNormalizer>, EngineError> {
        match self {
            ExpandSource::Rows { rows, pos } => {
                if *pos >= rows.len() {
                    return Ok(None);
                }
                let n = LazyNormalizer::of_interned(arena, rows[*pos]);
                *pos += 1;
                Ok(Some(n))
            }
            ExpandSource::Op { input, queue } => loop {
                if let Some(row) = queue.pop() {
                    return Ok(Some(LazyNormalizer::of_interned(arena, row)));
                }
                match input.next_batch(arena)? {
                    Some(batch) => {
                        *queue = batch;
                        queue.reverse(); // pop() then yields input order
                    }
                    None => return Ok(None),
                }
            },
        }
    }
}

impl Operator for OrExpandOp<'_> {
    fn next_batch(&mut self, arena: &mut Interner) -> Result<Option<Vec<InternId>>, EngineError> {
        let mut out = Vec::with_capacity(self.batch_size);
        loop {
            // 1. stream from the current row's expansion
            if let Some(normalizer) = &mut self.current {
                while let Some(world) = normalizer.next_interned(arena) {
                    let fresh = match &mut self.seen {
                        Some(seen) => seen.insert(world),
                        None => true,
                    };
                    if fresh {
                        out.push(world);
                        if out.len() >= self.batch_size {
                            return Ok(Some(out));
                        }
                    }
                }
                self.current = None;
            }
            // 2. start expanding the next source row
            match self.source.next_normalizer(arena)? {
                Some(normalizer) => {
                    if let Some(budget) = self.budget {
                        if normalizer.total() > u128::from(budget) {
                            return Err(EngineError::BudgetExceeded {
                                budget,
                                needed: normalizer.total(),
                            });
                        }
                    }
                    self.current = Some(normalizer);
                }
                None => {
                    return if out.is_empty() {
                        Ok(None)
                    } else {
                        Ok(Some(out))
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a key program `Proj1` (key = first field of each pair row).
    fn key_program(arena: &mut Interner) -> RowProgram {
        RowProgram::compile(&Morphism::Proj1, arena)
    }

    /// Intern `n` pair rows `(i % groups, i)`.
    fn keyed_rows(arena: &mut Interner, n: i64, groups: i64) -> Vec<InternId> {
        (0..n)
            .map(|i| {
                let k = arena.intern(&Value::Int(i % groups));
                let v = arena.intern(&Value::Int(i));
                arena.pair(k, v)
            })
            .collect()
    }

    /// Small build sides stay a single map; large ones partition, and both
    /// forms answer every probe identically.
    #[test]
    fn join_table_partitions_large_build_sides() {
        let mut arena = Interner::new();
        let small = keyed_rows(&mut arena, 64, 8);
        let key = key_program(&mut arena);
        let t = JoinTable::build(&small, &key, &mut arena).unwrap();
        assert!(!t.is_partitioned(), "64 rows stay a single map");

        let n = (JOIN_PARTITION_MIN_ROWS + 100) as i64;
        let large = keyed_rows(&mut arena, n, 97);
        let t = JoinTable::build(&large, &key, &mut arena).unwrap();
        assert!(t.is_partitioned(), "{n} rows get a partitioned table");

        // every key id answers with exactly the build rows holding that key
        for g in 0..97i64 {
            let key_id = arena.intern(&Value::Int(g));
            let matches = t.get(key_id).unwrap();
            let expected: Vec<u32> = (0..n).filter(|i| i % 97 == g).map(|i| i as u32).collect();
            assert_eq!(matches, expected.as_slice(), "key {g}");
        }
        // a key absent from the build side misses in the partitioned form too
        let missing = arena.intern(&Value::Int(1_000_000));
        assert_eq!(t.get(missing), None);
    }

    /// The partition selector spreads ids across all partitions (no
    /// degenerate funnel into one sub-table).
    #[test]
    fn join_partition_spreads_keys() {
        let mut arena = Interner::new();
        let mut hits = vec![0usize; JOIN_PARTITIONS];
        for raw in 0..10_000i64 {
            let id = arena.intern(&Value::Int(raw));
            hits[join_partition(id)] += 1;
        }
        // consecutive ids should never all collapse into a few partitions
        let populated = hits.iter().filter(|&&h| h > 0).count();
        assert!(
            populated >= JOIN_PARTITIONS / 2,
            "partition histogram {hits:?}"
        );
    }
}
