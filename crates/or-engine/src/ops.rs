//! The streaming operators of the engine.
//!
//! Every operator implements [`Operator`]: a pull-based ("volcano")
//! interface that yields **batches** of rows rather than single rows, so the
//! per-row virtual-dispatch overhead is amortized over
//! [`crate::exec::ExecConfig::batch_size`] rows.  A batch is a plain
//! `Vec<Value>`; `None` signals exhaustion.
//!
//! Operator inventory (mirroring [`PhysicalPlan`]):
//!
//! * [`ScanOp`] — streams a row slice in batches (the slice is either a whole
//!   input or one partition of the driving input);
//! * [`FilterOp`] / [`ProjectOp`] — per-row morphism evaluation;
//! * [`AttachEnvOp`] — materializes its input, runs the setup morphism once,
//!   then streams `(env, row)` pairs;
//! * [`CartesianOp`] / [`JoinOp`] — the right side is materialized and
//!   broadcast, the left side streams; equi-join predicates of the shape
//!   `eq ∘ ⟨f ∘ π₁, g ∘ π₂⟩` take a hash fast path instead of the
//!   nested-loop probe;
//! * [`UnionOp`] — streams the left side, then the right; combined with the
//!   executor's canonical merge this is exact set union.  On partitioned
//!   runs only the lead worker streams the right side;
//! * [`FlattenOp`] — row-wise `μ`: each row must be a set, its elements are
//!   streamed;
//! * [`OrExpandOp`] — batched per-row lazy α-expansion via
//!   [`or_nra::lazy::LazyNormalizer`], decoding each possible world straight
//!   into a per-operator hash-consing arena
//!   ([`or_object::intern::Interner`]): worlds produced by different rows
//!   share sub-structure, streaming dedup is a `HashSet<InternId>` (O(1) per
//!   world instead of a deep hash + deep clone), and only worlds that
//!   survive dedup are materialized as owned [`Value`]s.  The per-row
//!   denotation budget is enforced before any decoding happens.

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::Arc;

use or_nra::eval::eval;
use or_nra::lazy::LazyNormalizer;
use or_nra::morphism::Morphism;
use or_nra::physical::PhysicalPlan;
use or_object::intern::{IdSet, Interner};
use or_object::Value;

use crate::error::EngineError;

/// Pull-based batch iterator over rows.
pub trait Operator {
    /// Produce the next batch of rows, or `None` when exhausted.
    fn next_batch(&mut self) -> Result<Option<Vec<Value>>, EngineError>;
}

/// Drain an operator into a vector of rows.
pub fn drain(op: &mut dyn Operator) -> Result<Vec<Value>, EngineError> {
    let mut out = Vec::new();
    while let Some(batch) = op.next_batch()? {
        out.extend(batch);
    }
    Ok(out)
}

/// Everything an operator-tree build needs besides the plan itself.
/// Cheap to copy; shared by the executor's sequential and worker paths.
#[derive(Clone, Copy)]
pub struct BuildCtx<'a> {
    /// Slot-indexed row slices (caller inputs plus executor-hoisted slots).
    pub inputs: &'a [&'a [Value]],
    /// Rows per operator batch.
    pub batch_size: usize,
    /// Default per-row or-expansion budget for budget-less `OrExpand` nodes.
    pub or_budget: Option<u64>,
    /// Pre-built equi-join probe tables (see [`JoinCache`]); `None` when the
    /// caller did not prepare any, in which case tables are built inline.
    pub join_cache: Option<&'a JoinCache>,
    /// Is this the lead worker of a partitioned run?  `Union` right sides
    /// are independent of the driving partition, so only the lead worker
    /// streams them — the canonical merge (set union) makes emitting them
    /// once both sufficient and non-redundant.  Sequential runs and
    /// broadcast-side materializations always build with `true`.
    pub lead_worker: bool,
}

/// Equi-join probe tables built **once per query** and shared by every
/// worker.  Keyed by the address of the `Join` node inside the plan the
/// executor holds, so lookups are exact; a plan not present in the cache
/// simply builds its table inline.
#[derive(Debug, Default)]
pub struct JoinCache {
    tables: HashMap<usize, Arc<HashMap<Value, Vec<usize>>>>,
}

impl JoinCache {
    /// Walk `plan` and build the probe table for every equi-join whose right
    /// side is a bare `Scan` (the executor's broadcast hoisting guarantees
    /// this shape).  `plan` must be the same allocation later passed to
    /// [`build`], and must not move in between.
    pub fn prepare(plan: &PhysicalPlan, inputs: &[&[Value]]) -> Result<JoinCache, EngineError> {
        let mut cache = JoinCache::default();
        cache.visit(plan, inputs)?;
        Ok(cache)
    }

    fn visit(&mut self, plan: &PhysicalPlan, inputs: &[&[Value]]) -> Result<(), EngineError> {
        match plan {
            PhysicalPlan::Scan(_) => {}
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::AttachEnv { input, .. }
            | PhysicalPlan::OrExpand { input, .. } => self.visit(input, inputs)?,
            PhysicalPlan::Cartesian { left, right } | PhysicalPlan::Union { left, right } => {
                self.visit(left, inputs)?;
                self.visit(right, inputs)?;
            }
            PhysicalPlan::Flatten { input } => self.visit(input, inputs)?,
            PhysicalPlan::Join {
                predicate,
                left,
                right,
            } => {
                self.visit(left, inputs)?;
                self.visit(right, inputs)?;
                if let (Some((_, right_key)), PhysicalPlan::Scan(slot)) =
                    (equi_join_keys(predicate), &**right)
                {
                    if let Some(rows) = inputs.get(*slot) {
                        let mut table: HashMap<Value, Vec<usize>> = HashMap::new();
                        for (i, r) in rows.iter().enumerate() {
                            table.entry(eval(&right_key, r)?).or_default().push(i);
                        }
                        self.tables.insert(plan_addr(plan), Arc::new(table));
                    }
                }
            }
        }
        Ok(())
    }

    fn get(&self, plan: &PhysicalPlan) -> Option<Arc<HashMap<Value, Vec<usize>>>> {
        self.tables.get(&plan_addr(plan)).cloned()
    }
}

fn plan_addr(plan: &PhysicalPlan) -> usize {
    plan as *const PhysicalPlan as usize
}

/// Evaluate an `AttachEnv` setup morphism against the materialized input set
/// and unpack the required `(env, {rows})` shape.  Shared by the streaming
/// operator and the executor's pre-partitioning hoist so the two paths
/// cannot diverge.
pub(crate) fn unpack_setup_result(
    setup: &Morphism,
    set_value: &Value,
) -> Result<(Value, Vec<Value>), EngineError> {
    let result = eval(setup, set_value)?;
    let (env, rows_value) = match result.as_pair() {
        Some((env, rows_value)) => (env.clone(), rows_value.clone()),
        None => {
            return Err(EngineError::BadSetupResult {
                value: result.to_string(),
            })
        }
    };
    match rows_value {
        Value::Set(items) => Ok((env, items)),
        other => Err(EngineError::BadSetupResult {
            value: Value::pair(env, other).to_string(),
        }),
    }
}

/// Produce the rows of a broadcast (right) side: a bare `Scan` borrows its
/// input slice directly (no clone — the executor pre-materializes broadcast
/// subplans into scans), anything else runs the subplan to completion.
fn materialize_right<'a>(
    right: &'a PhysicalPlan,
    ctx: BuildCtx<'a>,
) -> Result<Cow<'a, [Value]>, EngineError> {
    if let PhysicalPlan::Scan(slot) = right {
        let rows = *ctx.inputs.get(*slot).ok_or(EngineError::MissingInput {
            slot: *slot,
            provided: ctx.inputs.len(),
        })?;
        return Ok(Cow::Borrowed(rows));
    }
    let mut op = build(right, ctx, None)?;
    Ok(Cow::Owned(drain(op.as_mut())?))
}

/// Build the operator tree for `plan`.
///
/// `ctx.inputs` are the caller's relations (slot-indexed row slices);
/// `driver_override`, when present, replaces the rows of the **driving
/// scan** (the leaf reached by `input`/`left` children) — this is how the
/// parallel executor hands each worker its partition.  Non-driving scans
/// always read the full input.
pub fn build<'a>(
    plan: &'a PhysicalPlan,
    ctx: BuildCtx<'a>,
    driver_override: Option<&'a [Value]>,
) -> Result<Box<dyn Operator + 'a>, EngineError> {
    match plan {
        PhysicalPlan::Scan(slot) => {
            let rows = match driver_override {
                Some(rows) => rows,
                None => *ctx.inputs.get(*slot).ok_or(EngineError::MissingInput {
                    slot: *slot,
                    provided: ctx.inputs.len(),
                })?,
            };
            Ok(Box::new(ScanOp {
                rows,
                pos: 0,
                batch_size: ctx.batch_size,
            }))
        }
        PhysicalPlan::Filter { predicate, input } => Ok(Box::new(FilterOp {
            input: build(input, ctx, driver_override)?,
            predicate,
        })),
        PhysicalPlan::Project { f, input } => Ok(Box::new(ProjectOp {
            input: build(input, ctx, driver_override)?,
            f,
        })),
        PhysicalPlan::AttachEnv { setup, input } => Ok(Box::new(AttachEnvOp {
            input: Some(build(input, ctx, driver_override)?),
            setup,
            batch_size: ctx.batch_size,
            state: None,
        })),
        PhysicalPlan::Union { left, right } => Ok(Box::new(UnionOp {
            left: build(left, ctx, driver_override)?,
            // the right side is independent of the driving partition: only
            // the lead worker streams it (the merge is set union)
            right: if ctx.lead_worker {
                Some(build(right, ctx, None)?)
            } else {
                None
            },
        })),
        PhysicalPlan::Flatten { input } => Ok(Box::new(FlattenOp {
            input: build(input, ctx, driver_override)?,
            pending: Vec::new(),
            batch_size: ctx.batch_size,
        })),
        PhysicalPlan::Cartesian { left, right } => {
            let right_rows = materialize_right(right, ctx)?;
            Ok(Box::new(CartesianOp {
                left: build(left, ctx, driver_override)?,
                right_rows,
                pending: Vec::new(),
                batch_size: ctx.batch_size,
            }))
        }
        PhysicalPlan::Join {
            predicate,
            left,
            right,
        } => {
            let right_rows = materialize_right(right, ctx)?;
            let hash = match equi_join_keys(predicate) {
                Some((left_key, right_key)) => {
                    let table = match ctx.join_cache.and_then(|c| c.get(plan)) {
                        Some(shared) => shared,
                        None => {
                            // no prepared table — build inline (key → indices
                            // into right_rows, so rows are not cloned)
                            let mut table: HashMap<Value, Vec<usize>> = HashMap::new();
                            for (i, r) in right_rows.iter().enumerate() {
                                table.entry(eval(&right_key, r)?).or_default().push(i);
                            }
                            Arc::new(table)
                        }
                    };
                    Some(HashJoinSide { left_key, table })
                }
                None => None,
            };
            Ok(Box::new(JoinOp {
                left: build(left, ctx, driver_override)?,
                right_rows,
                predicate,
                hash,
                pending: Vec::new(),
                batch_size: ctx.batch_size,
            }))
        }
        PhysicalPlan::OrExpand {
            budget,
            dedup,
            input,
        } => {
            // Scan fusion: expanding directly over a scan reads the rows in
            // place instead of cloning them into intermediate batches.
            let source = if let PhysicalPlan::Scan(slot) = &**input {
                let rows = match driver_override {
                    Some(rows) => rows,
                    None => *ctx.inputs.get(*slot).ok_or(EngineError::MissingInput {
                        slot: *slot,
                        provided: ctx.inputs.len(),
                    })?,
                };
                ExpandSource::Rows { rows, pos: 0 }
            } else {
                ExpandSource::Op {
                    input: build(input, ctx, driver_override)?,
                    queue: Vec::new(),
                }
            };
            Ok(Box::new(OrExpandOp {
                source,
                budget: budget.or(ctx.or_budget),
                arena: Interner::new(),
                seen: if *dedup { Some(IdSet::default()) } else { None },
                current: None,
                batch_size: ctx.batch_size,
            }))
        }
    }
}

/// Streams a row slice in batches.
pub struct ScanOp<'a> {
    rows: &'a [Value],
    pos: usize,
    batch_size: usize,
}

impl Operator for ScanOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Vec<Value>>, EngineError> {
        if self.pos >= self.rows.len() {
            return Ok(None);
        }
        let end = (self.pos + self.batch_size).min(self.rows.len());
        let batch = self.rows[self.pos..end].to_vec();
        self.pos = end;
        Ok(Some(batch))
    }
}

/// Keeps the rows whose predicate evaluates to `true`.
pub struct FilterOp<'a> {
    input: Box<dyn Operator + 'a>,
    predicate: &'a Morphism,
}

impl Operator for FilterOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Vec<Value>>, EngineError> {
        // Loop so that a fully-filtered batch does not end the stream.
        while let Some(batch) = self.input.next_batch()? {
            let mut out = Vec::with_capacity(batch.len());
            for row in batch {
                match eval(self.predicate, &row)? {
                    Value::Bool(true) => out.push(row),
                    Value::Bool(false) => {}
                    other => {
                        return Err(EngineError::NonBooleanPredicate {
                            value: other.to_string(),
                        })
                    }
                }
            }
            if !out.is_empty() {
                return Ok(Some(out));
            }
        }
        Ok(None)
    }
}

/// Applies a morphism to every row.
pub struct ProjectOp<'a> {
    input: Box<dyn Operator + 'a>,
    f: &'a Morphism,
}

impl Operator for ProjectOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Vec<Value>>, EngineError> {
        match self.input.next_batch()? {
            None => Ok(None),
            Some(batch) => {
                let mut out = Vec::with_capacity(batch.len());
                for row in &batch {
                    out.push(eval(self.f, row)?);
                }
                Ok(Some(out))
            }
        }
    }
}

/// Materializes its input, evaluates `setup` once on the whole set, then
/// streams `(env, row)` pairs.
pub struct AttachEnvOp<'a> {
    input: Option<Box<dyn Operator + 'a>>,
    setup: &'a Morphism,
    batch_size: usize,
    state: Option<(Value, Vec<Value>, usize)>,
}

impl Operator for AttachEnvOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Vec<Value>>, EngineError> {
        if self.state.is_none() {
            let mut input = self.input.take().expect("AttachEnvOp polled after setup");
            let rows = drain(input.as_mut())?;
            let set_value = Value::set(rows);
            let (env, rows) = unpack_setup_result(self.setup, &set_value)?;
            self.state = Some((env, rows, 0));
        }
        let (env, rows, pos) = self.state.as_mut().expect("state initialized above");
        if *pos >= rows.len() {
            return Ok(None);
        }
        let end = (*pos + self.batch_size).min(rows.len());
        let batch = rows[*pos..end]
            .iter()
            .map(|row| Value::pair(env.clone(), row.clone()))
            .collect();
        *pos = end;
        Ok(Some(batch))
    }
}

/// Streams the left side to exhaustion, then the right side.  Together with
/// the executor's canonical merge (sort + dedup) this computes exact set
/// union.  `right` is `None` on non-lead workers of a partitioned run: the
/// right side does not depend on the partition, so one worker emitting it is
/// enough.
pub struct UnionOp<'a> {
    left: Box<dyn Operator + 'a>,
    right: Option<Box<dyn Operator + 'a>>,
}

impl Operator for UnionOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Vec<Value>>, EngineError> {
        if let Some(batch) = self.left.next_batch()? {
            return Ok(Some(batch));
        }
        match &mut self.right {
            Some(right) => right.next_batch(),
            None => Ok(None),
        }
    }
}

/// Streams the elements of each input row (`μ` applied row-wise); every row
/// must itself be a set.  Like [`CartesianOp`], the (potentially much
/// larger) expansion of an input batch is buffered in `pending` and emitted
/// in `batch_size` chunks, so downstream operators keep seeing bounded
/// batches even when individual rows are huge sets.
pub struct FlattenOp<'a> {
    input: Box<dyn Operator + 'a>,
    pending: Vec<Value>,
    batch_size: usize,
}

impl Operator for FlattenOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Vec<Value>>, EngineError> {
        // Loop so that a batch of empty sets does not end the stream.
        while self.pending.is_empty() {
            match self.input.next_batch()? {
                None => return Ok(None),
                Some(batch) => {
                    for row in batch {
                        match row {
                            Value::Set(items) => self.pending.extend(items),
                            other => {
                                return Err(EngineError::FlattenNonSet {
                                    value: other.to_string(),
                                })
                            }
                        }
                    }
                }
            }
        }
        let take = self.pending.len().min(self.batch_size.max(1));
        let rest = self.pending.split_off(take);
        let batch = std::mem::replace(&mut self.pending, rest);
        Ok(Some(batch))
    }
}

/// All pairs of left and (materialized) right rows.
pub struct CartesianOp<'a> {
    left: Box<dyn Operator + 'a>,
    right_rows: Cow<'a, [Value]>,
    pending: Vec<Value>,
    batch_size: usize,
}

impl Operator for CartesianOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Vec<Value>>, EngineError> {
        while self.pending.is_empty() {
            match self.left.next_batch()? {
                None => return Ok(None),
                Some(batch) => {
                    for l in &batch {
                        for r in self.right_rows.iter() {
                            self.pending.push(Value::pair(l.clone(), r.clone()));
                        }
                    }
                }
            }
        }
        let take = self.pending.len().min(self.batch_size.max(1));
        let rest = self.pending.split_off(take);
        let batch = std::mem::replace(&mut self.pending, rest);
        Ok(Some(batch))
    }
}

struct HashJoinSide {
    left_key: Morphism,
    table: Arc<HashMap<Value, Vec<usize>>>,
}

/// Nested-loop join with a hash fast path for equality predicates.
pub struct JoinOp<'a> {
    left: Box<dyn Operator + 'a>,
    right_rows: Cow<'a, [Value]>,
    predicate: &'a Morphism,
    hash: Option<HashJoinSide>,
    pending: Vec<Value>,
    batch_size: usize,
}

impl Operator for JoinOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Vec<Value>>, EngineError> {
        while self.pending.is_empty() {
            match self.left.next_batch()? {
                None => return Ok(None),
                Some(batch) => {
                    for l in &batch {
                        match &self.hash {
                            Some(side) => {
                                let key = eval(&side.left_key, l)?;
                                if let Some(matches) = side.table.get(&key) {
                                    for &i in matches {
                                        self.pending.push(Value::pair(
                                            l.clone(),
                                            self.right_rows[i].clone(),
                                        ));
                                    }
                                }
                            }
                            None => {
                                for r in self.right_rows.iter() {
                                    let pair = Value::pair(l.clone(), r.clone());
                                    match eval(self.predicate, &pair)? {
                                        Value::Bool(true) => self.pending.push(pair),
                                        Value::Bool(false) => {}
                                        other => {
                                            return Err(EngineError::NonBooleanPredicate {
                                                value: other.to_string(),
                                            })
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        let take = self.pending.len().min(self.batch_size.max(1));
        let rest = self.pending.split_off(take);
        let batch = std::mem::replace(&mut self.pending, rest);
        Ok(Some(batch))
    }
}

/// Recognize `eq ∘ ⟨f ∘ π₁, g ∘ π₂⟩` and return `(f, g)` — the per-side key
/// extractors of an equi-join, with the pair projection stripped so each can
/// be applied to its own row directly.
fn equi_join_keys(predicate: &Morphism) -> Option<(Morphism, Morphism)> {
    if let Morphism::Compose(eq, pair) = predicate {
        if **eq == Morphism::Eq {
            if let Morphism::PairWith(a, b) = &**pair {
                if let (Some(f), Some(g)) = (
                    strip_side(a, &Morphism::Proj1),
                    strip_side(b, &Morphism::Proj2),
                ) {
                    return Some((f, g));
                }
            }
        }
    }
    None
}

/// If `m` has the form `f ∘ proj` (it reads only one side of the pair),
/// return `f` (with bare `proj` becoming `id`).
fn strip_side(m: &Morphism, proj: &Morphism) -> Option<Morphism> {
    match m {
        _ if m == proj => Some(Morphism::Id),
        Morphism::Compose(f, g) => {
            if &**g == proj {
                Some((**f).clone())
            } else {
                let inner = strip_side(g, proj)?;
                Some(Morphism::compose((**f).clone(), inner))
            }
        }
        _ => None,
    }
}

/// Batched per-row lazy α-expansion with interned streaming dedup and a
/// denotation budget.
///
/// The operator owns a hash-consing [`Interner`] that lives for its whole
/// input stream — the "scratch arena" of the expansion.  Every decoded
/// world lands in the arena first ([`LazyNormalizer::next_interned`]), so
/// repeated sub-values across rows are stored once, world identity is an
/// [`InternId`](or_object::intern::InternId), and the dedup filter is a
/// hash set of 4-byte ids.  Only worlds that pass dedup are materialized into owned [`Value`] rows for
/// the output batch.
pub struct OrExpandOp<'a> {
    source: ExpandSource<'a>,
    budget: Option<u64>,
    arena: Interner,
    seen: Option<IdSet>,
    current: Option<LazyNormalizer>,
    batch_size: usize,
}

/// Where an [`OrExpandOp`] pulls its rows from: a fused scan reading a row
/// slice in place, or an arbitrary upstream operator with an owned queue.
enum ExpandSource<'a> {
    Rows {
        rows: &'a [Value],
        pos: usize,
    },
    Op {
        input: Box<dyn Operator + 'a>,
        queue: Vec<Value>,
    },
}

impl ExpandSource<'_> {
    /// Compile the next row's normalizer, or `None` when exhausted.
    fn next_normalizer(&mut self) -> Result<Option<LazyNormalizer>, EngineError> {
        match self {
            ExpandSource::Rows { rows, pos } => {
                if *pos >= rows.len() {
                    return Ok(None);
                }
                let n = LazyNormalizer::new(&rows[*pos]);
                *pos += 1;
                Ok(Some(n))
            }
            ExpandSource::Op { input, queue } => loop {
                if let Some(row) = queue.pop() {
                    return Ok(Some(LazyNormalizer::new(&row)));
                }
                match input.next_batch()? {
                    Some(batch) => {
                        *queue = batch;
                        queue.reverse(); // pop() then yields input order
                    }
                    None => return Ok(None),
                }
            },
        }
    }
}

impl Operator for OrExpandOp<'_> {
    fn next_batch(&mut self) -> Result<Option<Vec<Value>>, EngineError> {
        let mut out = Vec::with_capacity(self.batch_size);
        loop {
            // 1. stream from the current row's expansion
            if let Some(normalizer) = &mut self.current {
                match &mut self.seen {
                    // interned path: dedup by id, materialize fresh worlds
                    Some(seen) => {
                        while let Some(world) = normalizer.next_interned(&mut self.arena) {
                            if seen.insert(world) {
                                out.push(self.arena.value(world));
                                if out.len() >= self.batch_size {
                                    return Ok(Some(out));
                                }
                            }
                        }
                    }
                    // no dedup requested: skip the arena entirely
                    None => {
                        for world in normalizer.by_ref() {
                            out.push(world);
                            if out.len() >= self.batch_size {
                                return Ok(Some(out));
                            }
                        }
                    }
                }
                self.current = None;
            }
            // 2. start expanding the next source row
            match self.source.next_normalizer()? {
                Some(normalizer) => {
                    if let Some(budget) = self.budget {
                        if normalizer.total() > u128::from(budget) {
                            return Err(EngineError::BudgetExceeded {
                                budget,
                                needed: normalizer.total(),
                            });
                        }
                    }
                    self.current = Some(normalizer);
                }
                None => {
                    return if out.is_empty() {
                        Ok(None)
                    } else {
                        Ok(Some(out))
                    };
                }
            }
        }
    }
}
