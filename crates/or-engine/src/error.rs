//! Errors reported by the physical execution engine.

use std::fmt;

use or_nra::physical::LowerError;
use or_nra::EvalError;

/// An error raised while building or running a physical plan.
#[derive(Debug)]
pub enum EngineError {
    /// A row-level morphism evaluation failed.
    Eval(EvalError),
    /// The plan references an input slot the caller did not provide.
    MissingInput {
        /// The referenced slot.
        slot: usize,
        /// How many inputs were provided.
        provided: usize,
    },
    /// A filter or join predicate produced a non-boolean value.
    NonBooleanPredicate {
        /// A rendering of the offending value.
        value: String,
    },
    /// An `AttachEnv` setup morphism did not produce an `(env, {rows})` pair.
    BadSetupResult {
        /// A rendering of the offending value.
        value: String,
    },
    /// A row's α-expansion exceeded the configured denotation budget.
    BudgetExceeded {
        /// The configured per-row budget.
        budget: u64,
        /// The number of denotations the row would have produced.
        needed: u128,
    },
    /// The engine was handed a value that is not a set of rows.
    NotARelation {
        /// A rendering of the offending value.
        value: String,
    },
    /// A `Flatten` operator met a row that is not a set.
    FlattenNonSet {
        /// A rendering of the offending row.
        value: String,
    },
    /// The query ran past its wall-clock budget
    /// ([`crate::exec::ExecConfig::time_budget`]).  Checked at batch
    /// boundaries, so a query is cancelled within one batch of work of the
    /// deadline rather than running to completion; a zero budget rejects
    /// the query at admission, before any row work.
    TimeBudgetExceeded {
        /// The configured wall-clock budget, in milliseconds.
        budget_ms: u128,
    },
    /// A worker thread panicked.  The panic is caught at the join point and
    /// surfaced as a query error instead of aborting the whole process; on
    /// the morsel-driven path this covers both morsels a worker claimed
    /// from its own shard and morsels it stole from a sibling — the
    /// claiming thread owns the failure regardless of where the rows came
    /// from.
    WorkerPanic {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A morphism could not be lowered to a plan.
    Lower(LowerError),
    /// The static plan verifier ([`or_nra::verify`]) rejected the plan
    /// before execution.  Raised by the [`crate::exec::ExecConfig::verify`]
    /// gate; the query publishes nothing.
    InvariantViolation {
        /// The stable rule identifier (e.g. `V01`); the catalog lives in
        /// `docs/ANALYZE.md`.
        rule: String,
        /// Slash-separated path of the offending operator from the plan
        /// root.
        path: String,
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Eval(e) => write!(f, "evaluation error: {e}"),
            EngineError::MissingInput { slot, provided } => write!(
                f,
                "plan references input slot {slot} but only {provided} inputs were provided"
            ),
            EngineError::NonBooleanPredicate { value } => {
                write!(f, "predicate produced the non-boolean value {value}")
            }
            EngineError::BadSetupResult { value } => write!(
                f,
                "AttachEnv setup must produce a pair (env, {{rows}}), got {value}"
            ),
            EngineError::BudgetExceeded { budget, needed } => write!(
                f,
                "or-expansion budget exceeded: a row denotes {needed} complete \
                 instances but the budget is {budget}"
            ),
            EngineError::NotARelation { value } => {
                write!(f, "expected a set of rows, got {value}")
            }
            EngineError::FlattenNonSet { value } => {
                write!(f, "Flatten expects every row to be a set, got {value}")
            }
            EngineError::TimeBudgetExceeded { budget_ms } => write!(
                f,
                "time budget exceeded: the query ran past its {budget_ms} ms wall-clock budget"
            ),
            EngineError::WorkerPanic { message } => {
                write!(f, "engine worker panicked: {message}")
            }
            EngineError::Lower(e) => write!(f, "{e}"),
            EngineError::InvariantViolation { rule, path, detail } => {
                write!(f, "plan invariant violation [{rule}] at {path}: {detail}")
            }
        }
    }
}

impl EngineError {
    /// Build an [`EngineError::InvariantViolation`] from a static-verifier
    /// finding.
    pub fn from_violation(v: &or_nra::verify::Violation) -> Self {
        EngineError::InvariantViolation {
            rule: v.rule.id().to_string(),
            path: v.path.clone(),
            detail: v.message.clone(),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<EvalError> for EngineError {
    fn from(e: EvalError) -> Self {
        EngineError::Eval(e)
    }
}

impl From<LowerError> for EngineError {
    fn from(e: LowerError) -> Self {
        EngineError::Lower(e)
    }
}
