//! Columnar block execution: resolve operands to columns, run kernels,
//! fall back per batch.
//!
//! This is the layer between the arena and the pure kernels
//! ([`crate::kernels`]).  A row batch (`&[InternId]`) becomes an
//! [`IdBlock`]: each operand of a column-expressible program
//! ([`or_nra::colprog`]) is **resolved once per block** — a field path
//! gathers into an id column ([`Interner::gather_path`]: one pair-spine
//! walk per row), an integer compare additionally resolves the column to
//! raw `i64`s ([`Interner::resolve_ints`]) — and from there the kernels
//! work on plain slices.  Surviving rows are reassembled by gathering the
//! original batch through the selection vector, so filters never rebuild
//! rows and projections intern only at the result boundary (late
//! materialization).
//!
//! **Fallback is per batch and total.**  Every entry point returns `bool`:
//! `false` means some row's shape did not match the analyzed program (a
//! non-pair on a path, a non-int under an integer compare) and *nothing*
//! was consumed — the caller re-runs that same batch through the scalar
//! [`RowProgram`](or_nra::rowprog::RowProgram) path, which produces the
//! identical rows *or the identical error* the interpreter would.  The
//! columnar path therefore never changes observable behavior, only cost.

use std::sync::atomic::{AtomicU64, Ordering};

use or_nra::colprog::{ColumnCmp, ColumnPredicate, ColumnProgram};
use or_object::intern::{Field, InternId, Interner, Node};

use crate::kernels;
use crate::ops::JoinTable;

/// Per-query batch accounting for the columnar engine, shared by every
/// operator (and every worker lane) of one execution.  `columnar` counts
/// batches handled entirely by block kernels; `scalar` counts batches a
/// columnar-eligible operator had to push through the per-row path — at
/// compile time (program outside the column fragment) or at runtime (a
/// block whose row shapes did not match).  Only columnar-eligible
/// operators (filter, project, hash-join probe) count batches at all, so
/// `scalar == 0` means the columnar path handled 100% of them.
#[derive(Debug, Default)]
pub struct ColumnarCounters {
    columnar: AtomicU64,
    scalar: AtomicU64,
}

impl ColumnarCounters {
    /// Fresh zeroed counters.
    pub const fn new() -> ColumnarCounters {
        ColumnarCounters {
            columnar: AtomicU64::new(0),
            scalar: AtomicU64::new(0),
        }
    }

    /// Record one processed batch.
    pub fn note(&self, columnar: bool) {
        if columnar {
            self.columnar.fetch_add(1, Ordering::Relaxed);
        } else {
            self.scalar.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// `(columnar, scalar-fallback)` batch counts so far.
    pub fn snapshot(&self) -> (u64, u64) {
        (
            self.columnar.load(Ordering::Relaxed),
            self.scalar.load(Ordering::Relaxed),
        )
    }
}

/// One operator's reusable block scratch: the selection vector plus the
/// operand columns (SoA — one `Vec` per resolved column), allocated once
/// and recycled across every batch the operator processes.
#[derive(Debug, Default)]
pub struct IdBlock {
    /// Indices of the surviving rows, in order.
    sel: Vec<u32>,
    ids_a: Vec<InternId>,
    ids_b: Vec<InternId>,
    ints_a: Vec<i64>,
    ints_b: Vec<i64>,
    /// `(probe index, build-row index)` match pairs from a join probe.
    matches: Vec<(u32, u32)>,
}

/// Resolve one predicate operand over the batch: a broadcast constant
/// (`Some(id)`) or a gathered column left in `buf` (`None`).  `None` from
/// the outer `Option` = shape mismatch, fall back.
fn operand_ids(
    op: &ColumnProgram,
    batch: &[InternId],
    arena: &Interner,
    buf: &mut Vec<InternId>,
) -> Option<Option<InternId>> {
    match op {
        ColumnProgram::Const(c) => Some(Some(*c)),
        ColumnProgram::Path(p) => arena.gather_path(batch, p, buf).ok().map(|()| None),
        ColumnProgram::Pair(..) => None,
    }
}

/// The `i64` behind an id, if it names an integer node.
fn int_of(arena: &Interner, id: InternId) -> Option<i64> {
    match arena.node(id) {
        Node::Int(v) => Some(*v),
        _ => None,
    }
}

/// Run a columnar filter over one batch: resolve the operand columns, run
/// the compare kernel into the selection vector, gather the survivors into
/// `out`.  `false` = shape mismatch somewhere in the batch; the caller
/// must re-run the batch on the scalar path (`out` is then meaningless).
pub fn filter_block(
    pred: &ColumnPredicate,
    batch: &[InternId],
    arena: &Interner,
    block: &mut IdBlock,
    out: &mut Vec<InternId>,
) -> bool {
    let IdBlock {
        sel,
        ids_a,
        ids_b,
        ints_a,
        ints_b,
        ..
    } = block;
    let Some(a) = operand_ids(&pred.a, batch, arena, ids_a) else {
        return false;
    };
    let Some(b) = operand_ids(&pred.b, batch, arena, ids_b) else {
        return false;
    };
    match pred.cmp {
        // hash-consing: id equality is structural equality, compare raw ids
        ColumnCmp::IdEq => match (a, b) {
            (None, None) => kernels::select_eq(ids_a, ids_b, pred.negate, sel),
            (None, Some(c)) => kernels::select_eq_const(ids_a, c, pred.negate, sel),
            (Some(c), None) => kernels::select_eq_const(ids_b, c, pred.negate, sel),
            (Some(ca), Some(cb)) => {
                kernels::select_all_if((ca == cb) != pred.negate, batch.len(), sel)
            }
        },
        ColumnCmp::IntLeq | ColumnCmp::IntLt => {
            let strict = pred.cmp == ColumnCmp::IntLt;
            let a = match a {
                None => match arena.resolve_ints(ids_a, ints_a) {
                    Ok(()) => None,
                    Err(_) => return false,
                },
                Some(c) => match int_of(arena, c) {
                    Some(v) => Some(v),
                    None => return false,
                },
            };
            let b = match b {
                None => match arena.resolve_ints(ids_b, ints_b) {
                    Ok(()) => None,
                    Err(_) => return false,
                },
                Some(c) => match int_of(arena, c) {
                    Some(v) => Some(v),
                    None => return false,
                },
            };
            match (a, b) {
                (None, None) => kernels::select_leq(ints_a, ints_b, strict, pred.negate, sel),
                (None, Some(c)) => kernels::select_leq_const(ints_a, c, strict, pred.negate, sel),
                (Some(c), None) => kernels::select_const_leq(c, ints_b, strict, pred.negate, sel),
                (Some(ca), Some(cb)) => {
                    let keep = if strict { ca < cb } else { ca <= cb };
                    kernels::select_all_if(keep != pred.negate, batch.len(), sel);
                }
            }
        }
    }
    kernels::gather(batch, sel, out);
    true
}

/// Run a columnar projection over one batch into `out`.  Paths gather
/// without interning anything; `Pair` programs intern exactly one pair per
/// output row (the late-materialization boundary).  `false` = shape
/// mismatch, re-run the batch on the scalar path.
pub fn project_block(
    prog: &ColumnProgram,
    batch: &[InternId],
    arena: &mut Interner,
    out: &mut Vec<InternId>,
) -> bool {
    match prog {
        ColumnProgram::Path(p) => arena.gather_path(batch, p, out).is_ok(),
        ColumnProgram::Const(c) => {
            out.clear();
            out.resize(batch.len(), *c);
            true
        }
        ColumnProgram::Pair(f, g) => {
            let mut ca = Vec::with_capacity(batch.len());
            let mut cb = Vec::with_capacity(batch.len());
            if !project_block(f, batch, arena, &mut ca) || !project_block(g, batch, arena, &mut cb)
            {
                return false;
            }
            out.clear();
            out.reserve(batch.len());
            for i in 0..batch.len() {
                out.push(arena.pair(ca[i], cb[i]));
            }
            true
        }
    }
}

/// Batched hash-join probe over one left batch: gather the key column in
/// one pass, probe the table with the whole column
/// ([`kernels::probe`]), then intern one output pair per match.  `false`
/// = a left row did not carry the key path, re-run the batch on the
/// scalar path.
pub fn probe_block(
    key_path: &[Field],
    batch: &[InternId],
    right_rows: &[InternId],
    table: &JoinTable,
    arena: &mut Interner,
    block: &mut IdBlock,
    pending: &mut Vec<InternId>,
) -> bool {
    if arena
        .gather_path(batch, key_path, &mut block.ids_a)
        .is_err()
    {
        return false;
    }
    kernels::probe(&block.ids_a, table, &mut block.matches);
    pending.reserve(block.matches.len());
    for &(l, r) in &block.matches {
        pending.push(arena.pair(batch[l as usize], right_rows[r as usize]));
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use or_nra::morphism::{Morphism as M, Prim};
    use or_nra::rowprog::RowProgram;
    use or_object::Value;

    fn rows(arena: &mut Interner, n: i64) -> Vec<InternId> {
        (0..n)
            .map(|i| arena.intern(&Value::pair(Value::Int(i), Value::Int(i % 10))))
            .collect()
    }

    #[test]
    fn filter_block_agrees_with_the_scalar_predicate() {
        let mut arena = Interner::new();
        let batch = rows(&mut arena, 50);
        // snd(row) <= 4, the benchmark filter shape
        let m = M::Proj2
            .then(M::pair(M::Id, M::constant(Value::Int(4))))
            .then(M::Prim(Prim::Leq));
        let prog = RowProgram::compile(&m, &mut arena);
        let pred = ColumnPredicate::of(&prog).expect("columnar");
        let mut block = IdBlock::default();
        let mut out = Vec::new();
        assert!(filter_block(&pred, &batch, &arena, &mut block, &mut out));
        let scalar: Vec<InternId> = batch
            .iter()
            .copied()
            .filter(|&row| {
                let verdict = prog.run(row, &mut arena).unwrap();
                matches!(arena.node(verdict), Node::Bool(true))
            })
            .collect();
        assert_eq!(out, scalar);
        assert!(!out.is_empty() && out.len() < batch.len());
    }

    #[test]
    fn shape_mismatch_reports_fallback_instead_of_erring() {
        let mut arena = Interner::new();
        let mut batch = rows(&mut arena, 3);
        batch.push(arena.intern(&Value::Int(7))); // not a pair
        let m = M::Proj2
            .then(M::pair(M::Id, M::constant(Value::Int(4))))
            .then(M::Prim(Prim::Leq));
        let prog = RowProgram::compile(&m, &mut arena);
        let pred = ColumnPredicate::of(&prog).expect("columnar");
        let mut block = IdBlock::default();
        let mut out = Vec::new();
        assert!(!filter_block(&pred, &batch, &arena, &mut block, &mut out));
        // non-int under an integer compare falls back the same way
        let mut arena2 = Interner::new();
        let bad = vec![arena2.intern(&Value::pair(Value::Int(0), Value::str("x")))];
        let prog2 = RowProgram::compile(&m, &mut arena2);
        let pred2 = ColumnPredicate::of(&prog2).expect("columnar");
        assert!(!filter_block(&pred2, &bad, &arena2, &mut block, &mut out));
    }

    #[test]
    fn project_block_gathers_and_pairs() {
        let mut arena = Interner::new();
        let batch = rows(&mut arena, 10);
        let proj = ColumnProgram::of(&RowProgram::compile(&M::Proj1, &mut arena)).unwrap();
        let mut out = Vec::new();
        assert!(project_block(&proj, &batch, &mut arena, &mut out));
        let scalar: Vec<InternId> = (0..10).map(|i| arena.intern(&Value::Int(i))).collect();
        assert_eq!(out, scalar);
        // swap the pair: interns one new pair per row, same as scalar
        let swap = ColumnProgram::of(&RowProgram::compile(
            &M::pair(M::Proj2, M::Proj1),
            &mut arena,
        ))
        .unwrap();
        assert!(project_block(&swap, &batch, &mut arena, &mut out));
        let prog = RowProgram::compile(&M::pair(M::Proj2, M::Proj1), &mut arena);
        let scalar: Vec<InternId> = batch
            .iter()
            .map(|&row| prog.run(row, &mut arena).unwrap())
            .collect();
        assert_eq!(out, scalar);
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let counters = ColumnarCounters::new();
        counters.note(true);
        counters.note(true);
        counters.note(false);
        assert_eq!(counters.snapshot(), (2, 1));
    }
}
