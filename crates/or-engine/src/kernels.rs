//! Branch-free columnar kernels over **pre-resolved** slices.
//!
//! Each kernel takes plain slices (`&[InternId]` id columns, `&[i64]`
//! integer columns) plus a selection vector and does one tight loop of
//! data-parallel work: compare-into-selection (append the index, advance
//! the cursor by the verdict — no taken branch per row), gather by
//! selection, or probe a prebuilt [`JoinTable`] with a whole key column.
//!
//! The **interner stays out of this file** — that is the columnar
//! contract, enforced statically by lint rule L07 (`or-analyze`): operands
//! are resolved to columns *once per block* by `crate::column`
//! ([`Interner::gather_path`](or_object::intern::Interner::gather_path) /
//! [`Interner::resolve_ints`](or_object::intern::Interner::resolve_ints)
//! do the only per-row node walks), and the kernels then touch nothing but
//! the resulting slices.  A per-row arena probe inside these loops would
//! reintroduce exactly the pointer-chasing the columnar layout exists to
//! amortize away.

use or_object::intern::InternId;

use crate::ops::JoinTable;

/// Rebuild `sel` as the indices `i < len` with a true `keep` verdict, in
/// order.  The loop is branch-free on the verdict: every index is written
/// to the current cursor and the cursor advances by 0 or 1.
#[inline]
fn select_by(len: usize, sel: &mut Vec<u32>, mut keep: impl FnMut(usize) -> bool) {
    sel.clear();
    sel.resize(len, 0);
    let mut n = 0usize;
    for i in 0..len {
        sel[n] = i as u32;
        n += usize::from(keep(i));
    }
    sel.truncate(n);
}

/// Select the rows where the id columns agree (hash-consing makes id
/// equality structural equality).  `negate` flips every verdict.
pub fn select_eq(a: &[InternId], b: &[InternId], negate: bool, sel: &mut Vec<u32>) {
    debug_assert_eq!(a.len(), b.len());
    select_by(a.len().min(b.len()), sel, |i| (a[i] == b[i]) != negate);
}

/// Select the rows whose id equals the broadcast constant.
pub fn select_eq_const(col: &[InternId], c: InternId, negate: bool, sel: &mut Vec<u32>) {
    select_by(col.len(), sel, |i| (col[i] == c) != negate);
}

/// Select the rows where `a[i] <= b[i]` (or `<` when `strict`).
pub fn select_leq(a: &[i64], b: &[i64], strict: bool, negate: bool, sel: &mut Vec<u32>) {
    debug_assert_eq!(a.len(), b.len());
    let len = a.len().min(b.len());
    if strict {
        select_by(len, sel, |i| (a[i] < b[i]) != negate);
    } else {
        select_by(len, sel, |i| (a[i] <= b[i]) != negate);
    }
}

/// Select the rows where `col[i] <= c` (or `<` when `strict`) — the
/// pre-interned constant compare of a `snd(row) <= 30` filter.
pub fn select_leq_const(col: &[i64], c: i64, strict: bool, negate: bool, sel: &mut Vec<u32>) {
    if strict {
        select_by(col.len(), sel, |i| (col[i] < c) != negate);
    } else {
        select_by(col.len(), sel, |i| (col[i] <= c) != negate);
    }
}

/// Select the rows where `c <= col[i]` (or `<` when `strict`) — the
/// constant-on-the-left orientation.
pub fn select_const_leq(c: i64, col: &[i64], strict: bool, negate: bool, sel: &mut Vec<u32>) {
    if strict {
        select_by(col.len(), sel, |i| (c < col[i]) != negate);
    } else {
        select_by(col.len(), sel, |i| (c <= col[i]) != negate);
    }
}

/// Row-independent verdict (both operands constant): keep every row or
/// none.
pub fn select_all_if(keep: bool, len: usize, sel: &mut Vec<u32>) {
    sel.clear();
    if keep {
        sel.extend(0..len as u32);
    }
}

/// Gather the selected rows: `out[j] = rows[sel[j]]`.
pub fn gather(rows: &[InternId], sel: &[u32], out: &mut Vec<InternId>) {
    out.clear();
    out.reserve(sel.len());
    out.extend(sel.iter().map(|&i| rows[i as usize]));
}

/// Probe the join table with a whole key column: for each key that hits,
/// append one `(probe index, build-row index)` pair per match.  The table
/// lookup is the existing Fibonacci-hash partition pick plus one FNV map
/// probe — on 4-byte ids, not row trees.
pub fn probe(keys: &[InternId], table: &JoinTable, out: &mut Vec<(u32, u32)>) {
    out.clear();
    for (i, &key) in keys.iter().enumerate() {
        if let Some(matches) = table.get(key) {
            out.reserve(matches.len());
            for &r in matches {
                out.push((i as u32, r));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    // the arena is test-only scaffolding to mint real ids: the kernels
    // themselves never see it (lint L07 scans up to this module)
    use or_object::intern::Interner;
    use or_object::Value;

    fn ids(arena: &mut Interner, raw: &[i64]) -> Vec<InternId> {
        raw.iter().map(|&i| arena.intern(&Value::Int(i))).collect()
    }

    #[test]
    fn selection_kernels_keep_matching_indices_in_order() {
        let mut arena = Interner::new();
        let a = ids(&mut arena, &[1, 2, 3, 2]);
        let b = ids(&mut arena, &[1, 9, 3, 2]);
        let mut sel = Vec::new();
        select_eq(&a, &b, false, &mut sel);
        assert_eq!(sel, vec![0, 2, 3]);
        select_eq(&a, &b, true, &mut sel);
        assert_eq!(sel, vec![1]);
        select_eq_const(&a, arena.intern(&Value::Int(2)), false, &mut sel);
        assert_eq!(sel, vec![1, 3]);

        let xs = [5i64, -1, 7, 3];
        select_leq_const(&xs, 3, false, false, &mut sel);
        assert_eq!(sel, vec![1, 3]);
        select_leq_const(&xs, 3, true, false, &mut sel);
        assert_eq!(sel, vec![1]);
        select_const_leq(3, &xs, false, false, &mut sel);
        assert_eq!(sel, vec![0, 2, 3]);
        select_leq(&xs, &[5, 0, 6, 3], false, true, &mut sel);
        assert_eq!(sel, vec![2]);

        select_all_if(true, 3, &mut sel);
        assert_eq!(sel, vec![0, 1, 2]);
        select_all_if(false, 3, &mut sel);
        assert!(sel.is_empty());
    }

    #[test]
    fn gather_reassembles_survivors() {
        let mut arena = Interner::new();
        let rows = ids(&mut arena, &[10, 11, 12, 13]);
        let mut out = Vec::new();
        gather(&rows, &[0, 2], &mut out);
        assert_eq!(out, ids(&mut arena, &[10, 12]));
        gather(&rows, &[], &mut out);
        assert!(out.is_empty());
    }
}
