//! The morsel dispatcher: a shared, lock-free work queue over the driving
//! input's row range, with work stealing.
//!
//! The parallel executor no longer hands each worker one static partition.
//! Instead the driving input's `0..rows` range is split into `workers`
//! contiguous **shards**, and workers repeatedly claim small **morsels**
//! (fixed-size row ranges, [`crate::exec::ExecConfig::morsel_rows`] rows
//! each) from the front of a shard:
//!
//! * a worker prefers its **own** shard — morsels it claims there are
//!   contiguous with its previous ones, so the scan stays cache-friendly;
//! * when its own shard is drained it **steals**: it picks the shard with
//!   the most rows remaining and claims a morsel from that shard's front.
//!
//! Skew therefore cannot idle workers: a worker whose shard filters down to
//! nothing (or whose rows expand to nothing) migrates to wherever rows
//! remain, one morsel at a time.
//!
//! Each shard is a single `AtomicU64` packing `(next, end)` row offsets.
//! A claim is one `compare_exchange` bumping `next`; `next` is monotonic
//! and `end` never changes, so there is no ABA problem and no lock.  The
//! queue hands out every row of `0..rows` exactly once, across any
//! interleaving of claims — the property the unit tests pin down.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// Pack a shard's `(next, end)` row offsets into one atomic word.
fn pack(next: usize, end: usize) -> u64 {
    debug_assert!(next <= u32::MAX as usize && end <= u32::MAX as usize);
    ((next as u64) << 32) | end as u64
}

fn unpack(word: u64) -> (usize, usize) {
    ((word >> 32) as usize, (word & u32::MAX as u64) as usize)
}

/// A claimed morsel: which shard it came from and the row range to run.
#[derive(Debug, PartialEq, Eq)]
pub struct Morsel {
    /// The shard the rows were claimed from (`!= worker` means a steal).
    pub shard: usize,
    /// Row offsets into the driving input.
    pub rows: Range<usize>,
}

/// A shared morsel queue over `0..rows`, sharded per worker.
///
/// See the [module docs](self) for the protocol.  The queue is `Sync`:
/// one instance is shared by reference across all worker threads.
#[derive(Debug)]
pub struct MorselQueue {
    shards: Vec<AtomicU64>,
    morsel_rows: usize,
}

impl MorselQueue {
    /// Shard `0..rows` into `workers` near-equal contiguous ranges, to be
    /// claimed `morsel_rows` rows at a time.
    pub fn new(rows: usize, workers: usize, morsel_rows: usize) -> MorselQueue {
        let workers = workers.max(1);
        let base = rows / workers;
        let extra = rows % workers;
        let mut shards = Vec::with_capacity(workers);
        let mut start = 0;
        for i in 0..workers {
            let len = base + usize::from(i < extra);
            shards.push(AtomicU64::new(pack(start, start + len)));
            start += len;
        }
        MorselQueue {
            shards,
            morsel_rows: morsel_rows.max(1),
        }
    }

    /// Rows not yet claimed from shard `i`.
    pub fn remaining(&self, shard: usize) -> usize {
        let (next, end) = unpack(self.shards[shard].load(Ordering::Relaxed));
        end - next
    }

    /// Claim up to `morsel_rows` rows from the front of shard `i`.
    fn claim_from(&self, shard: usize) -> Option<Range<usize>> {
        let slot = &self.shards[shard];
        let mut word = slot.load(Ordering::Relaxed);
        loop {
            let (next, end) = unpack(word);
            if next >= end {
                return None;
            }
            let take = (next + self.morsel_rows).min(end);
            match slot.compare_exchange_weak(
                word,
                pack(take, end),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(next..take),
                Err(actual) => word = actual,
            }
        }
    }

    /// Claim the next morsel for `worker`: from its own shard while that
    /// lasts, then by stealing from the fullest sibling shard.  `None`
    /// means every row of the queue has been claimed.
    pub fn claim(&self, worker: usize) -> Option<Morsel> {
        if let Some(rows) = self.claim_from(worker) {
            return Some(Morsel {
                shard: worker,
                rows,
            });
        }
        loop {
            // steal from the shard with the most rows remaining; re-scan on
            // a lost race (another thief may have emptied our pick)
            let victim = (0..self.shards.len())
                .filter(|&s| s != worker)
                .max_by_key(|&s| self.remaining(s))
                .filter(|&s| self.remaining(s) > 0)?;
            if let Some(rows) = self.claim_from(victim) {
                return Some(Morsel {
                    shard: victim,
                    rows,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Single worker: the queue hands out its shard front-to-back in
    /// morsel-sized ranges and then steals nothing (there is nothing to
    /// steal from).
    #[test]
    fn single_worker_drains_in_order() {
        let q = MorselQueue::new(10, 1, 4);
        let claims: Vec<Morsel> = std::iter::from_fn(|| q.claim(0)).collect();
        assert_eq!(
            claims,
            vec![
                Morsel {
                    shard: 0,
                    rows: 0..4
                },
                Morsel {
                    shard: 0,
                    rows: 4..8
                },
                Morsel {
                    shard: 0,
                    rows: 8..10
                },
            ]
        );
        assert_eq!(q.claim(0), None);
    }

    /// The stealing protocol: a worker that drains its own shard claims
    /// morsels from the fullest sibling, and the union of all claims covers
    /// every row exactly once — no overlap, no loss, under any interleaving
    /// (simulated here by draining worker 0 first).
    #[test]
    fn exhausted_worker_steals_from_fullest_shard() {
        let q = MorselQueue::new(30, 3, 5);
        // worker 0 owns rows 0..10; drain them
        assert_eq!(
            q.claim(0).unwrap(),
            Morsel {
                shard: 0,
                rows: 0..5
            }
        );
        assert_eq!(
            q.claim(0).unwrap(),
            Morsel {
                shard: 0,
                rows: 5..10
            }
        );
        // worker 2 takes one morsel of its own shard (20..30), leaving
        // shard 1 the fullest
        assert_eq!(
            q.claim(2).unwrap(),
            Morsel {
                shard: 2,
                rows: 20..25
            }
        );
        // worker 0 is exhausted: it must steal, and from shard 1 (10 rows
        // remaining beats shard 2's 5)
        assert_eq!(
            q.claim(0).unwrap(),
            Morsel {
                shard: 1,
                rows: 10..15
            }
        );
        // drain everything, from any worker; assert exact coverage
        let mut claimed: Vec<Range<usize>> = vec![0..5, 5..10, 20..25, 10..15];
        for w in [1, 0, 2, 0, 1] {
            if let Some(m) = q.claim(w) {
                claimed.push(m.rows);
            }
        }
        claimed.sort_by_key(|r| r.start);
        let covered: Vec<usize> = claimed.iter().cloned().flatten().collect();
        assert_eq!(
            covered,
            (0..30).collect::<Vec<_>>(),
            "every row exactly once"
        );
        for w in 0..3 {
            assert_eq!(q.claim(w), None);
        }
    }

    /// Adversarial skew: all rows in one shard.  Every worker still makes
    /// progress by stealing from it.
    #[test]
    fn skewed_queue_feeds_every_worker() {
        // 4 workers, 7 rows: shards get 2,2,2,1 — now drain shard 3 and
        // verify workers 0..3 all steal successfully from wherever rows are
        let q = MorselQueue::new(7, 4, 1);
        let mut seen = Vec::new();
        // interleave claims across workers until exhaustion
        let mut active = true;
        while active {
            active = false;
            for w in 0..4 {
                if let Some(m) = q.claim(w) {
                    assert_eq!(m.rows.len(), 1);
                    seen.push(m.rows.start);
                    active = true;
                }
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
    }

    /// Concurrent torture: many threads hammer the queue; the union of the
    /// claims is an exact partition of the row space.
    #[test]
    fn concurrent_claims_partition_the_rows() {
        let q = MorselQueue::new(10_000, 4, 7);
        let results: Vec<Vec<Range<usize>>> = std::thread::scope(|scope| {
            (0..4)
                .map(|w| {
                    let q = &q;
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        while let Some(m) = q.claim(w) {
                            mine.push(m.rows);
                        }
                        mine
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let mut rows: Vec<usize> = results.into_iter().flatten().flatten().collect();
        rows.sort_unstable();
        assert_eq!(rows.len(), 10_000);
        assert_eq!(rows, (0..10_000).collect::<Vec<_>>());
    }

    /// An empty queue yields nothing for any worker.
    #[test]
    fn empty_queue_yields_none() {
        let q = MorselQueue::new(0, 3, 8);
        for w in 0..3 {
            assert_eq!(q.claim(w), None);
        }
    }
}
