//! Plan execution: sequential and multi-threaded, interned end to end.
//!
//! ## The arena discipline
//!
//! A query runs against one hash-consing arena
//! ([`or_object::intern::Interner`]).  The executor interns each input
//! relation **once** (or reuses ids the caller already interned — see
//! [`EngineInputs`]), compiles the plan against the arena
//! ([`crate::ops::compile`]: constants pre-interned, per-row morphisms as
//! interned row programs, broadcast sides materialized, equi-join tables
//! id-keyed), and from there every operator computes on `u32`-sized
//! [`InternId`]s.  The merge step sorts and deduplicates **ids** (using the
//! arena's cached canonical order), and only the surviving result rows are
//! decoded back into [`Value`]s — exactly one decode per result row,
//! observable as [`ExecStats::value_decodes`].
//!
//! ## Partitioning strategy
//!
//! A plan has one **driving scan** — the leaf reached by following
//! `input`/`left` children.  The parallel executor splits that input's id
//! rows into `workers` contiguous partitions and runs the *entire* operator
//! pipeline over each partition in its own thread (`std::thread::scope`).
//! The compiled plan and the query arena are frozen into an
//! `Arc` **base**; each worker chains a private overlay arena on top
//! ([`Interner::with_base`]), so base ids (inputs, constants, join keys)
//! mean the same object everywhere while workers intern new rows without
//! any synchronization.  Each worker id-sorts and dedups its rows, decodes
//! them (once per surviving row), and the per-worker vectors are
//! concatenated and canonicalized in a final merge — the engine's answer is
//! a set, so the merge is exactly set union.  A worker that panics does not
//! abort the process: the panic is caught at the join point and reported as
//! [`EngineError::WorkerPanic`].
//!
//! `AttachEnv` is the one operator that must observe the **whole** input
//! (its setup morphism runs once against the full set).  Before interning,
//! the executor rewrites every scan-adjacent `AttachEnv` into an ordinary
//! `Project` over a precomputed auxiliary input, evaluating the setup
//! morphism exactly once; a plan that still carries an `AttachEnv` on the
//! driving path after this rewrite is executed on a single worker.

use std::borrow::Cow;
use std::sync::Arc;
use std::thread;

use or_nra::morphism::Morphism;
use or_nra::physical::PhysicalPlan;
use or_object::intern::{InternId, Interner};
use or_object::Value;

use crate::error::EngineError;
use crate::ops::{build, compile, drain, unpack_setup_result, BuildCtx};

/// Execution configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Number of worker threads for the partitioned scan (1 = sequential).
    pub workers: usize,
    /// Rows per operator batch.
    pub batch_size: usize,
    /// Default per-row denotation budget applied to `OrExpand` operators
    /// that do not carry their own (`None` = unbounded).
    pub or_budget: Option<u64>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            workers: 1,
            batch_size: 1024,
            or_budget: None,
        }
    }
}

impl ExecConfig {
    /// Sequential execution.
    pub fn sequential() -> ExecConfig {
        ExecConfig::default()
    }

    /// Use every available hardware thread.
    pub fn parallel() -> ExecConfig {
        ExecConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            ..ExecConfig::default()
        }
    }

    /// Override the worker count.
    pub fn with_workers(mut self, workers: usize) -> ExecConfig {
        self.workers = workers.max(1);
        self
    }

    /// Override the batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> ExecConfig {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Set the default or-expansion budget.
    pub fn with_or_budget(mut self, budget: u64) -> ExecConfig {
        self.or_budget = Some(budget);
        self
    }
}

/// Counters reported by [`Executor::run_with_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Workers that actually ran (1 for sequential plans).
    pub workers: usize,
    /// Rows in the merged result.
    pub rows: usize,
    /// How many [`Value`] materializations the query performed — the
    /// interner's decode counter, summed over the query arena and every
    /// worker overlay.  On the interned serving path this is (at most) one
    /// decode per result row: rows stay ids until the final merge.
    /// Opaque fallbacks (morphisms outside the interned row fragment,
    /// `AttachEnv` setups) add to it, which is exactly what makes them
    /// visible.
    pub value_decodes: u64,
    /// Distinct nodes in the query arena (inputs + constants + rows built
    /// during execution; the maximum over workers for partitioned runs).
    pub arena_nodes: usize,
}

/// Query inputs: per-slot row slices, optionally **pre-interned** against a
/// shared base arena.
///
/// The plain constructors intern everything per query.  Callers that hold
/// relations interned once (an OrQL session's bindings, `or_db`'s
/// per-relation cache) pass the frozen arena as `base` plus per-slot id
/// rows: the executor overlays the query arena on the base and pays zero
/// interning for those slots.
pub struct EngineInputs<'a> {
    slots: Vec<(&'a [Value], Option<&'a [InternId]>)>,
    base: Option<Arc<Interner>>,
}

impl<'a> EngineInputs<'a> {
    /// Inputs with no shared base: every slot is interned per query.
    pub fn new() -> EngineInputs<'a> {
        EngineInputs {
            slots: Vec::new(),
            base: None,
        }
    }

    /// Inputs whose pre-interned slots refer to `base` (or its own base
    /// chain).
    pub fn with_base(base: Arc<Interner>) -> EngineInputs<'a> {
        EngineInputs {
            slots: Vec::new(),
            base: Some(base),
        }
    }

    /// Wrap plain value slices (one per slot), interning per query.
    pub fn from_values(inputs: &'a [&'a [Value]]) -> EngineInputs<'a> {
        EngineInputs {
            slots: inputs.iter().map(|rows| (*rows, None)).collect(),
            base: None,
        }
    }

    /// Append a slot that must be interned at query time.
    pub fn push_rows(&mut self, rows: &'a [Value]) {
        self.slots.push((rows, None));
    }

    /// Append a slot with pre-interned ids (`ids[i]` names `rows[i]` in the
    /// base arena).  Without a base arena the ids would be meaningless, so
    /// they are ignored and the rows interned per query instead.
    pub fn push_interned(&mut self, rows: &'a [Value], ids: &'a [InternId]) {
        let ids = if self.base.is_some() && ids.len() == rows.len() {
            Some(ids)
        } else {
            None
        };
        self.slots.push((rows, ids));
    }

    fn value_slots(&self) -> Vec<&'a [Value]> {
        self.slots.iter().map(|(rows, _)| *rows).collect()
    }
}

impl Default for EngineInputs<'_> {
    fn default() -> Self {
        EngineInputs::new()
    }
}

/// The plan executor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Executor {
    config: ExecConfig,
}

impl Executor {
    /// Create an executor with the given configuration.
    pub fn new(config: ExecConfig) -> Executor {
        Executor { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Run `plan` over the given inputs, returning the canonical (sorted,
    /// deduplicated) result rows.
    pub fn run(&self, plan: &PhysicalPlan, inputs: &[&[Value]]) -> Result<Vec<Value>, EngineError> {
        self.run_with_stats(plan, inputs).map(|(rows, _)| rows)
    }

    /// Run `plan` and also report execution counters.
    pub fn run_with_stats(
        &self,
        plan: &PhysicalPlan,
        inputs: &[&[Value]],
    ) -> Result<(Vec<Value>, ExecStats), EngineError> {
        self.run_inputs(plan, &EngineInputs::from_values(inputs))
    }

    /// Run `plan` and package the rows as a set value (the complex-object
    /// representation of the result relation).
    pub fn run_to_value(
        &self,
        plan: &PhysicalPlan,
        inputs: &[&[Value]],
    ) -> Result<Value, EngineError> {
        Ok(canonical_set(self.run(plan, inputs)?))
    }

    /// Run `plan` over [`EngineInputs`] (possibly pre-interned against a
    /// shared base arena) and report execution counters.  This is the
    /// primary entry point; the slice-based methods wrap it.
    pub fn run_inputs(
        &self,
        plan: &PhysicalPlan,
        inputs: &EngineInputs<'_>,
    ) -> Result<(Vec<Value>, ExecStats), EngineError> {
        let value_slots = inputs.value_slots();
        let arity = plan.input_arity();
        if arity > value_slots.len() {
            return Err(EngineError::MissingInput {
                slot: arity - 1,
                provided: value_slots.len(),
            });
        }

        // Hoist scan-adjacent AttachEnv nodes into precomputed projections
        // (value-level: the setup morphism sees the whole input set once).
        let (plan, extra_inputs) = prepare_attach_env(plan.clone(), &value_slots)?;

        // The query arena: fresh, or an overlay over the caller's base.
        let mut arena = match &inputs.base {
            Some(base) => Interner::with_base(base.clone()),
            None => Interner::new(),
        };

        // Intern every input slot once — or borrow the caller's ids
        // outright (a session querying a large pre-interned binding pays
        // neither interning nor copying) — then the hoisted auxiliary
        // slots.
        let mut interned: Vec<Cow<'_, [InternId]>> =
            Vec::with_capacity(inputs.slots.len() + extra_inputs.len());
        for (rows, ids) in &inputs.slots {
            match ids {
                Some(ids) => interned.push(Cow::Borrowed(*ids)),
                None => interned.push(Cow::Owned(rows.iter().map(|v| arena.intern(v)).collect())),
            }
        }
        for extra in &extra_inputs {
            interned.push(Cow::Owned(extra.iter().map(|v| arena.intern(v)).collect()));
        }

        // Compile: row programs, pre-interned constants, materialized
        // broadcast sides, id-keyed equi-join tables.
        let compiled = compile(
            &plan,
            &mut arena,
            &interned,
            self.config.batch_size,
            self.config.or_budget,
        )?;

        let workers = if compiled.has_driving_attach_env() {
            1
        } else {
            self.config.workers.max(1)
        };
        let driver = compiled.driving_scan();
        let driver_rows =
            interned
                .get(driver)
                .map(Cow::as_ref)
                .ok_or(EngineError::MissingInput {
                    slot: driver,
                    provided: interned.len(),
                })?;
        let workers = workers.min(driver_rows.len().max(1));

        let ctx = BuildCtx {
            inputs: &interned,
            batch_size: self.config.batch_size,
            or_budget: self.config.or_budget,
            lead_worker: true,
        };

        if workers <= 1 {
            let mut op = build(&compiled, ctx, None)?;
            let mut ids = drain(op.as_mut(), &mut arena)?;
            // Merge step: the result is a set; sort + dedup on ids (equal
            // rows ⟺ equal ids), then decode each survivor exactly once.
            arena.sort_ids(&mut ids);
            ids.dedup();
            let rows: Vec<Value> = ids.iter().map(|&id| arena.decode(id)).collect();
            let stats = ExecStats {
                workers: 1,
                rows: rows.len(),
                value_decodes: arena.decode_count(),
                arena_nodes: arena.len(),
            };
            return Ok((rows, stats));
        }

        // Freeze the query arena; workers overlay it privately.
        let base = Arc::new(arena);
        let partitions = or_db::partition_rows(driver_rows, workers);
        let compiled_ref = &compiled;
        let base_ref = &base;
        let results = run_partitioned_workers(partitions, |index, part| {
            let mut overlay = Interner::with_base(Arc::clone(base_ref));
            let ctx = BuildCtx {
                lead_worker: index == 0,
                ..ctx
            };
            let mut op = build(compiled_ref, ctx, Some(part))?;
            let mut ids = drain(op.as_mut(), &mut overlay)?;
            overlay.sort_ids(&mut ids);
            ids.dedup();
            // decode once per surviving row; the vector comes out already
            // sorted because the id order realizes the value order
            let rows: Vec<Value> = ids.iter().map(|&id| overlay.decode(id)).collect();
            Ok((rows, overlay.decode_count(), overlay.len()))
        });
        let mut merged = Vec::new();
        // decodes performed while compiling against the query arena (e.g. a
        // broadcast-side AttachEnv setup) happened before the freeze and
        // belong in the sum alongside the per-worker overlay counts
        let mut value_decodes = base.decode_count();
        let mut arena_nodes = base.len();
        for worker_result in results {
            let (rows, decodes, nodes) = worker_result?;
            value_decodes += decodes;
            arena_nodes = arena_nodes.max(nodes);
            merged.extend(rows);
        }
        // cross-worker merge: concatenation of sorted runs, canonicalized
        merged.sort_unstable();
        merged.dedup();
        let stats = ExecStats {
            workers,
            rows: merged.len(),
            value_decodes,
            arena_nodes,
        };
        Ok((merged, stats))
    }

    /// Run over [`EngineInputs`] and package the rows as a set value.
    pub fn run_inputs_to_value(
        &self,
        plan: &PhysicalPlan,
        inputs: &EngineInputs<'_>,
    ) -> Result<Value, EngineError> {
        let (rows, _) = self.run_inputs(plan, inputs)?;
        Ok(canonical_set(rows))
    }
}

/// Package executor-produced rows as a set value.  `Value::Set` means
/// "sorted, deduplicated" (see `or_object::value`), and the executor's merge
/// step guarantees exactly that — this helper is the single place where
/// engine rows become a set, with a debug assertion so no future code path
/// can silently hand out a non-canonical `Value::Set`.
pub(crate) fn canonical_set(rows: Vec<Value>) -> Value {
    debug_assert!(
        rows.windows(2).all(|w| w[0] < w[1]),
        "engine result rows must be sorted and deduplicated before becoming a Value::Set"
    );
    Value::Set(rows)
}

/// Run `worker` over each partition in its own scoped thread and collect the
/// per-worker results in partition order.  A panicking worker is converted
/// into `Err(EngineError::WorkerPanic)` at the join point — the panic is
/// contained to the query instead of aborting the process.
fn run_partitioned_workers<'a, R, T>(
    partitions: Vec<&'a [R]>,
    worker: impl Fn(usize, &'a [R]) -> Result<T, EngineError> + Sync,
) -> Vec<Result<T, EngineError>>
where
    R: Sync,
    T: Send,
{
    let worker = &worker;
    thread::scope(|scope| {
        let handles: Vec<_> = partitions
            .into_iter()
            .enumerate()
            .map(|(index, part)| scope.spawn(move || worker(index, part)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|payload| {
                    let message = if let Some(s) = payload.downcast_ref::<&str>() {
                        (*s).to_string()
                    } else if let Some(s) = payload.downcast_ref::<String>() {
                        s.clone()
                    } else {
                        "non-string panic payload".to_string()
                    };
                    Err(EngineError::WorkerPanic { message })
                })
            })
            .collect()
    })
}

/// Rewrite every `AttachEnv` whose input is a bare `Scan` into
/// `Project[⟨K_env ∘ !, id⟩]` over a fresh precomputed input, evaluating the
/// setup morphism once.  Returns the rewritten plan and the auxiliary inputs
/// appended after the caller's slots.
fn prepare_attach_env(
    plan: PhysicalPlan,
    inputs: &[&[Value]],
) -> Result<(PhysicalPlan, Vec<Vec<Value>>), EngineError> {
    let mut extra: Vec<Vec<Value>> = Vec::new();
    let next_slot = inputs.len();
    let plan = rewrite(plan, inputs, next_slot, &mut extra)?;
    return Ok((plan, extra));

    fn rewrite(
        plan: PhysicalPlan,
        inputs: &[&[Value]],
        next_slot: usize,
        extra: &mut Vec<Vec<Value>>,
    ) -> Result<PhysicalPlan, EngineError> {
        Ok(match plan {
            PhysicalPlan::AttachEnv { setup, input } => {
                if let PhysicalPlan::Scan(slot) = *input {
                    let rows = *inputs.get(slot).ok_or(EngineError::MissingInput {
                        slot,
                        provided: inputs.len(),
                    })?;
                    let set_value = Value::set(rows.to_vec());
                    let (env, expanded) = unpack_setup_result(&setup, &set_value)?;
                    let slot = next_slot + extra.len();
                    extra.push(expanded);
                    PhysicalPlan::Scan(slot)
                        .project(Morphism::pair(Morphism::constant(env), Morphism::Id))
                } else {
                    PhysicalPlan::AttachEnv {
                        setup,
                        input: Box::new(rewrite(*input, inputs, next_slot, extra)?),
                    }
                }
            }
            PhysicalPlan::Filter { predicate, input } => PhysicalPlan::Filter {
                predicate,
                input: Box::new(rewrite(*input, inputs, next_slot, extra)?),
            },
            PhysicalPlan::Project { f, input } => PhysicalPlan::Project {
                f,
                input: Box::new(rewrite(*input, inputs, next_slot, extra)?),
            },
            PhysicalPlan::Cartesian { left, right } => PhysicalPlan::Cartesian {
                left: Box::new(rewrite(*left, inputs, next_slot, extra)?),
                right: Box::new(rewrite(*right, inputs, next_slot, extra)?),
            },
            PhysicalPlan::Join {
                predicate,
                left,
                right,
            } => PhysicalPlan::Join {
                predicate,
                left: Box::new(rewrite(*left, inputs, next_slot, extra)?),
                right: Box::new(rewrite(*right, inputs, next_slot, extra)?),
            },
            PhysicalPlan::OrExpand {
                budget,
                dedup,
                input,
            } => PhysicalPlan::OrExpand {
                budget,
                dedup,
                input: Box::new(rewrite(*input, inputs, next_slot, extra)?),
            },
            PhysicalPlan::Union { left, right } => PhysicalPlan::Union {
                left: Box::new(rewrite(*left, inputs, next_slot, extra)?),
                right: Box::new(rewrite(*right, inputs, next_slot, extra)?),
            },
            PhysicalPlan::Flatten { input } => PhysicalPlan::Flatten {
                input: Box::new(rewrite(*input, inputs, next_slot, extra)?),
            },
            leaf @ PhysicalPlan::Scan(_) => leaf,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use or_nra::eval::eval;

    /// A worker whose row-level function panics must surface as
    /// `EngineError::WorkerPanic`, not abort the process: the panic is
    /// caught at the join point of the partitioned executor.
    #[test]
    fn panicking_worker_yields_error_not_abort() {
        let rows: Vec<Value> = (0..8).map(Value::Int).collect();
        let partitions = or_db::partition_rows(&rows, 4);
        // a deliberately panicking per-row function standing in for a
        // panicking morphism evaluation inside the worker pipeline
        let results = run_partitioned_workers(partitions, |_, part| {
            let mut out = Vec::new();
            for row in part {
                if *row == Value::Int(5) {
                    panic!("deliberate morphism panic on row {row}");
                }
                out.push(eval(&Morphism::Id, row)?);
            }
            Ok(out)
        });
        assert_eq!(results.len(), 4);
        let failures: Vec<&EngineError> = results.iter().filter_map(|r| r.as_ref().err()).collect();
        assert_eq!(failures.len(), 1, "exactly one partition holds row 5");
        match failures[0] {
            EngineError::WorkerPanic { message } => {
                assert!(message.contains("deliberate morphism panic"), "{message}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        // healthy partitions still return their rows
        let ok_rows: usize = results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(Vec::len)
            .sum();
        assert_eq!(ok_rows, 6);
    }

    #[test]
    fn canonical_set_accepts_sorted_deduplicated_rows() {
        let v = canonical_set(vec![Value::Int(1), Value::Int(2), Value::Int(5)]);
        assert_eq!(v, Value::int_set([1, 2, 5]));
        assert_eq!(canonical_set(Vec::new()), Value::empty_set());
    }

    #[test]
    #[should_panic(expected = "sorted and deduplicated")]
    #[cfg(debug_assertions)]
    fn canonical_set_rejects_unsorted_rows_in_debug() {
        let _ = canonical_set(vec![Value::Int(2), Value::Int(1)]);
    }

    #[test]
    fn sequential_queries_decode_once_per_result_row() {
        use or_nra::morphism::{Morphism as M, Prim};
        let rows: Vec<Value> = (0..100)
            .map(|i| Value::pair(Value::Int(i), Value::Int(i % 10)))
            .collect();
        let cheap = M::Proj2
            .then(M::pair(M::Id, M::constant(Value::Int(4))))
            .then(M::Prim(Prim::Leq));
        let query = or_nra::derived::select(cheap).then(M::map(M::Proj1));
        let plan = or_nra::optimize::lower(&query).unwrap();
        let exec = Executor::new(ExecConfig::default());
        let (out, stats) = exec.run_with_stats(&plan, &[&rows]).unwrap();
        assert_eq!(stats.rows, out.len());
        assert_eq!(
            stats.value_decodes,
            out.len() as u64,
            "interned execution must decode exactly once per result row"
        );
        assert!(stats.arena_nodes > 0);
    }

    #[test]
    fn pre_interned_inputs_skip_requiring_a_fresh_intern() {
        use or_nra::morphism::{Morphism as M, Prim};
        let rows: Vec<Value> = (0..50)
            .map(|i| Value::pair(Value::Int(i), Value::Int(i % 5)))
            .collect();
        let mut base = Interner::new();
        let ids: Vec<InternId> = rows.iter().map(|v| base.intern(v)).collect();
        let base = Arc::new(base);
        let keep = M::Proj2
            .then(M::pair(M::Id, M::constant(Value::Int(2))))
            .then(M::Prim(Prim::Lt));
        let query = or_nra::derived::select(keep);
        let plan = or_nra::optimize::lower(&query).unwrap();
        let mut inputs = EngineInputs::with_base(base.clone());
        inputs.push_interned(&rows, &ids);
        let exec = Executor::new(ExecConfig::default());
        let (out, stats) = exec.run_inputs(&plan, &inputs).unwrap();
        let expected = eval(&query, &Value::set(rows.clone())).unwrap();
        assert_eq!(canonical_set(out), expected);
        // plain (un-interned) inputs agree
        let (out2, _) = exec.run_with_stats(&plan, &[&rows]).unwrap();
        assert_eq!(
            canonical_set(out2),
            eval(&query, &Value::set(rows)).unwrap()
        );
        assert_eq!(stats.rows as u64, stats.value_decodes);
    }
}
