//! Plan execution: sequential and multi-threaded.
//!
//! ## Partitioning strategy
//!
//! A plan has one **driving scan** — the leaf reached by following
//! `input`/`left` children ([`PhysicalPlan::driving_scan`]).  The parallel
//! executor splits that input's rows into `workers` contiguous partitions and
//! runs the *entire* operator pipeline over each partition in its own thread
//! (`std::thread::scope`), which is sound because every unary operator is
//! row-local and the binary operators broadcast their right side whole
//! (`Union` right sides are streamed by the lead worker only — they do not
//! depend on the partition).  The per-worker row vectors are concatenated
//! and canonicalized (sorted, deduplicated) in a final merge step — the
//! engine's answer is a set, so the merge is exactly set union.  A worker
//! that panics does not abort the process: the panic is caught at the join
//! point and reported as [`EngineError::WorkerPanic`].
//!
//! `AttachEnv` is the one operator that must observe the **whole** input
//! (its setup morphism runs once against the full set).  Before spawning
//! workers the executor rewrites every scan-adjacent `AttachEnv` into an
//! ordinary `Project` over a precomputed auxiliary input, evaluating the
//! setup morphism exactly once; a plan that still carries an `AttachEnv` on
//! the driving path after this rewrite is executed on a single worker.

use std::thread;

use or_nra::morphism::Morphism;
use or_nra::physical::PhysicalPlan;
use or_object::Value;

use crate::error::EngineError;
use crate::ops::{build, drain, unpack_setup_result, BuildCtx, JoinCache};

/// Execution configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Number of worker threads for the partitioned scan (1 = sequential).
    pub workers: usize,
    /// Rows per operator batch.
    pub batch_size: usize,
    /// Default per-row denotation budget applied to `OrExpand` operators
    /// that do not carry their own (`None` = unbounded).
    pub or_budget: Option<u64>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            workers: 1,
            batch_size: 1024,
            or_budget: None,
        }
    }
}

impl ExecConfig {
    /// Sequential execution.
    pub fn sequential() -> ExecConfig {
        ExecConfig::default()
    }

    /// Use every available hardware thread.
    pub fn parallel() -> ExecConfig {
        ExecConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            ..ExecConfig::default()
        }
    }

    /// Override the worker count.
    pub fn with_workers(mut self, workers: usize) -> ExecConfig {
        self.workers = workers.max(1);
        self
    }

    /// Override the batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> ExecConfig {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Set the default or-expansion budget.
    pub fn with_or_budget(mut self, budget: u64) -> ExecConfig {
        self.or_budget = Some(budget);
        self
    }
}

/// Counters reported by [`Executor::run_with_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Workers that actually ran (1 for sequential plans).
    pub workers: usize,
    /// Rows in the merged result.
    pub rows: usize,
}

/// The plan executor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Executor {
    config: ExecConfig,
}

impl Executor {
    /// Create an executor with the given configuration.
    pub fn new(config: ExecConfig) -> Executor {
        Executor { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Run `plan` over the given inputs, returning the canonical (sorted,
    /// deduplicated) result rows.
    pub fn run(&self, plan: &PhysicalPlan, inputs: &[&[Value]]) -> Result<Vec<Value>, EngineError> {
        self.run_with_stats(plan, inputs).map(|(rows, _)| rows)
    }

    /// Run `plan` and also report execution counters.
    pub fn run_with_stats(
        &self,
        plan: &PhysicalPlan,
        inputs: &[&[Value]],
    ) -> Result<(Vec<Value>, ExecStats), EngineError> {
        let arity = plan.input_arity();
        if arity > inputs.len() {
            return Err(EngineError::MissingInput {
                slot: arity - 1,
                provided: inputs.len(),
            });
        }

        // Hoist scan-adjacent AttachEnv nodes into precomputed projections,
        // and materialize every Join/Cartesian broadcast (right) side once —
        // workers then scan the shared slot instead of re-running the right
        // subplan per partition.
        let (plan, mut extra_inputs) = prepare_attach_env(plan.clone(), inputs)?;
        let plan = prepare_broadcast_sides(
            plan,
            inputs,
            &mut extra_inputs,
            self.config.batch_size,
            self.config.or_budget,
        )?;
        let mut all_inputs: Vec<&[Value]> = inputs.to_vec();
        for extra in &extra_inputs {
            all_inputs.push(extra.as_slice());
        }

        let workers = if has_driving_attach_env(&plan) {
            1
        } else {
            self.config.workers.max(1)
        };
        let driver = plan.driving_scan();
        let driver_rows = all_inputs[driver];
        let workers = workers.min(driver_rows.len().max(1));

        // Build every equi-join probe table once; workers share them.
        let join_cache = JoinCache::prepare(&plan, &all_inputs)?;
        let ctx = BuildCtx {
            inputs: &all_inputs,
            batch_size: self.config.batch_size,
            or_budget: self.config.or_budget,
            join_cache: Some(&join_cache),
            lead_worker: true,
        };

        let mut rows = if workers <= 1 {
            let mut op = build(&plan, ctx, None)?;
            drain(op.as_mut())?
        } else {
            let partitions = or_db::partition_rows(driver_rows, workers);
            let plan_ref = &plan;
            let results = run_partitioned_workers(partitions, |index, part| {
                let ctx = BuildCtx {
                    lead_worker: index == 0,
                    ..ctx
                };
                let mut op = build(plan_ref, ctx, Some(part))?;
                drain(op.as_mut())
            });
            let mut merged = Vec::new();
            for worker_rows in results {
                merged.extend(worker_rows?);
            }
            merged
        };

        // Merge step: the result is a set, so canonicalize.  Unstable sort:
        // equal rows are indistinguishable and about to be deduplicated.
        rows.sort_unstable();
        rows.dedup();
        let stats = ExecStats {
            workers,
            rows: rows.len(),
        };
        Ok((rows, stats))
    }

    /// Run `plan` and package the rows as a set value (the complex-object
    /// representation of the result relation).
    pub fn run_to_value(
        &self,
        plan: &PhysicalPlan,
        inputs: &[&[Value]],
    ) -> Result<Value, EngineError> {
        Ok(canonical_set(self.run(plan, inputs)?))
    }
}

/// Package executor-produced rows as a set value.  `Value::Set` means
/// "sorted, deduplicated" (see `or_object::value`), and the executor's merge
/// step guarantees exactly that — this helper is the single place where
/// engine rows become a set, with a debug assertion so no future code path
/// can silently hand out a non-canonical `Value::Set`.
pub(crate) fn canonical_set(rows: Vec<Value>) -> Value {
    debug_assert!(
        rows.windows(2).all(|w| w[0] < w[1]),
        "engine result rows must be sorted and deduplicated before becoming a Value::Set"
    );
    Value::Set(rows)
}

/// Run `worker` over each partition in its own scoped thread and collect the
/// per-worker results in partition order.  A panicking worker is converted
/// into `Err(EngineError::WorkerPanic)` at the join point — the panic is
/// contained to the query instead of aborting the process.
fn run_partitioned_workers<'a>(
    partitions: Vec<&'a [Value]>,
    worker: impl Fn(usize, &'a [Value]) -> Result<Vec<Value>, EngineError> + Sync,
) -> Vec<Result<Vec<Value>, EngineError>> {
    let worker = &worker;
    thread::scope(|scope| {
        let handles: Vec<_> = partitions
            .into_iter()
            .enumerate()
            .map(|(index, part)| scope.spawn(move || worker(index, part)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|payload| {
                    let message = if let Some(s) = payload.downcast_ref::<&str>() {
                        (*s).to_string()
                    } else if let Some(s) = payload.downcast_ref::<String>() {
                        s.clone()
                    } else {
                        "non-string panic payload".to_string()
                    };
                    Err(EngineError::WorkerPanic { message })
                })
            })
            .collect()
    })
}

/// Rewrite every `AttachEnv` whose input is a bare `Scan` into
/// `Project[⟨K_env ∘ !, id⟩]` over a fresh precomputed input, evaluating the
/// setup morphism once.  Returns the rewritten plan and the auxiliary inputs
/// appended after the caller's slots.
fn prepare_attach_env(
    plan: PhysicalPlan,
    inputs: &[&[Value]],
) -> Result<(PhysicalPlan, Vec<Vec<Value>>), EngineError> {
    let mut extra: Vec<Vec<Value>> = Vec::new();
    let next_slot = inputs.len();
    let plan = rewrite(plan, inputs, next_slot, &mut extra)?;
    return Ok((plan, extra));

    fn rewrite(
        plan: PhysicalPlan,
        inputs: &[&[Value]],
        next_slot: usize,
        extra: &mut Vec<Vec<Value>>,
    ) -> Result<PhysicalPlan, EngineError> {
        Ok(match plan {
            PhysicalPlan::AttachEnv { setup, input } => {
                if let PhysicalPlan::Scan(slot) = *input {
                    let rows = *inputs.get(slot).ok_or(EngineError::MissingInput {
                        slot,
                        provided: inputs.len(),
                    })?;
                    let set_value = Value::set(rows.to_vec());
                    let (env, expanded) = unpack_setup_result(&setup, &set_value)?;
                    let slot = next_slot + extra.len();
                    extra.push(expanded);
                    PhysicalPlan::Scan(slot)
                        .project(Morphism::pair(Morphism::constant(env), Morphism::Id))
                } else {
                    PhysicalPlan::AttachEnv {
                        setup,
                        input: Box::new(rewrite(*input, inputs, next_slot, extra)?),
                    }
                }
            }
            PhysicalPlan::Filter { predicate, input } => PhysicalPlan::Filter {
                predicate,
                input: Box::new(rewrite(*input, inputs, next_slot, extra)?),
            },
            PhysicalPlan::Project { f, input } => PhysicalPlan::Project {
                f,
                input: Box::new(rewrite(*input, inputs, next_slot, extra)?),
            },
            PhysicalPlan::Cartesian { left, right } => PhysicalPlan::Cartesian {
                left: Box::new(rewrite(*left, inputs, next_slot, extra)?),
                right: Box::new(rewrite(*right, inputs, next_slot, extra)?),
            },
            PhysicalPlan::Join {
                predicate,
                left,
                right,
            } => PhysicalPlan::Join {
                predicate,
                left: Box::new(rewrite(*left, inputs, next_slot, extra)?),
                right: Box::new(rewrite(*right, inputs, next_slot, extra)?),
            },
            PhysicalPlan::OrExpand {
                budget,
                dedup,
                input,
            } => PhysicalPlan::OrExpand {
                budget,
                dedup,
                input: Box::new(rewrite(*input, inputs, next_slot, extra)?),
            },
            PhysicalPlan::Union { left, right } => PhysicalPlan::Union {
                left: Box::new(rewrite(*left, inputs, next_slot, extra)?),
                right: Box::new(rewrite(*right, inputs, next_slot, extra)?),
            },
            PhysicalPlan::Flatten { input } => PhysicalPlan::Flatten {
                input: Box::new(rewrite(*input, inputs, next_slot, extra)?),
            },
            leaf @ PhysicalPlan::Scan(_) => leaf,
        })
    }
}

/// Materialize the right (broadcast) side of every `Join`/`Cartesian` whose
/// right child is not already a bare `Scan`: the subplan runs **once**, its
/// rows land in a fresh auxiliary input slot, and the node's right child is
/// rewritten to scan that slot.  Without this, every parallel worker would
/// re-run the right subplan over its own copy.
fn prepare_broadcast_sides(
    plan: PhysicalPlan,
    inputs: &[&[Value]],
    extra: &mut Vec<Vec<Value>>,
    batch_size: usize,
    or_budget: Option<u64>,
) -> Result<PhysicalPlan, EngineError> {
    let rewrite_right = |right: PhysicalPlan,
                         inputs: &[&[Value]],
                         extra: &mut Vec<Vec<Value>>|
     -> Result<PhysicalPlan, EngineError> {
        if matches!(right, PhysicalPlan::Scan(_)) {
            return Ok(right);
        }
        let rows = {
            let all: Vec<&[Value]> = inputs
                .iter()
                .copied()
                .chain(extra.iter().map(|v| v.as_slice()))
                .collect();
            let ctx = BuildCtx {
                inputs: &all,
                batch_size,
                or_budget,
                join_cache: None,
                lead_worker: true,
            };
            let mut op = build(&right, ctx, None)?;
            drain(op.as_mut())?
        };
        let slot = inputs.len() + extra.len();
        extra.push(rows);
        Ok(PhysicalPlan::Scan(slot))
    };
    Ok(match plan {
        leaf @ PhysicalPlan::Scan(_) => leaf,
        PhysicalPlan::Filter { predicate, input } => PhysicalPlan::Filter {
            predicate,
            input: Box::new(prepare_broadcast_sides(
                *input, inputs, extra, batch_size, or_budget,
            )?),
        },
        PhysicalPlan::Project { f, input } => PhysicalPlan::Project {
            f,
            input: Box::new(prepare_broadcast_sides(
                *input, inputs, extra, batch_size, or_budget,
            )?),
        },
        PhysicalPlan::AttachEnv { setup, input } => PhysicalPlan::AttachEnv {
            setup,
            input: Box::new(prepare_broadcast_sides(
                *input, inputs, extra, batch_size, or_budget,
            )?),
        },
        PhysicalPlan::OrExpand {
            budget,
            dedup,
            input,
        } => PhysicalPlan::OrExpand {
            budget,
            dedup,
            input: Box::new(prepare_broadcast_sides(
                *input, inputs, extra, batch_size, or_budget,
            )?),
        },
        PhysicalPlan::Flatten { input } => PhysicalPlan::Flatten {
            input: Box::new(prepare_broadcast_sides(
                *input, inputs, extra, batch_size, or_budget,
            )?),
        },
        // Union right sides stay as subplans: only the lead worker builds
        // them (see `ops::build`), so running the subplan there once is the
        // same total work as materializing it up front, without the buffer.
        PhysicalPlan::Union { left, right } => {
            let left = prepare_broadcast_sides(*left, inputs, extra, batch_size, or_budget)?;
            let right = prepare_broadcast_sides(*right, inputs, extra, batch_size, or_budget)?;
            PhysicalPlan::Union {
                left: Box::new(left),
                right: Box::new(right),
            }
        }
        PhysicalPlan::Cartesian { left, right } => {
            let left = prepare_broadcast_sides(*left, inputs, extra, batch_size, or_budget)?;
            let right = prepare_broadcast_sides(*right, inputs, extra, batch_size, or_budget)?;
            let right = rewrite_right(right, inputs, extra)?;
            PhysicalPlan::Cartesian {
                left: Box::new(left),
                right: Box::new(right),
            }
        }
        PhysicalPlan::Join {
            predicate,
            left,
            right,
        } => {
            let left = prepare_broadcast_sides(*left, inputs, extra, batch_size, or_budget)?;
            let right = prepare_broadcast_sides(*right, inputs, extra, batch_size, or_budget)?;
            let right = rewrite_right(right, inputs, extra)?;
            PhysicalPlan::Join {
                predicate,
                left: Box::new(left),
                right: Box::new(right),
            }
        }
    })
}

/// Does an `AttachEnv` survive on the driving path?  (It then needs to see
/// the whole input, so the plan cannot be partitioned.)
fn has_driving_attach_env(plan: &PhysicalPlan) -> bool {
    match plan {
        PhysicalPlan::Scan(_) => false,
        PhysicalPlan::AttachEnv { .. } => true,
        PhysicalPlan::Filter { input, .. }
        | PhysicalPlan::Project { input, .. }
        | PhysicalPlan::Flatten { input }
        | PhysicalPlan::OrExpand { input, .. } => has_driving_attach_env(input),
        PhysicalPlan::Cartesian { left, .. }
        | PhysicalPlan::Join { left, .. }
        | PhysicalPlan::Union { left, .. } => has_driving_attach_env(left),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use or_nra::eval::eval;

    /// A worker whose row-level function panics must surface as
    /// `EngineError::WorkerPanic`, not abort the process: the panic is
    /// caught at the join point of the partitioned executor.
    #[test]
    fn panicking_worker_yields_error_not_abort() {
        let rows: Vec<Value> = (0..8).map(Value::Int).collect();
        let partitions = or_db::partition_rows(&rows, 4);
        // a deliberately panicking per-row function standing in for a
        // panicking morphism evaluation inside the worker pipeline
        let results = run_partitioned_workers(partitions, |_, part| {
            let mut out = Vec::new();
            for row in part {
                if *row == Value::Int(5) {
                    panic!("deliberate morphism panic on row {row}");
                }
                out.push(eval(&Morphism::Id, row)?);
            }
            Ok(out)
        });
        assert_eq!(results.len(), 4);
        let failures: Vec<&EngineError> = results.iter().filter_map(|r| r.as_ref().err()).collect();
        assert_eq!(failures.len(), 1, "exactly one partition holds row 5");
        match failures[0] {
            EngineError::WorkerPanic { message } => {
                assert!(message.contains("deliberate morphism panic"), "{message}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        // healthy partitions still return their rows
        let ok_rows: usize = results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(Vec::len)
            .sum();
        assert_eq!(ok_rows, 6);
    }

    #[test]
    fn canonical_set_accepts_sorted_deduplicated_rows() {
        let v = canonical_set(vec![Value::Int(1), Value::Int(2), Value::Int(5)]);
        assert_eq!(v, Value::int_set([1, 2, 5]));
        assert_eq!(canonical_set(Vec::new()), Value::empty_set());
    }

    #[test]
    #[should_panic(expected = "sorted and deduplicated")]
    #[cfg(debug_assertions)]
    fn canonical_set_rejects_unsorted_rows_in_debug() {
        let _ = canonical_set(vec![Value::Int(2), Value::Int(1)]);
    }
}
