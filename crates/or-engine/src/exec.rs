//! Plan execution: sequential and multi-threaded, interned end to end.
//!
//! ## The arena discipline
//!
//! A query runs against one hash-consing arena
//! ([`or_object::intern::Interner`]).  The executor interns each input
//! relation **once** (or reuses ids the caller already interned — see
//! [`EngineInputs`]), compiles the plan against the arena
//! ([`crate::ops::compile`]: constants pre-interned, per-row morphisms as
//! interned row programs, broadcast sides materialized, equi-join tables
//! id-keyed), and from there every operator computes on `u32`-sized
//! [`InternId`]s.  The merge step sorts and deduplicates **ids** (using the
//! arena's cached canonical order), and only the surviving result rows are
//! decoded back into [`Value`]s — exactly one decode per result row,
//! observable as [`ExecStats::value_decodes`].
//!
//! ## Morsel-driven parallelism
//!
//! A plan has one **driving scan** — the leaf reached by following
//! `input`/`left` children.  The parallel executor does *not* hand each
//! worker a fixed partition of that input.  Instead the input's row range
//! goes into a shared [`MorselQueue`]: workers
//! repeatedly claim **morsels** ([`ExecConfig::morsel_rows`] rows each)
//! from their own shard of the range, and *steal* morsels from the fullest
//! sibling shard when their own runs dry — so a skewed workload (one shard
//! filtering to nothing, another expanding enormously) cannot idle a
//! worker.  Each claimed morsel runs through the *entire* operator
//! pipeline, rebuilt per morsel from the shared compiled plan.
//!
//! The logical worker count ([`ExecConfig::workers`]) fixes the queue's
//! shard/steal topology and is what [`ExecStats::workers`] reports;
//! the OS threads actually spawned — **lanes** — are clamped to the
//! machine's core count unless the config is pinned, with surplus shards
//! drained through the ordinary stealing path.  When more than one lane
//! runs, the compiled plan and the query arena are frozen into an `Arc`
//! **base**; each lane chains one private overlay arena on top
//! ([`Interner::with_base`]) for the whole query, so base ids (inputs,
//! constants, join keys) mean the same object everywhere while lanes
//! intern new rows without any synchronization.  A single lane skips the
//! freeze and interns straight into the query arena — no concurrent
//! mutation, no overlay, sequential-parity cost.
//!
//! Each morsel's ids are sorted and deduped as they are produced, giving
//! one run per morsel tagged with its driver offset; the final **multi-way
//! id-merge** combines the runs *as ids*, comparing across overlays with
//! [`Interner::cmp_across`] (sibling overlays may assign the same numeric
//! id to different objects, so every merged id stays tagged with its
//! owning lane).  Runs from row-local pipelines are pairwise disjoint in
//! driver order, which the merge detects (one boundary comparison per
//! adjacent pair) and rewards with a straight concatenation; otherwise a
//! pairwise merge tree with galloping does the work, running its levels
//! on scoped threads for large results on three or more lanes.  Only the
//! surviving merged rows are decoded — once per result row, from the
//! overlay that owns them.  A lane that panics does not abort the
//! process: the panic is caught at the join point and reported as
//! [`EngineError::WorkerPanic`].
//!
//! Small inputs stay sequential: below [`ExecConfig::min_parallel_rows`]
//! driving rows the executor downgrades to one worker (thread spawn plus
//! merge overhead would dominate), unless the caller pinned the worker
//! count ([`ExecConfig::with_pinned_workers`]) because a cost model — the
//! expand planner — already made that call.
//!
//! `AttachEnv` is the one operator that must observe the **whole** input
//! (its setup morphism runs once against the full set).  Before interning,
//! the executor rewrites every scan-adjacent `AttachEnv` into an ordinary
//! `Project` over a precomputed auxiliary input, evaluating the setup
//! morphism exactly once; a plan that still carries an `AttachEnv` on the
//! driving path after this rewrite is executed on a single worker.

use std::borrow::Cow;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use or_nra::morphism::Morphism;
use or_nra::physical::PhysicalPlan;
use or_object::intern::{InternId, Interner};
use or_object::Value;

use crate::column::ColumnarCounters;
use crate::error::EngineError;
use crate::morsel::MorselQueue;
use crate::ops::{build, compile, drain_within, unpack_setup_result, BuildCtx};

/// Execution configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Number of worker threads for morsel-driven execution
    /// (1 = sequential).
    pub workers: usize,
    /// Rows per operator batch.
    pub batch_size: usize,
    /// Default per-row denotation budget applied to `OrExpand` operators
    /// that do not carry their own (`None` = unbounded).
    pub or_budget: Option<u64>,
    /// Rows per morsel — the granularity of the work-stealing queue.
    pub morsel_rows: usize,
    /// Minimum driving-row count before the executor goes parallel.  Below
    /// this, thread spawn and merge overhead dominate the row work (the
    /// committed benchmarks showed a fanout-8 expansion's parallel leg
    /// *losing* to its sequential leg on small inputs), so the executor
    /// downgrades to one worker.  Ignored when [`ExecConfig::pin_workers`]
    /// is set.
    pub min_parallel_rows: usize,
    /// Honor [`ExecConfig::workers`] exactly (still capped by the driving
    /// row count).  Set by callers that already made a cost-model decision
    /// — the expand planner's recommendation, or a differential test
    /// forcing a worker count.
    pub pin_workers: bool,
    /// Wall-clock budget for the whole query (`None` = unbounded).  Checked
    /// once at admission — before any row work, so a zero budget rejects
    /// the query deterministically — and then at every batch boundary on
    /// every lane, so an over-budget query is cancelled within one batch of
    /// work of the deadline with [`EngineError::TimeBudgetExceeded`].
    /// This is the admission-control knob a serving layer hands out per
    /// query.
    pub time_budget: Option<std::time::Duration>,
    /// Use the columnar block path for operators whose row programs fall
    /// in the column-expressible fragment (see `crate::column`).  On by
    /// default; the differential suite turns it off to pin the scalar
    /// path against the same plans.
    pub columnar: bool,
    /// Run the static plan verifier ([`or_nra::verify`]) before executing
    /// and reject plans with `Deny`-severity violations as
    /// [`EngineError::InvariantViolation`].  At this level only structural
    /// rules can fire (the executor has no schemas); the typed rules engage
    /// in the schema-aware entry points (`crate::query`) and the session
    /// layer.  Defaults to on in debug builds, off in release.
    pub verify: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            workers: 1,
            batch_size: 1024,
            or_budget: None,
            morsel_rows: 1024,
            min_parallel_rows: 8192,
            pin_workers: false,
            time_budget: None,
            columnar: true,
            verify: cfg!(debug_assertions),
        }
    }
}

impl ExecConfig {
    /// Sequential execution.
    pub fn sequential() -> ExecConfig {
        ExecConfig::default()
    }

    /// Use every available hardware thread.
    pub fn parallel() -> ExecConfig {
        ExecConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            ..ExecConfig::default()
        }
    }

    /// [`ExecConfig::parallel`], with the worker count overridden by the
    /// `OR_ENGINE_WORKERS` environment variable when it is set to a
    /// positive integer — the conventional knob the benchmark harness, CI
    /// and the OrQL REPL all share.
    pub fn from_env() -> ExecConfig {
        let mut config = ExecConfig::parallel();
        if let Some(n) = std::env::var("OR_ENGINE_WORKERS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
        {
            config.workers = n;
        }
        config
    }

    /// Override the worker count.
    pub fn with_workers(mut self, workers: usize) -> ExecConfig {
        self.workers = workers.max(1);
        self
    }

    /// Pin the worker count: use exactly `workers` (capped only by the
    /// driving row count), bypassing the
    /// [`ExecConfig::min_parallel_rows`] sequential fallback.
    pub fn with_pinned_workers(mut self, workers: usize) -> ExecConfig {
        self.workers = workers.max(1);
        self.pin_workers = true;
        self
    }

    /// Override the batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> ExecConfig {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Override the morsel size (rows claimed per queue access).
    pub fn with_morsel_rows(mut self, morsel_rows: usize) -> ExecConfig {
        self.morsel_rows = morsel_rows.max(1);
        self
    }

    /// Override the parallel threshold (driving rows below which execution
    /// stays sequential).
    pub fn with_min_parallel_rows(mut self, rows: usize) -> ExecConfig {
        self.min_parallel_rows = rows;
        self
    }

    /// Set the default or-expansion budget.
    pub fn with_or_budget(mut self, budget: u64) -> ExecConfig {
        self.or_budget = Some(budget);
        self
    }

    /// Enable or disable the columnar block path (enabled by default).
    /// `with_columnar(false)` forces every batch through the scalar
    /// row-program path — the lever the differential tests use to assert
    /// columnar == scalar.
    pub fn with_columnar(mut self, columnar: bool) -> ExecConfig {
        self.columnar = columnar;
        self
    }

    /// Set the wall-clock budget for the whole query.  A zero duration
    /// rejects every query at admission — useful for deterministically
    /// exercising the over-budget error path.
    pub fn with_time_budget(mut self, budget: std::time::Duration) -> ExecConfig {
        self.time_budget = Some(budget);
        self
    }
}

/// A running query's wall-clock deadline.  `check` compares elapsed time
/// against the budget with `>=`, so a [`std::time::Duration::ZERO`] budget
/// trips on the very first check regardless of clock granularity — the
/// property the admission-control tests rely on.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Deadline {
    start: std::time::Instant,
    budget: std::time::Duration,
}

impl Deadline {
    fn begin(budget: std::time::Duration) -> Deadline {
        Deadline {
            start: std::time::Instant::now(),
            budget,
        }
    }

    /// `Err(TimeBudgetExceeded)` once the budget has elapsed.
    pub(crate) fn check(&self) -> Result<(), EngineError> {
        if self.start.elapsed() >= self.budget {
            Err(EngineError::TimeBudgetExceeded {
                budget_ms: self.budget.as_millis(),
            })
        } else {
            Ok(())
        }
    }
}

/// Counters reported by [`Executor::run_with_stats`].
///
/// ```
/// use or_engine::{ExecConfig, Executor};
/// use or_nra::morphism::Morphism;
/// use or_object::Value;
///
/// // Project each pair to its first field and inspect the counters.
/// let rows: Vec<Value> = (0..10)
///     .map(|i| Value::pair(Value::Int(i), Value::Int(i % 3)))
///     .collect();
/// let plan = or_nra::optimize::lower(&Morphism::map(Morphism::Proj1)).unwrap();
/// let exec = Executor::new(ExecConfig::sequential());
/// let (out, stats) = exec.run_with_stats(&plan, &[&rows]).unwrap();
///
/// assert_eq!(stats.workers, 1);
/// assert_eq!(stats.rows, out.len());
/// // interned end to end: exactly one Value materialization per result row
/// assert_eq!(stats.value_decodes, out.len() as u64);
/// assert!(stats.arena_nodes > 0);
/// // the projection is a bare field path: one columnar batch, no fallback
/// assert_eq!(stats.columnar_batches, 1);
/// assert_eq!(stats.scalar_fallback_batches, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Workers that actually ran (1 for sequential plans).
    pub workers: usize,
    /// Rows in the merged result.
    pub rows: usize,
    /// Morsels claimed from the work-stealing queue (0 on the sequential
    /// path, which bypasses the queue).
    pub morsels: u64,
    /// Morsels a worker claimed from a *sibling's* shard — non-zero only
    /// when the queue actually rebalanced a skewed run.
    pub steals: u64,
    /// How many [`Value`] materializations the query performed — the
    /// interner's decode counter, summed over the query arena and every
    /// worker overlay.  On the interned serving path this is (at most) one
    /// decode per result row: rows stay ids until the final merge.
    /// Opaque fallbacks (morphisms outside the interned row fragment,
    /// `AttachEnv` setups) add to it, which is exactly what makes them
    /// visible.
    pub value_decodes: u64,
    /// Distinct nodes in the query arena (inputs + constants + rows built
    /// during execution; the maximum over workers for partitioned runs).
    pub arena_nodes: usize,
    /// Batches the columnar-eligible operators (filter, project,
    /// hash-join probe) handled entirely with block kernels, summed over
    /// all worker lanes.
    pub columnar_batches: u64,
    /// Batches those same operators pushed through the per-row scalar
    /// path instead — because the row program fell outside the column
    /// fragment at compile time, a batch's row shapes did not match at
    /// runtime, or [`ExecConfig::columnar`] is off.  Zero here means the
    /// columnar path handled 100% of the eligible batches.
    pub scalar_fallback_batches: u64,
}

/// Query inputs: per-slot row slices, optionally **pre-interned** against a
/// shared base arena.
///
/// The plain constructors intern everything per query.  Callers that hold
/// relations interned once (an OrQL session's bindings, `or_db`'s
/// per-relation cache) pass the frozen arena as `base` plus per-slot id
/// rows: the executor overlays the query arena on the base and pays zero
/// interning for those slots.
pub struct EngineInputs<'a> {
    slots: Vec<(&'a [Value], Option<&'a [InternId]>)>,
    base: Option<Arc<Interner>>,
}

impl<'a> EngineInputs<'a> {
    /// Inputs with no shared base: every slot is interned per query.
    pub fn new() -> EngineInputs<'a> {
        EngineInputs {
            slots: Vec::new(),
            base: None,
        }
    }

    /// Inputs whose pre-interned slots refer to `base` (or its own base
    /// chain).
    pub fn with_base(base: Arc<Interner>) -> EngineInputs<'a> {
        EngineInputs {
            slots: Vec::new(),
            base: Some(base),
        }
    }

    /// Wrap plain value slices (one per slot), interning per query.
    pub fn from_values(inputs: &'a [&'a [Value]]) -> EngineInputs<'a> {
        EngineInputs {
            slots: inputs.iter().map(|rows| (*rows, None)).collect(),
            base: None,
        }
    }

    /// Append a slot that must be interned at query time.
    pub fn push_rows(&mut self, rows: &'a [Value]) {
        self.slots.push((rows, None));
    }

    /// Append a slot with pre-interned ids (`ids[i]` names `rows[i]` in the
    /// base arena).  Without a base arena the ids would be meaningless, so
    /// they are ignored and the rows interned per query instead.
    pub fn push_interned(&mut self, rows: &'a [Value], ids: &'a [InternId]) {
        let ids = if self.base.is_some() && ids.len() == rows.len() {
            Some(ids)
        } else {
            None
        };
        self.slots.push((rows, ids));
    }

    fn value_slots(&self) -> Vec<&'a [Value]> {
        self.slots.iter().map(|(rows, _)| *rows).collect()
    }
}

impl Default for EngineInputs<'_> {
    fn default() -> Self {
        EngineInputs::new()
    }
}

/// The plan executor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Executor {
    config: ExecConfig,
}

impl Executor {
    /// Create an executor with the given configuration.
    pub fn new(config: ExecConfig) -> Executor {
        Executor { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Run `plan` over the given inputs, returning the canonical (sorted,
    /// deduplicated) result rows.
    pub fn run(&self, plan: &PhysicalPlan, inputs: &[&[Value]]) -> Result<Vec<Value>, EngineError> {
        self.run_with_stats(plan, inputs).map(|(rows, _)| rows)
    }

    /// Run `plan` and also report execution counters.
    pub fn run_with_stats(
        &self,
        plan: &PhysicalPlan,
        inputs: &[&[Value]],
    ) -> Result<(Vec<Value>, ExecStats), EngineError> {
        self.run_inputs(plan, &EngineInputs::from_values(inputs))
    }

    /// Run `plan` and package the rows as a set value (the complex-object
    /// representation of the result relation).
    pub fn run_to_value(
        &self,
        plan: &PhysicalPlan,
        inputs: &[&[Value]],
    ) -> Result<Value, EngineError> {
        Ok(canonical_set(self.run(plan, inputs)?))
    }

    /// Run `plan` over [`EngineInputs`] (possibly pre-interned against a
    /// shared base arena) and report execution counters.  This is the
    /// primary entry point; the slice-based methods wrap it.
    pub fn run_inputs(
        &self,
        plan: &PhysicalPlan,
        inputs: &EngineInputs<'_>,
    ) -> Result<(Vec<Value>, ExecStats), EngineError> {
        // Admission: start the wall clock before any work and check it
        // immediately, so a zero budget rejects the query deterministically
        // without touching a single row.
        let deadline = self.config.time_budget.map(Deadline::begin);
        if let Some(deadline) = &deadline {
            deadline.check()?;
        }

        let value_slots = inputs.value_slots();
        let arity = plan.input_arity();
        if arity > value_slots.len() {
            return Err(EngineError::MissingInput {
                slot: arity - 1,
                provided: value_slots.len(),
            });
        }

        // Static verification gate: reject plans the rule catalog denies
        // before doing any row work.  The executor has no schemas, so only
        // the structural/budget rules can fire here; schema-aware callers
        // (`crate::query`, the session layer) run the typed rules too.
        if self.config.verify {
            let vconfig = or_nra::verify::VerifyConfig {
                provided_inputs: Some(value_slots.len()),
                or_budget: self.config.or_budget,
                ..or_nra::verify::VerifyConfig::default()
            };
            let violations = or_nra::verify::verify_plan(plan, &vconfig);
            if let Some(v) = or_nra::verify::first_deny(&violations) {
                return Err(EngineError::from_violation(v));
            }
        }

        // Hoist scan-adjacent AttachEnv nodes into precomputed projections
        // (value-level: the setup morphism sees the whole input set once).
        let (plan, extra_inputs) = prepare_attach_env(plan.clone(), &value_slots)?;

        // The query arena: fresh, or an overlay over the caller's base.
        let mut arena = match &inputs.base {
            Some(base) => Interner::with_base(base.clone()),
            None => Interner::new(),
        };

        // Intern every input slot once — or borrow the caller's ids
        // outright (a session querying a large pre-interned binding pays
        // neither interning nor copying) — then the hoisted auxiliary
        // slots.
        let mut interned: Vec<Cow<'_, [InternId]>> =
            Vec::with_capacity(inputs.slots.len() + extra_inputs.len());
        for (rows, ids) in &inputs.slots {
            match ids {
                Some(ids) => interned.push(Cow::Borrowed(*ids)),
                None => interned.push(Cow::Owned(rows.iter().map(|v| arena.intern(v)).collect())),
            }
        }
        for extra in &extra_inputs {
            interned.push(Cow::Owned(extra.iter().map(|v| arena.intern(v)).collect()));
        }

        // Compile: row programs, pre-interned constants, materialized
        // broadcast sides, id-keyed equi-join tables.
        let compiled = compile(
            &plan,
            &mut arena,
            &interned,
            self.config.batch_size,
            self.config.or_budget,
        )?;

        let driver = compiled.driving_scan();
        let driver_rows =
            interned
                .get(driver)
                .map(Cow::as_ref)
                .ok_or(EngineError::MissingInput {
                    slot: driver,
                    provided: interned.len(),
                })?;
        let workers = if compiled.has_driving_attach_env() {
            1
        } else {
            let w = self.config.workers.max(1).min(driver_rows.len().max(1));
            // Cost-threshold sequential fallback: on small driving inputs
            // thread spawn + merge overhead beats the row work, so go
            // sequential — unless the caller pinned the count (the expand
            // planner's cost model, or a test forcing a worker count).
            if w > 1
                && !self.config.pin_workers
                && driver_rows.len() < self.config.min_parallel_rows
            {
                1
            } else {
                w
            }
        };

        // One set of columnar/scalar batch counters per query, shared by
        // every operator of every worker lane (plain relaxed atomics).
        let counters = ColumnarCounters::new();
        let ctx = BuildCtx {
            inputs: &interned,
            batch_size: self.config.batch_size,
            or_budget: self.config.or_budget,
            lead_worker: true,
            columnar: self.config.columnar,
            counters: &counters,
        };

        if workers <= 1 {
            let mut op = build(&compiled, ctx, None)?;
            let mut ids = drain_within(op.as_mut(), &mut arena, deadline.as_ref())?;
            // Merge step: the result is a set; sort + dedup on ids (equal
            // rows ⟺ equal ids), then decode each survivor exactly once.
            arena.sort_ids(&mut ids);
            ids.dedup();
            let rows: Vec<Value> = ids.iter().map(|&id| arena.decode(id)).collect();
            let (columnar_batches, scalar_fallback_batches) = counters.snapshot();
            let stats = ExecStats {
                workers: 1,
                rows: rows.len(),
                morsels: 0,
                steals: 0,
                value_decodes: arena.decode_count(),
                arena_nodes: arena.len(),
                columnar_batches,
                scalar_fallback_batches,
            };
            return Ok((rows, stats));
        }

        // Never oversubscribe the machine: `workers` is the *logical*
        // morsel-consumer count (the queue's shard/steal topology, reported
        // in `ExecStats`); per-thread state — the overlay arena and the
        // output runs — belongs to **lanes**, one scoped OS thread each,
        // capped at the hardware parallelism.  A lane drains its own shard
        // and then steals, so shards beyond the lane count are consumed as
        // steals from the fullest shard.  Running more OS threads than
        // cores only adds context-switch overhead — the work-stealing
        // queue already keeps every thread busy.  Pinned configs get one
        // lane per worker (tests that force genuine cross-thread
        // interleaving rely on it).
        let lanes = if self.config.pin_workers {
            workers
        } else {
            workers.min(hardware_lanes())
        };

        // Morsel granularity exists to balance load *between* lanes; with a
        // single lane there is nothing to balance, so each claim coalesces
        // to a whole shard — same shard/steal topology (and the same
        // `ExecStats` claim accounting per shard), far fewer per-morsel
        // pipeline rebuilds, and sorted runs big enough that the disjoint
        // concat tail dominates.
        // Morsel claims hand out whole id-blocks: when a morsel holds at
        // least one batch, its size is truncated to a multiple of the
        // batch size, so every claimed range decomposes into full columnar
        // blocks (plus one tail block at the end of the relation) instead
        // of leaving a sub-batch stub per morsel.  The defaults (1024 /
        // 1024) make a morsel exactly one block.
        let block = self.config.batch_size.max(1);
        let morsel_rows = if lanes == 1 {
            driver_rows.len().div_ceil(workers).max(1)
        } else if self.config.morsel_rows >= block {
            self.config.morsel_rows - self.config.morsel_rows % block
        } else {
            self.config.morsel_rows
        };
        let queue = MorselQueue::new(driver_rows.len(), workers, morsel_rows);

        if lanes == 1 {
            // Single lane ⇒ no concurrent arena mutation, so skip the
            // freeze: the morsel loop interns straight into the query
            // arena, paying exactly the sequential path's probe depth —
            // the morsel/steal accounting and the per-morsel pipelines
            // stay identical to the multi-lane path.
            let shared_len = arena.len();
            let compiled_ref = &compiled;
            let queue_ref = &queue;
            let arena_ref = &mut arena;
            let driver_ref = &driver_rows;
            let lane = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                move || -> Result<WorkerOutput, EngineError> {
                    let mut runs: Vec<(usize, Vec<InternId>)> = Vec::new();
                    let mut morsels = 0u64;
                    let mut steals = 0u64;
                    let mut lead = true;
                    while let Some(morsel) = queue_ref.claim(0) {
                        morsels += 1;
                        steals += u64::from(morsel.shard != 0);
                        let ctx = BuildCtx {
                            lead_worker: std::mem::take(&mut lead),
                            ..ctx
                        };
                        let start = morsel.rows.start;
                        let mut op = build(compiled_ref, ctx, Some(&driver_ref[morsel.rows]))?;
                        let mut ids = drain_within(op.as_mut(), arena_ref, deadline.as_ref())?;
                        arena_ref.sort_ids(&mut ids);
                        ids.dedup();
                        runs.push((start, ids));
                    }
                    Ok(WorkerOutput {
                        overlay: Interner::new(),
                        runs,
                        morsels,
                        steals,
                    })
                },
            ))
            .unwrap_or_else(|payload| Err(panic_error(payload)))?;
            let WorkerOutput {
                mut runs,
                morsels,
                steals,
                ..
            } = lane;
            // One lane ⇒ every id lives in the one query arena.  When the
            // offset-ordered runs are pairwise disjoint (the common case:
            // row-local pipelines preserve the driving order), the result
            // is their concatenation — decode straight from the arena like
            // the sequential tail, skipping the (lane, id) tagging and the
            // merge copy entirely.
            runs.retain(|(_, r)| !r.is_empty());
            runs.sort_unstable_by_key(|&(start, _)| start);
            let disjoint = runs.windows(2).all(|pair| {
                let last = *pair[0].1.last().expect("empty runs filtered out");
                arena.cmp(last, pair[1].1[0]) == std::cmp::Ordering::Less
            });
            if disjoint {
                let total: usize = runs.iter().map(|(_, r)| r.len()).sum();
                let mut rows: Vec<Value> = Vec::with_capacity(total);
                for (_, run) in &runs {
                    rows.extend(run.iter().map(|&id| arena.decode(id)));
                }
                let (columnar_batches, scalar_fallback_batches) = counters.snapshot();
                let stats = ExecStats {
                    workers,
                    rows: rows.len(),
                    morsels,
                    steals,
                    value_decodes: arena.decode_count(),
                    arena_nodes: arena.len(),
                    columnar_batches,
                    scalar_fallback_batches,
                };
                return Ok((rows, stats));
            }
            let outputs = vec![WorkerOutput {
                overlay: arena,
                runs,
                morsels,
                steals,
            }];
            return Ok(finish_parallel(
                outputs,
                shared_len,
                1,
                workers,
                0,
                0,
                counters.snapshot(),
            ));
        }

        // Freeze the query arena; lanes overlay it privately.  The
        // driving rows go into a shared morsel queue — workers claim
        // morsel-sized row ranges from their own shard and steal from the
        // fullest sibling shard once theirs is drained.
        let base = Arc::new(arena);
        let shared_len = base.len();
        // whichever worker builds the first pipeline streams union right
        // sides (they are independent of the driving rows, so exactly one
        // pipeline instance of the whole query must emit them)
        let lead_unclaimed = AtomicBool::new(true);
        let compiled_ref = &compiled;
        let base_ref = &base;
        let queue_ref = &queue;
        let lead_ref = &lead_unclaimed;
        let results = run_workers(lanes, |lane| {
            let mut overlay = Interner::with_base(Arc::clone(base_ref));
            let mut runs: Vec<(usize, Vec<InternId>)> = Vec::new();
            let mut morsels = 0u64;
            let mut steals = 0u64;
            while let Some(morsel) = queue_ref.claim(lane) {
                morsels += 1;
                steals += u64::from(morsel.shard != lane);
                let ctx = BuildCtx {
                    lead_worker: lead_ref.swap(false, Ordering::Relaxed),
                    ..ctx
                };
                let start = morsel.rows.start;
                let mut op = build(compiled_ref, ctx, Some(&driver_rows[morsel.rows]))?;
                let mut ids = drain_within(op.as_mut(), &mut overlay, deadline.as_ref())?;
                // sort/dedup per *morsel*, not per worker: a morsel's output
                // usually arrives already ordered (row-local operators
                // preserve the driving order), so the sort's O(n) pre-check
                // passes — whereas a stolen morsel appended to a worker-wide
                // run would force a full structural re-sort of the run
                overlay.sort_ids(&mut ids);
                ids.dedup();
                runs.push((start, ids));
            }
            Ok(WorkerOutput {
                overlay,
                runs,
                morsels,
                steals,
            })
        });
        let mut outputs: Vec<WorkerOutput> = Vec::with_capacity(lanes);
        for result in results {
            outputs.push(result?);
        }
        // decodes performed while compiling against the query arena (e.g. a
        // broadcast-side AttachEnv setup) happened before the freeze and
        // belong in the sum alongside the per-lane overlay counts
        Ok(finish_parallel(
            outputs,
            shared_len,
            lanes,
            workers,
            base.decode_count(),
            base.len(),
            counters.snapshot(),
        ))
    }

    /// Run over [`EngineInputs`] and package the rows as a set value.
    pub fn run_inputs_to_value(
        &self,
        plan: &PhysicalPlan,
        inputs: &EngineInputs<'_>,
    ) -> Result<Value, EngineError> {
        let (rows, _) = self.run_inputs(plan, inputs)?;
        Ok(canonical_set(rows))
    }

    /// [`Executor::run_inputs_to_value`] that also reports execution
    /// counters — what a serving layer needs to aggregate columnar/scalar
    /// batch statistics across statements.
    pub fn run_inputs_to_value_with_stats(
        &self,
        plan: &PhysicalPlan,
        inputs: &EngineInputs<'_>,
    ) -> Result<(Value, ExecStats), EngineError> {
        let (rows, stats) = self.run_inputs(plan, inputs)?;
        Ok((canonical_set(rows), stats))
    }
}

/// Package executor-produced rows as a set value.  `Value::Set` means
/// "sorted, deduplicated" (see `or_object::value`), and the executor's merge
/// step guarantees exactly that — this helper is the single place where
/// engine rows become a set, with a debug assertion so no future code path
/// can silently hand out a non-canonical `Value::Set`.
pub(crate) fn canonical_set(rows: Vec<Value>) -> Value {
    debug_assert!(
        rows.windows(2).all(|w| w[0] < w[1]),
        "engine result rows must be sorted and deduplicated before becoming a Value::Set"
    );
    Value::Set(rows)
}

/// The machine's hardware thread count, read once per process.
/// `std::thread::available_parallelism` is a syscall (`sched_getaffinity`
/// on Linux) — paying it per query is measurable on sub-millisecond
/// queries, and the affinity mask does not change under the executor.
fn hardware_lanes() -> usize {
    static LANES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *LANES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Merge the per-lane outputs and decode the survivors — the tail every
/// morsel-driven run (single- or multi-lane) shares.  The multi-way
/// id-merge runs over the lane outputs' runs; each surviving id is decoded
/// exactly once, from the arena that owns it.  `base_decodes`/`base_nodes`
/// fold in the frozen base's counters on the multi-lane path (the
/// single-lane path has no separate base: its one output arena already
/// carries the whole chain).
fn finish_parallel(
    outputs: Vec<WorkerOutput>,
    shared_len: usize,
    lanes: usize,
    workers: usize,
    base_decodes: u64,
    base_nodes: usize,
    (columnar_batches, scalar_fallback_batches): (u64, u64),
) -> (Vec<Value>, ExecStats) {
    let morsels: u64 = outputs.iter().map(|o| o.morsels).sum();
    let steals: u64 = outputs.iter().map(|o| o.steals).sum();

    // Multi-way id-merge: per-morsel sorted runs merge *as ids*, each
    // id tagged with its owning overlay (sibling overlays may reuse the
    // same numeric id for different objects), compared across overlays
    // via the shared base.  Only the survivors are decoded — once per
    // result row, from the overlay that owns them.
    let merged = merge_worker_runs(&outputs, shared_len, lanes);
    let mut overlays: Vec<Interner> = outputs.into_iter().map(|o| o.overlay).collect();
    let rows: Vec<Value> = merged
        .iter()
        .map(|&(w, id)| overlays[w as usize].decode(id))
        .collect();

    let value_decodes = base_decodes + overlays.iter().map(Interner::decode_count).sum::<u64>();
    let arena_nodes = overlays
        .iter()
        .map(Interner::len)
        .max()
        .unwrap_or(0)
        .max(base_nodes);
    let stats = ExecStats {
        workers,
        rows: rows.len(),
        morsels,
        steals,
        value_decodes,
        arena_nodes,
        columnar_batches,
        scalar_fallback_batches,
    };
    (rows, stats)
}

/// What one worker lane (OS thread) hands back: its overlay arena (ids in
/// `runs` are only meaningful *in this arena*), one sorted deduplicated id
/// run **per claimed morsel** — each tagged with the morsel's driver-row
/// offset so the merge can order runs by driving position — and its queue
/// counters.
struct WorkerOutput {
    overlay: Interner,
    runs: Vec<(usize, Vec<InternId>)>,
    morsels: u64,
    steals: u64,
}

/// Merge the per-morsel sorted id runs into one sorted, deduplicated run
/// of `(worker, id)` pairs — the multi-way merge that replaces re-sorting
/// decoded values.  Comparison is [`Interner::cmp_across`] through the
/// shared base (equal base ids short-circuit without a structural walk).
/// Runs enter the pairwise merge tree ordered by their morsel's driver-row
/// offset: over a value-ordered driving input, adjacent runs then cover
/// adjacent value ranges and almost every pairwise merge degenerates to
/// [`merge_two`]'s concatenation fast path.  On ≥ 3 lanes with large
/// runs each tree level merges its pairs on scoped threads.
/// A merge run: each surviving id tagged with the lane whose overlay owns
/// it (sibling overlays may reuse a numeric id for different objects).
type TaggedRun = Vec<(u32, InternId)>;

fn merge_worker_runs(
    outputs: &[WorkerOutput],
    shared_len: usize,
    lanes: usize,
) -> Vec<(u32, InternId)> {
    let total: usize = outputs
        .iter()
        .map(|o| o.runs.iter().map(|(_, r)| r.len()).sum::<usize>())
        .sum();
    // below this many rows, spawning merge threads costs more than merging
    const PARALLEL_MERGE_MIN_ROWS: usize = 1 << 14;
    let parallel = lanes > 2 && total >= PARALLEL_MERGE_MIN_ROWS;
    let mut tagged: Vec<(usize, u32, &[InternId])> = outputs
        .iter()
        .enumerate()
        .flat_map(|(w, o)| {
            o.runs
                .iter()
                .filter(|(_, r)| !r.is_empty())
                .map(move |(start, r)| (*start, w as u32, r.as_slice()))
        })
        .collect();
    tagged.sort_unstable_by_key(|&(start, _, _)| start);
    let arena_of = |w: u32| &outputs[w as usize].overlay;
    // Flat-concat fast path: row-local pipelines preserve driver order, so
    // runs ordered by driver offset usually cover strictly increasing value
    // ranges.  One boundary comparison per adjacent pair proves it; then
    // the whole result is a single copy pass instead of a merge tree that
    // re-copies every row log(runs) times.
    let disjoint = tagged.windows(2).all(|pair| {
        let (_, wa, ra) = pair[0];
        let (_, wb, rb) = pair[1];
        let last = *ra.last().expect("empty runs filtered out");
        arena_of(wa).cmp_across(last, arena_of(wb), rb[0], shared_len) == std::cmp::Ordering::Less
    });
    if disjoint {
        let mut out = Vec::with_capacity(total);
        for (_, w, r) in tagged {
            out.extend(r.iter().map(|&id| (w, id)));
        }
        return out;
    }
    let mut runs: Vec<Vec<(u32, InternId)>> = tagged
        .into_iter()
        .map(|(_, w, r)| r.iter().map(|&id| (w, id)).collect())
        .collect();
    while runs.len() > 1 {
        let mut iter = runs.into_iter();
        let mut pairs: Vec<(TaggedRun, Option<TaggedRun>)> = Vec::new();
        while let Some(a) = iter.next() {
            pairs.push((a, iter.next()));
        }
        let merge_pair = |(a, b): (TaggedRun, Option<TaggedRun>)| match b {
            Some(b) => merge_two(a, b, &arena_of, shared_len),
            None => a,
        };
        runs = if parallel && pairs.len() > 1 {
            thread::scope(|scope| {
                pairs
                    .into_iter()
                    .map(|pair| scope.spawn(|| merge_pair(pair)))
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().expect("merge threads do not panic"))
                    .collect()
            })
        } else {
            pairs.into_iter().map(merge_pair).collect()
        };
    }
    runs.pop().unwrap_or_default()
}

/// Merge two sorted deduplicated `(worker, id)` runs, dropping cross-run
/// duplicates (equal objects in sibling overlays).
///
/// Structural `cmp_across` comparisons are the expensive part of the
/// merge, so the merge avoids them wherever the runs allow:
///
/// * **disjoint runs** (the common case: contiguous shards +
///   order-preserving pipelines make worker runs cover disjoint value
///   ranges unless morsels were stolen) are detected with one boundary
///   comparison and concatenated;
/// * interleaved runs use a **galloping merge** — an exponential search
///   finds each crossover and the segment below it is bulk-copied, so the
///   comparison count scales with the number of interleaved segments
///   (roughly the steal count), not with the row count.
fn merge_two<'a>(
    a: Vec<(u32, InternId)>,
    b: Vec<(u32, InternId)>,
    arena_of: &impl Fn(u32) -> &'a Interner,
    shared_len: usize,
) -> Vec<(u32, InternId)> {
    use std::cmp::Ordering as Ord;
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    let cmp = |x: (u32, InternId), y: (u32, InternId)| {
        arena_of(x.0).cmp_across(x.1, arena_of(y.0), y.1, shared_len)
    };
    if cmp(*a.last().expect("non-empty"), b[0]) == Ord::Less {
        let mut out = a;
        out.extend_from_slice(&b);
        return out;
    }
    if cmp(*b.last().expect("non-empty"), a[0]) == Ord::Less {
        let mut out = b;
        out.extend_from_slice(&a);
        return out;
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match cmp(a[i], b[j]) {
            Ord::Less => {
                let run = gallop_below(&a[i..], b[j], &cmp);
                out.extend_from_slice(&a[i..i + run]);
                i += run;
            }
            Ord::Greater => {
                let run = gallop_below(&b[j..], a[i], &cmp);
                out.extend_from_slice(&b[j..j + run]);
                j += run;
            }
            Ord::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Length of the longest prefix of the sorted `run` that sorts strictly
/// below `bound` — exponential probe doubling from index 1, then a binary
/// search over the last octave.  `run[0] < bound` must already hold.
fn gallop_below(
    run: &[(u32, InternId)],
    bound: (u32, InternId),
    cmp: &impl Fn((u32, InternId), (u32, InternId)) -> std::cmp::Ordering,
) -> usize {
    use std::cmp::Ordering as Ord;
    debug_assert!(cmp(run[0], bound) == Ord::Less);
    let mut hi = 1;
    while hi < run.len() && cmp(run[hi], bound) == Ord::Less {
        hi *= 2;
    }
    let (mut left, mut right) = (hi / 2, hi.min(run.len()));
    while left < right {
        let mid = left + (right - left) / 2;
        if cmp(run[mid], bound) == Ord::Less {
            left = mid + 1;
        } else {
            right = mid;
        }
    }
    left
}

/// Run `worker(lane)` on one scoped OS thread per lane `0..lanes` — the
/// calling thread doubles as lane 0, saving one spawn — and collect the
/// results in lane order.  Each call runs under `catch_unwind`, so a
/// panicking worker is converted into `Err(EngineError::WorkerPanic)`
/// without taking down its thread-mates or the process.
fn run_workers<T: Send>(
    lanes: usize,
    worker: impl Fn(usize) -> Result<T, EngineError> + Sync,
) -> Vec<Result<T, EngineError>> {
    let lanes = lanes.max(1);
    let worker = &worker;
    let run_one = move |lane: usize| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker(lane)))
            .unwrap_or_else(|payload| Err(panic_error(payload)))
    };
    thread::scope(|scope| {
        let handles: Vec<_> = (1..lanes)
            .map(|lane| scope.spawn(move || run_one(lane)))
            .collect();
        let first = run_one(0);
        std::iter::once(first)
            .chain(
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panics are caught per call")),
            )
            .collect()
    })
}

fn panic_error(payload: Box<dyn std::any::Any + Send>) -> EngineError {
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    EngineError::WorkerPanic { message }
}

/// Rewrite every `AttachEnv` whose input is a bare `Scan` into
/// `Project[⟨K_env ∘ !, id⟩]` over a fresh precomputed input, evaluating the
/// setup morphism once.  Returns the rewritten plan and the auxiliary inputs
/// appended after the caller's slots.
fn prepare_attach_env(
    plan: PhysicalPlan,
    inputs: &[&[Value]],
) -> Result<(PhysicalPlan, Vec<Vec<Value>>), EngineError> {
    let mut extra: Vec<Vec<Value>> = Vec::new();
    let next_slot = inputs.len();
    let plan = rewrite(plan, inputs, next_slot, &mut extra)?;
    return Ok((plan, extra));

    fn rewrite(
        plan: PhysicalPlan,
        inputs: &[&[Value]],
        next_slot: usize,
        extra: &mut Vec<Vec<Value>>,
    ) -> Result<PhysicalPlan, EngineError> {
        Ok(match plan {
            PhysicalPlan::AttachEnv { setup, input } => {
                if let PhysicalPlan::Scan(slot) = *input {
                    let rows = *inputs.get(slot).ok_or(EngineError::MissingInput {
                        slot,
                        provided: inputs.len(),
                    })?;
                    let set_value = Value::set(rows.to_vec());
                    let (env, expanded) = unpack_setup_result(&setup, &set_value)?;
                    let slot = next_slot + extra.len();
                    extra.push(expanded);
                    PhysicalPlan::Scan(slot)
                        .project(Morphism::pair(Morphism::constant(env), Morphism::Id))
                } else {
                    PhysicalPlan::AttachEnv {
                        setup,
                        input: Box::new(rewrite(*input, inputs, next_slot, extra)?),
                    }
                }
            }
            PhysicalPlan::Filter { predicate, input } => PhysicalPlan::Filter {
                predicate,
                input: Box::new(rewrite(*input, inputs, next_slot, extra)?),
            },
            PhysicalPlan::Project { f, input } => PhysicalPlan::Project {
                f,
                input: Box::new(rewrite(*input, inputs, next_slot, extra)?),
            },
            PhysicalPlan::Cartesian { left, right } => PhysicalPlan::Cartesian {
                left: Box::new(rewrite(*left, inputs, next_slot, extra)?),
                right: Box::new(rewrite(*right, inputs, next_slot, extra)?),
            },
            PhysicalPlan::Join {
                predicate,
                left,
                right,
            } => PhysicalPlan::Join {
                predicate,
                left: Box::new(rewrite(*left, inputs, next_slot, extra)?),
                right: Box::new(rewrite(*right, inputs, next_slot, extra)?),
            },
            PhysicalPlan::OrExpand {
                budget,
                dedup,
                input,
            } => PhysicalPlan::OrExpand {
                budget,
                dedup,
                input: Box::new(rewrite(*input, inputs, next_slot, extra)?),
            },
            PhysicalPlan::Union { left, right } => PhysicalPlan::Union {
                left: Box::new(rewrite(*left, inputs, next_slot, extra)?),
                right: Box::new(rewrite(*right, inputs, next_slot, extra)?),
            },
            PhysicalPlan::Flatten { input } => PhysicalPlan::Flatten {
                input: Box::new(rewrite(*input, inputs, next_slot, extra)?),
            },
            leaf @ PhysicalPlan::Scan(_) => leaf,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use or_nra::eval::eval;

    /// A worker whose row-level function panics must surface as
    /// `EngineError::WorkerPanic`, not abort the process: the panic is
    /// caught at the join point of the partitioned executor.
    #[test]
    fn panicking_worker_yields_error_not_abort() {
        let rows: Vec<Value> = (0..8).map(Value::Int).collect();
        let partitions = or_db::partition_rows(&rows, 4);
        // a deliberately panicking per-row function standing in for a
        // panicking morphism evaluation inside the worker pipeline
        let results = run_workers(partitions.len(), |index| {
            let mut out = Vec::new();
            for row in partitions[index] {
                if *row == Value::Int(5) {
                    panic!("deliberate morphism panic on row {row}");
                }
                out.push(eval(&Morphism::Id, row)?);
            }
            Ok(out)
        });
        assert_eq!(results.len(), 4);
        let failures: Vec<&EngineError> = results.iter().filter_map(|r| r.as_ref().err()).collect();
        assert_eq!(failures.len(), 1, "exactly one partition holds row 5");
        match failures[0] {
            EngineError::WorkerPanic { message } => {
                assert!(message.contains("deliberate morphism panic"), "{message}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
        // healthy partitions still return their rows
        let ok_rows: usize = results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(Vec::len)
            .sum();
        assert_eq!(ok_rows, 6);
    }

    /// Sibling worker overlays allocate local ids independently, so after a
    /// steal two workers' result runs can carry the *same numeric id* for
    /// *different objects*.  The merge must keep every id tagged with its
    /// owning overlay and decode it there — an id must never leak into a
    /// sibling worker's arena.
    #[test]
    fn stolen_morsel_overlay_ids_never_leak_into_sibling_decodes() {
        let mut base = Interner::new();
        let shared = base.intern(&Value::Int(42));
        let shared_len = base.len();
        let base = Arc::new(base);
        let mut a = Interner::with_base(base.clone());
        let mut b = Interner::with_base(base.clone());
        // worker A built "alpha", worker B (after stealing A's rows) built
        // "beta" — at the same overlay-local id
        let ida = a.intern(&Value::str("alpha"));
        let idb = b.intern(&Value::str("beta"));
        assert_eq!(ida, idb, "sibling overlays reuse numeric ids");
        // both also produced the shared base object and one common overlay
        // object ("dup"), which must merge to a single row
        let dupa = a.intern(&Value::str("dup"));
        let dupb = b.intern(&Value::str("dup"));
        let mut ids_a = vec![shared, ida, dupa];
        a.sort_ids(&mut ids_a);
        let mut ids_b = vec![shared, idb, dupb];
        b.sort_ids(&mut ids_b);
        let outputs = vec![
            WorkerOutput {
                overlay: a,
                runs: vec![(0, ids_a)],
                morsels: 2,
                steals: 0,
            },
            WorkerOutput {
                overlay: b,
                runs: vec![(1, ids_b)],
                morsels: 1,
                steals: 1,
            },
        ];
        let merged = merge_worker_runs(&outputs, shared_len, 2);
        let mut overlays: Vec<Interner> = outputs.into_iter().map(|o| o.overlay).collect();
        let rows: Vec<Value> = merged
            .iter()
            .map(|&(w, id)| overlays[w as usize].decode(id))
            .collect();
        // "alpha" and "beta" both survive (distinct objects behind one
        // numeric id); "dup" and the shared int merge to one row each
        assert_eq!(
            rows,
            vec![
                Value::Int(42),
                Value::str("alpha"),
                Value::str("beta"),
                Value::str("dup"),
            ]
        );
    }

    /// A zero wall-clock budget must reject the query at admission, before
    /// any row work, and with `>=` semantics the rejection is deterministic
    /// on any clock.  A generous budget lets the same query through.
    #[test]
    fn zero_time_budget_rejects_at_admission() {
        let rows: Vec<Value> = (0..16).map(Value::Int).collect();
        let plan = or_nra::optimize::lower(&Morphism::map(Morphism::Id)).unwrap();
        let exec =
            Executor::new(ExecConfig::sequential().with_time_budget(std::time::Duration::ZERO));
        match exec.run(&plan, &[&rows]) {
            Err(EngineError::TimeBudgetExceeded { budget_ms: 0 }) => {}
            other => panic!("expected TimeBudgetExceeded, got {other:?}"),
        }
        let exec = Executor::new(
            ExecConfig::sequential().with_time_budget(std::time::Duration::from_secs(60)),
        );
        assert_eq!(exec.run(&plan, &[&rows]).unwrap().len(), 16);
    }

    #[test]
    fn canonical_set_accepts_sorted_deduplicated_rows() {
        let v = canonical_set(vec![Value::Int(1), Value::Int(2), Value::Int(5)]);
        assert_eq!(v, Value::int_set([1, 2, 5]));
        assert_eq!(canonical_set(Vec::new()), Value::empty_set());
    }

    #[test]
    #[should_panic(expected = "sorted and deduplicated")]
    #[cfg(debug_assertions)]
    fn canonical_set_rejects_unsorted_rows_in_debug() {
        let _ = canonical_set(vec![Value::Int(2), Value::Int(1)]);
    }

    #[test]
    fn sequential_queries_decode_once_per_result_row() {
        use or_nra::morphism::{Morphism as M, Prim};
        let rows: Vec<Value> = (0..100)
            .map(|i| Value::pair(Value::Int(i), Value::Int(i % 10)))
            .collect();
        let cheap = M::Proj2
            .then(M::pair(M::Id, M::constant(Value::Int(4))))
            .then(M::Prim(Prim::Leq));
        let query = or_nra::derived::select(cheap).then(M::map(M::Proj1));
        let plan = or_nra::optimize::lower(&query).unwrap();
        let exec = Executor::new(ExecConfig::default());
        let (out, stats) = exec.run_with_stats(&plan, &[&rows]).unwrap();
        assert_eq!(stats.rows, out.len());
        assert_eq!(
            stats.value_decodes,
            out.len() as u64,
            "interned execution must decode exactly once per result row"
        );
        assert!(stats.arena_nodes > 0);
    }

    #[test]
    fn pre_interned_inputs_skip_requiring_a_fresh_intern() {
        use or_nra::morphism::{Morphism as M, Prim};
        let rows: Vec<Value> = (0..50)
            .map(|i| Value::pair(Value::Int(i), Value::Int(i % 5)))
            .collect();
        let mut base = Interner::new();
        let ids: Vec<InternId> = rows.iter().map(|v| base.intern(v)).collect();
        let base = Arc::new(base);
        let keep = M::Proj2
            .then(M::pair(M::Id, M::constant(Value::Int(2))))
            .then(M::Prim(Prim::Lt));
        let query = or_nra::derived::select(keep);
        let plan = or_nra::optimize::lower(&query).unwrap();
        let mut inputs = EngineInputs::with_base(base.clone());
        inputs.push_interned(&rows, &ids);
        let exec = Executor::new(ExecConfig::default());
        let (out, stats) = exec.run_inputs(&plan, &inputs).unwrap();
        let expected = eval(&query, &Value::set(rows.clone())).unwrap();
        assert_eq!(canonical_set(out), expected);
        // plain (un-interned) inputs agree
        let (out2, _) = exec.run_with_stats(&plan, &[&rows]).unwrap();
        assert_eq!(
            canonical_set(out2),
            eval(&query, &Value::set(rows)).unwrap()
        );
        assert_eq!(stats.rows as u64, stats.value_decodes);
    }
}
