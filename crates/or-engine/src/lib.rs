//! # or-engine — a streaming, parallel physical query engine for or-NRA⁺
//!
//! The `or-nra` crate evaluates queries by a tree-walking interpreter over a
//! single [`Value`](or_object::Value) tree: correct, but every operator
//! rebuilds whole collections and nothing runs in parallel.  This crate is
//! the physical layer that makes the same queries executable at relation
//! scale:
//!
//! ```text
//!   OrQL expression ──compile──▶ or-NRA⁺ morphism ──lower──▶ PhysicalPlan
//!                                                              │
//!                           or_engine::Executor  ◀─────────────┘
//!                           (volcano operators, partitioned scans,
//!                            per-worker batches, merge)
//! ```
//!
//! ## The operator model
//!
//! Plans ([`or_nra::physical::PhysicalPlan`]) form a tree of **row-stream
//! operators**: `Scan`, `Filter`, `Project`, `AttachEnv`, `Cartesian`,
//! `Join`, and `OrExpand`.  Execution is pull-based ("volcano"), but pulls
//! move **batches** of rows ([`exec::ExecConfig::batch_size`], default 1024)
//! instead of single rows, so dynamic dispatch and bounds checks are
//! amortized.  Unary operators are row-local: they touch one row at a time
//! and keep no cross-row state (except `OrExpand`'s optional dedup filter),
//! which is what makes partitioned execution sound.
//!
//! ## Interned end to end
//!
//! Rows are [`InternId`](or_object::intern::InternId)s in a per-query
//! hash-consing arena, not owned [`Value`](or_object::Value) trees.  A
//! query interns its inputs **once** (or reuses ids a session / relation
//! cache interned earlier, via [`exec::EngineInputs`]), compiles its
//! per-row morphisms into interned row programs
//! ([`or_nra::rowprog::RowProgram`]) with constants pre-interned, and from
//! there every hot operation is id-width work: equality and streaming
//! dedup are `u32` comparisons, join probes hash 4 bytes against tables
//! built once per query, the merge sorts ids in the arena's canonical
//! order, and α-expansion decodes worlds straight into the arena (or-free
//! sub-rows are *reused* as ids).  `Value`s are materialized exactly once,
//! at the result boundary — observable as
//! [`exec::ExecStats::value_decodes`], which equals the result row count
//! on the interned serving path.
//!
//! ## Columnar blocks
//!
//! On top of the id representation, the hot per-row operators (filter,
//! project, hash-join probe) run **columnar** whenever their row program
//! falls in the column-expressible fragment ([`or_nra::colprog`]): a batch
//! becomes an [`column::IdBlock`] — operand columns gathered once per
//! block, a branch-free compare kernel ([`kernels`]) writing a selection
//! vector, survivors reassembled by gather.  Batches whose row shapes
//! don't match fall back to the scalar row-program path *per batch*
//! (identical results, identical errors), and
//! [`exec::ExecStats::columnar_batches`] /
//! [`exec::ExecStats::scalar_fallback_batches`] report the split.
//!
//! ## Morsel-driven parallelism
//!
//! Every plan has a **driving scan** — follow `input`/`left` edges to a
//! leaf.  [`exec::Executor`] puts the driving input's row range into a
//! shared work-stealing [`morsel::MorselQueue`]: each worker claims
//! **morsels** (small row ranges) from its own shard of the range and
//! steals from the fullest sibling shard when its own drains, so skew
//! cannot idle a worker.  Each morsel runs the whole operator pipeline on
//! the claiming worker's thread (`std::thread::scope`); the compiled plan
//! and the query arena are frozen into a shared base, each worker overlays
//! a private arena on it, and binary operators broadcast their
//! (materialized) right side by id — equi-joins against a large build side
//! probe a hash-**partitioned** table ([`ops::JoinTable`]).  Each worker
//! id-sorts and dedups the run it accumulated; a final **multi-way
//! id-merge** combines the per-worker runs (comparing ids *across* worker
//! overlays through the shared base, never decoding) and only the
//! surviving rows are materialized — exactly set union, which is the
//! correct combining operator because or-NRA's set semantics is order- and
//! duplicate-free by construction.  Inputs smaller than
//! [`exec::ExecConfig::min_parallel_rows`] stay sequential.
//!
//! The full design — layer by layer, with the stealing protocol and the
//! arena-ownership rules — is written down in `docs/ENGINE.md` at the
//! repository root.
//!
//! The one operator that must see the whole input — `AttachEnv`, carrying
//! the OrQL environment tuple — is hoisted out of the worker pipeline before
//! partitioning: its setup morphism runs **once** on the full input and the
//! node is rewritten into a constant-attaching `Project`.
//!
//! ## Normalization budgets
//!
//! The conceptual level's α-expansion (`normalize`) is exponential in the
//! worst case (Section 6 of the paper gives the exact bounds).  The engine's
//! `OrExpand` operator therefore
//!
//! 1. expands **lazily**, one denotation at a time, via
//!    [`or_nra::lazy::LazyNormalizer`] — downstream operators and early
//!    termination see rows before the expansion is complete;
//! 2. deduplicates **incrementally** while streaming, so the antichain of
//!    distinct complete rows is maintained instead of a duplicate-laden
//!    multiset;
//! 3. enforces a **per-row denotation budget**
//!    ([`exec::ExecConfig::or_budget`] or the plan's own
//!    `OrExpand { budget, .. }`): a row whose denotation count exceeds the
//!    budget aborts the query with
//!    [`error::EngineError::BudgetExceeded`] — a reported resource limit
//!    rather than an accidental out-of-memory.  Because
//!    `LazyNormalizer::total()` is a closed-form count, the check costs
//!    O(row size), not O(budget).
//!
//! ## Cross-checking
//!
//! The engine is differentially tested against the interpreter: for every
//! lowerable morphism `m` and relation value `v`,
//! `run_morphism_on_value(v, m) == eval(m, v)`.  The OrQL session's
//! opt-in `ExecMode::EngineChecked` performs the same cross-check per
//! query at runtime.
//!
//! ```
//! use or_engine::prelude::*;
//! use or_nra::derived;
//! use or_nra::morphism::{Morphism, Prim};
//! use or_object::Value;
//!
//! // All records whose second field is at most 10, first fields only.
//! let cheap = Morphism::Proj2
//!     .then(Morphism::pair(Morphism::Id, Morphism::constant(Value::Int(10))))
//!     .then(Morphism::Prim(Prim::Leq));
//! let query = derived::select(cheap).then(Morphism::map(Morphism::Proj1));
//!
//! let rows: Vec<Value> = (0..100)
//!     .map(|i| Value::pair(Value::Int(i), Value::Int(i % 20)))
//!     .collect();
//!
//! let plan = or_nra::optimize::lower(&query).unwrap();
//! let executor = Executor::new(ExecConfig::parallel());
//! let out = executor.run_to_value(&plan, &[&rows]).unwrap();
//! assert_eq!(out, or_nra::eval::eval(&query, &Value::set(rows)).unwrap());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod column;
pub mod error;
pub mod exec;
pub mod kernels;
pub mod morsel;
pub mod ops;
pub mod query;

/// Convenient re-exports of the most frequently used items.
pub mod prelude {
    pub use crate::error::EngineError;
    pub use crate::exec::{EngineInputs, ExecConfig, ExecStats, Executor};
    pub use crate::query::{
        run_morphism, run_morphism_on_value, run_plan, run_plan_optimized, run_plan_with_stats,
    };
    pub use or_nra::physical::PhysicalPlan;
}

pub use error::EngineError;
pub use exec::{EngineInputs, ExecConfig, ExecStats, Executor};
pub use query::{
    run_morphism, run_morphism_on_value, run_plan, run_plan_optimized, run_plan_with_stats,
};
