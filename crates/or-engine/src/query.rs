//! Convenience entry points that connect the engine to `or-db` relations
//! and to or-NRA⁺ morphisms.

use or_db::Relation;
use or_nra::morphism::Morphism;
use or_nra::optimize::{lower, optimize_expansion, ExpandPlanReport, ExpandPlannerConfig};
use or_nra::physical::PhysicalPlan;
use or_object::Value;

use crate::error::EngineError;
use crate::exec::{canonical_set, ExecConfig, ExecStats, Executor};

/// Run a physical plan over relations; slot `i` of the plan scans
/// `relations[i]`.  Returns the result as a set value.
pub fn run_plan(
    plan: &PhysicalPlan,
    relations: &[&Relation],
    config: ExecConfig,
) -> Result<Value, EngineError> {
    let inputs: Vec<&[Value]> = relations.iter().map(|r| r.records()).collect();
    Executor::new(config).run_to_value(plan, &inputs)
}

/// Run a physical plan over relations and report execution counters.
pub fn run_plan_with_stats(
    plan: &PhysicalPlan,
    relations: &[&Relation],
    config: ExecConfig,
) -> Result<(Value, ExecStats), EngineError> {
    let inputs: Vec<&[Value]> = relations.iter().map(|r| r.records()).collect();
    let (rows, stats) = Executor::new(config).run_with_stats(plan, &inputs)?;
    Ok((canonical_set(rows), stats))
}

/// Run a physical plan through the **expand planner** first, then execute.
///
/// The planner ([`or_nra::optimize::optimize_expansion`]) is given the
/// relations' schema row types, so it can push filters (and, for
/// `assume_consistent` inputs, projections) below `OrExpand` wherever the
/// preservation conditions allow, and it caps the worker count at its
/// cost-model recommendation — one big expand becomes that many
/// partition-local expands.  Returns the result, the execution counters and
/// the planner's report.
pub fn run_plan_optimized(
    plan: &PhysicalPlan,
    relations: &[&Relation],
    config: ExecConfig,
) -> Result<(Value, ExecStats, ExpandPlanReport), EngineError> {
    let inputs: Vec<&[Value]> = relations.iter().map(|r| r.records()).collect();
    let planner_config = ExpandPlannerConfig {
        row_types: relations.iter().map(|r| r.schema().record_type()).collect(),
        ..ExpandPlannerConfig::default()
    }
    .with_available_workers(config.workers);
    let (optimized, report) = optimize_expansion(plan, &inputs, &planner_config);
    let exec_config = ExecConfig {
        workers: report.recommended_workers,
        ..config
    };
    let (rows, stats) = Executor::new(exec_config).run_with_stats(&optimized, &inputs)?;
    Ok((canonical_set(rows), stats, report))
}

/// Lower a set-pipeline morphism (`{record} → {t}`) and run it over a
/// relation.  Morphisms outside the lowerable fragment report
/// [`EngineError::Lower`]; callers can fall back to
/// [`or_nra::eval::eval`] on [`Relation::to_value`].
pub fn run_morphism(
    relation: &Relation,
    m: &Morphism,
    config: ExecConfig,
) -> Result<Value, EngineError> {
    let plan = lower(m)?;
    run_plan(&plan, &[relation], config)
}

/// Lower and run a morphism over a plain set value (the engine-side analogue
/// of `eval(m, v)` for `v = {rows}`).
pub fn run_morphism_on_value(
    v: &Value,
    m: &Morphism,
    config: ExecConfig,
) -> Result<Value, EngineError> {
    let plan = lower(m)?;
    let rows = match v {
        Value::Set(items) => items.as_slice(),
        other => {
            return Err(EngineError::NotARelation {
                value: other.to_string(),
            })
        }
    };
    Executor::new(config).run_to_value(&plan, &[rows])
}
