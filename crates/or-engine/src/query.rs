//! Convenience entry points that connect the engine to `or-db` relations
//! and to or-NRA⁺ morphisms.
//!
//! Relations are passed through their interned-rows cache
//! ([`or_db::Relation::interned`]): the first relation's frozen arena
//! becomes the **base** of the query arena, so its rows are never
//! re-interned — repeated queries over the same relation pay the interning
//! cost exactly once, at first use.  (Ids are arena-relative, so only one
//! relation's cache can serve as the base; the remaining slots are interned
//! into the query overlay.)

use or_db::Relation;
use or_nra::morphism::Morphism;
use or_nra::optimize::{lower, optimize_expansion, ExpandPlanReport, ExpandPlannerConfig};
use or_nra::physical::PhysicalPlan;
use or_nra::verify::{first_deny, verify_plan, VerifyConfig};
use or_object::Value;

use crate::error::EngineError;
use crate::exec::{canonical_set, EngineInputs, ExecConfig, ExecStats, Executor};

/// Schema-aware verification gate: these entry points know the relations'
/// record types, so the full typed rule catalog engages (the executor-level
/// gate in [`Executor::run_inputs`] sees only arity).  `assume_consistent`
/// mirrors the expand planner's setting for the same plan.
fn verify_against_relations(
    plan: &PhysicalPlan,
    relations: &[&Relation],
    config: &ExecConfig,
    assume_consistent: bool,
) -> Result<(), EngineError> {
    if !config.verify {
        return Ok(());
    }
    let vconfig = VerifyConfig {
        provided_inputs: Some(relations.len()),
        row_types: relations
            .iter()
            .map(|r| Some(r.schema().record_type()))
            .collect(),
        or_budget: config.or_budget,
        require_budgets: false,
        assume_consistent,
    };
    let violations = verify_plan(plan, &vconfig);
    match first_deny(&violations) {
        Some(v) => Err(EngineError::from_violation(v)),
        None => Ok(()),
    }
}

/// Build engine inputs for a slice of relations, using the first
/// relation's interned cache as the shared base arena.
fn relation_inputs<'a>(relations: &'a [&'a Relation]) -> EngineInputs<'a> {
    match relations.split_first() {
        Some((first, rest)) => {
            let cache = first.interned();
            let mut inputs = EngineInputs::with_base(cache.arena.clone());
            inputs.push_interned(first.records(), &cache.ids);
            for r in rest {
                inputs.push_rows(r.records());
            }
            inputs
        }
        None => EngineInputs::new(),
    }
}

/// Run a physical plan over relations; slot `i` of the plan scans
/// `relations[i]`.  Returns the result as a set value.
pub fn run_plan(
    plan: &PhysicalPlan,
    relations: &[&Relation],
    config: ExecConfig,
) -> Result<Value, EngineError> {
    verify_against_relations(plan, relations, &config, false)?;
    Executor::new(config).run_inputs_to_value(plan, &relation_inputs(relations))
}

/// Run a physical plan over relations and report execution counters.
pub fn run_plan_with_stats(
    plan: &PhysicalPlan,
    relations: &[&Relation],
    config: ExecConfig,
) -> Result<(Value, ExecStats), EngineError> {
    verify_against_relations(plan, relations, &config, false)?;
    let (rows, stats) = Executor::new(config).run_inputs(plan, &relation_inputs(relations))?;
    Ok((canonical_set(rows), stats))
}

/// Run a physical plan through the **expand planner** first, then execute.
///
/// The planner ([`or_nra::optimize::optimize_expansion`]) is given the
/// relations' schema row types, so it can push filters (and, for
/// `assume_consistent` inputs, projections) below `OrExpand` wherever the
/// preservation conditions allow, and it caps the worker count at its
/// cost-model recommendation — one big expand becomes that many
/// partition-local expands.  The recommended worker count is **pinned**:
/// the planner's cost model has already judged the input large enough to
/// parallelize, so the executor's own
/// [`ExecConfig::min_parallel_rows`] fallback is bypassed.  Returns the
/// result, the execution counters and the planner's report.
///
/// ```
/// use or_db::{Field, Relation, Schema};
/// use or_engine::prelude::*;
/// use or_nra::morphism::Morphism;
/// use or_object::{Type, Value};
///
/// // A relation of (id, <alternative cost>) records.
/// let schema = Schema::new([
///     Field::new("id", Type::Int),
///     Field::new("cost", Type::orset(Type::Int)),
/// ])
/// .unwrap();
/// let rel = Relation::from_records(
///     "parts",
///     schema,
///     (0..8).map(|i| {
///         Value::pair(Value::Int(i), Value::int_orset([i, i + 100]))
///     }),
/// )
/// .unwrap();
///
/// // α-expand each record into its possible worlds, then union them.
/// let expand = Morphism::map(Morphism::Normalize.then(Morphism::OrToSet))
///     .then(Morphism::Mu);
/// let plan = or_nra::optimize::lower(&expand).unwrap();
/// let (out, stats, report) =
///     run_plan_optimized(&plan, &[&rel], ExecConfig::parallel()).unwrap();
///
/// // 8 records × 2 alternatives = 16 distinct worlds.
/// assert_eq!(stats.rows, 16);
/// assert!(matches!(out, Value::Set(ref items) if items.len() == 16));
/// assert!(report.recommended_workers >= 1);
/// ```
pub fn run_plan_optimized(
    plan: &PhysicalPlan,
    relations: &[&Relation],
    config: ExecConfig,
) -> Result<(Value, ExecStats, ExpandPlanReport), EngineError> {
    let inputs: Vec<&[Value]> = relations.iter().map(|r| r.records()).collect();
    let planner_config = ExpandPlannerConfig {
        row_types: relations.iter().map(|r| r.schema().record_type()).collect(),
        ..ExpandPlannerConfig::default()
    }
    .with_available_workers(config.workers);
    let (optimized, report) = optimize_expansion(plan, &inputs, &planner_config);
    // Verify the *optimized* plan — this is where a planner bug pushing a
    // non-preserving operator below the expansion (rule V08) would
    // actually be caught.  The consistency promise matches the planner's.
    verify_against_relations(
        &optimized,
        relations,
        &config,
        planner_config.assume_consistent,
    )?;
    let exec_config = ExecConfig {
        workers: report.recommended_workers,
        // The planner's cost model owns the parallelize-or-not decision;
        // don't second-guess it with the row-count threshold.
        pin_workers: true,
        ..config
    };
    let (rows, stats) =
        Executor::new(exec_config).run_inputs(&optimized, &relation_inputs(relations))?;
    Ok((canonical_set(rows), stats, report))
}

/// Lower a set-pipeline morphism (`{record} → {t}`) and run it over a
/// relation.  Morphisms outside the lowerable fragment report
/// [`EngineError::Lower`]; callers can fall back to
/// [`or_nra::eval::eval`] on [`Relation::to_value`].
pub fn run_morphism(
    relation: &Relation,
    m: &Morphism,
    config: ExecConfig,
) -> Result<Value, EngineError> {
    let plan = lower(m)?;
    run_plan(&plan, &[relation], config)
}

/// Lower and run a morphism over a plain set value (the engine-side analogue
/// of `eval(m, v)` for `v = {rows}`).
pub fn run_morphism_on_value(
    v: &Value,
    m: &Morphism,
    config: ExecConfig,
) -> Result<Value, EngineError> {
    let plan = lower(m)?;
    let rows = match v {
        Value::Set(items) => items.as_slice(),
        other => {
            return Err(EngineError::NotARelation {
                value: other.to_string(),
            })
        }
    };
    Executor::new(config).run_to_value(&plan, &[rows])
}
