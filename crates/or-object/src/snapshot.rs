//! Frozen, shareable database snapshots: named relations interned against
//! an `Arc`-frozen arena, with copy-on-write republish.
//!
//! A [`Snapshot`] is the unit a serving layer hands to concurrent readers:
//! it owns a frozen [`Interner`] base plus a map of **published** relations
//! — each a set binding whose rows were interned against that base.  Every
//! field is behind an `Arc`, so cloning a snapshot is a handful of
//! reference-count bumps; a reader that cloned one can keep querying it
//! (chaining private overlay arenas on the frozen base via
//! [`Interner::with_base`]) no matter what the writer does next.
//!
//! ## Copy-on-write republish
//!
//! [`Snapshot::publish`] binds or rebinds a relation.  When the snapshot is
//! the **sole owner** of its arena (no reader holds a clone), the rows are
//! interned in place — the mutation is invisible because nobody else can
//! observe the arena.  When readers *do* hold the arena, the writer chains
//! a fresh overlay on the frozen base, interns into the overlay, and
//! freezes that as the new base: old readers keep their consistent view,
//! new readers see the new relation.  Published ids are never invalidated —
//! they refer into the arena chain the reader captured.
//!
//! ## Amortized compaction
//!
//! Rebinding a name strands the old binding's interned nodes in the arena:
//! nothing refers to them, but a hash-consing arena cannot free individual
//! nodes.  The snapshot therefore tracks a node-accurate **garbage hint**
//! (the arena-length delta each publish contributed, accumulated when that
//! publish is replaced or retracted) and **re-freezes into a fresh arena**
//! — re-interning only the live relations — once garbage reaches half the
//! arena ([`Snapshot::should_compact`]), or once the overlay chain grows
//! deep enough that probe chains would hurt readers.  Each compaction costs
//! one pass over the *live* nodes and is triggered only after at least as
//! many *garbage* nodes accrued, so the total compaction work is linear in
//! the nodes ever interned — the classic doubling argument — while
//! `arena_nodes` stays within a constant factor of the live data.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::intern::{InternId, Interner};
use crate::value::Value;

/// One published relation: the rows of a set binding plus their interned
/// ids in the owning snapshot's arena (`ids[i]` names `rows[i]`).
#[derive(Debug, Clone)]
pub struct Published {
    rows: Arc<Vec<Value>>,
    ids: Arc<Vec<InternId>>,
    /// Arena nodes this publish contributed (the arena-length delta while
    /// interning it).  An upper bound on what rebinding it strands: nodes
    /// shared with later publishes are attributed here, not there.
    nodes_hint: usize,
}

impl Published {
    /// The relation's rows, in canonical (sorted, deduplicated) order if
    /// the publisher provided them that way.
    pub fn rows(&self) -> &Arc<Vec<Value>> {
        &self.rows
    }

    /// Interned ids, parallel to [`Published::rows`], valid in the arena of
    /// the snapshot this was read from (and any overlay chained on it).
    pub fn ids(&self) -> &Arc<Vec<InternId>> {
        &self.ids
    }

    /// Arena nodes attributed to this publish.
    pub fn nodes_hint(&self) -> usize {
        self.nodes_hint
    }
}

/// A frozen arena plus the named relations published against it.
/// Cheap to clone (all `Arc`s); see the module docs for the ownership
/// model.
#[derive(Debug, Clone)]
pub struct Snapshot {
    arena: Arc<Interner>,
    relations: BTreeMap<String, Published>,
    /// Nodes stranded by rebinds/retractions since the last compaction.
    garbage_hint: usize,
    /// Overlay links chained on the arena since the last compaction (each
    /// shared-arena publish adds one).
    depth: usize,
}

/// Overlay chain depth beyond which a compaction is forced: every reader
/// probe may walk the whole chain, so unbounded depth turns O(1) lookups
/// into O(rebinds).
const MAX_OVERLAY_DEPTH: usize = 32;

/// Arena size below which garbage-ratio compaction is skipped — re-freezing
/// a tiny arena on every second rebind would cost more than the nodes it
/// reclaims.
const COMPACT_MIN_NODES: usize = 1024;

impl Snapshot {
    /// An empty snapshot with a fresh arena.
    pub fn new() -> Snapshot {
        Snapshot {
            arena: Arc::new(Interner::new()),
            relations: BTreeMap::new(),
            garbage_hint: 0,
            depth: 0,
        }
    }

    /// The frozen arena.  Readers chain query-local overlays on a clone of
    /// this (`Interner::with_base`) and pass published ids straight to the
    /// engine.
    pub fn arena(&self) -> &Arc<Interner> {
        &self.arena
    }

    /// Look up a published relation.
    pub fn get(&self, name: &str) -> Option<&Published> {
        self.relations.get(name)
    }

    /// Iterate the published relations in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Published)> {
        self.relations.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of published relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether no relation is published.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Total nodes in the arena (live + garbage).
    pub fn arena_nodes(&self) -> usize {
        self.arena.len()
    }

    /// Nodes stranded by rebinds since the last compaction (an upper
    /// bound; see [`Published::nodes_hint`]).
    pub fn garbage_hint(&self) -> usize {
        self.garbage_hint
    }

    /// Publish (or republish) `name` with the given rows, interning them
    /// against the snapshot's arena.  Sole-owner arenas are extended in
    /// place; shared arenas get a copy-on-write overlay (readers holding a
    /// clone of this snapshot are unaffected either way).  Compacts
    /// afterwards when [`Snapshot::should_compact`] says so.
    pub fn publish(&mut self, name: &str, rows: Vec<Value>) {
        let published = self.intern_rows(rows);
        if let Some(old) = self.relations.insert(name.to_string(), published) {
            self.garbage_hint += old.nodes_hint;
        }
        if self.should_compact() {
            self.compact();
        }
    }

    /// Remove a published relation.  Returns whether it existed.  Its
    /// nodes become garbage; compaction may trigger just like on rebind.
    pub fn retract(&mut self, name: &str) -> bool {
        match self.relations.remove(name) {
            Some(old) => {
                self.garbage_hint += old.nodes_hint;
                if self.should_compact() {
                    self.compact();
                }
                true
            }
            None => false,
        }
    }

    /// Whether the next publish/retract would compact: garbage has reached
    /// half the arena (above a small floor), or the overlay chain is deep
    /// enough to slow reader probes.
    pub fn should_compact(&self) -> bool {
        self.depth > MAX_OVERLAY_DEPTH
            || (self.arena.len() >= COMPACT_MIN_NODES && 2 * self.garbage_hint >= self.arena.len())
    }

    /// Re-freeze into a fresh arena, re-interning only the live relations.
    /// Published `rows` `Arc`s are reused; only the id vectors are rebuilt.
    /// Readers holding clones of the old snapshot keep their old arena.
    pub fn compact(&mut self) {
        let mut fresh = Interner::new();
        let mut relations = BTreeMap::new();
        for (name, published) in &self.relations {
            let before = fresh.len();
            let ids: Vec<InternId> = published.rows.iter().map(|v| fresh.intern(v)).collect();
            relations.insert(
                name.clone(),
                Published {
                    rows: Arc::clone(&published.rows),
                    ids: Arc::new(ids),
                    nodes_hint: fresh.len() - before,
                },
            );
        }
        self.arena = Arc::new(fresh);
        self.relations = relations;
        self.garbage_hint = 0;
        self.depth = 0;
    }

    /// Intern `rows`, extending the arena in place when this snapshot is
    /// its sole owner, otherwise chaining a copy-on-write overlay.
    fn intern_rows(&mut self, rows: Vec<Value>) -> Published {
        match Arc::get_mut(&mut self.arena) {
            Some(arena) => {
                let before = arena.len();
                let ids: Vec<InternId> = rows.iter().map(|v| arena.intern(v)).collect();
                let nodes_hint = arena.len() - before;
                Published {
                    rows: Arc::new(rows),
                    ids: Arc::new(ids),
                    nodes_hint,
                }
            }
            None => {
                let mut overlay = Interner::with_base(Arc::clone(&self.arena));
                let before = overlay.len();
                let ids: Vec<InternId> = rows.iter().map(|v| overlay.intern(v)).collect();
                let nodes_hint = overlay.len() - before;
                self.arena = Arc::new(overlay);
                self.depth += 1;
                Published {
                    rows: Arc::new(rows),
                    ids: Arc::new(ids),
                    nodes_hint,
                }
            }
        }
    }
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_rows(range: std::ops::Range<i64>) -> Vec<Value> {
        range.map(Value::Int).collect()
    }

    #[test]
    fn publish_and_read_back() {
        let mut snap = Snapshot::new();
        snap.publish("db", int_rows(0..10));
        let published = snap.get("db").unwrap();
        assert_eq!(published.rows().len(), 10);
        assert_eq!(published.ids().len(), 10);
        // ids decode (uncounted) to exactly the published rows
        for (row, &id) in published.rows().iter().zip(published.ids().iter()) {
            assert_eq!(&snap.arena().value(id), row);
        }
        assert!(published.nodes_hint() > 0);
        assert_eq!(snap.garbage_hint(), 0);
    }

    /// The satellite bug: rebinding one name in a loop must not grow the
    /// arena without bound.  Node-accurate accounting keeps `arena_nodes`
    /// within a constant factor of one binding's live size even when a
    /// *small* live relation sits alongside (the row-counting scheme this
    /// replaces compacted on row ratios and missed exactly this shape).
    #[test]
    fn repeated_rebind_keeps_arena_bounded() {
        let mut snap = Snapshot::new();
        snap.publish("small", int_rows(0..4));
        let mut high_water = 0;
        for round in 0..100 {
            // each round's rows are disjoint from the last, so every rebind
            // strands the previous round's nodes
            let base = 1000 + round * 10_000;
            snap.publish("big", int_rows(base..base + 2_000));
            high_water = high_water.max(snap.arena_nodes());
        }
        // live data is ~2 004 nodes; bounded means a small multiple of
        // that, not 100 rounds' worth (~200k)
        assert!(
            high_water < 3 * 4_096,
            "arena high-water {high_water} suggests rebind garbage is not compacted"
        );
        // the surviving relations still read back correctly
        assert_eq!(snap.get("small").unwrap().rows().len(), 4);
        assert_eq!(snap.get("big").unwrap().rows().len(), 2_000);
        for (row, &id) in snap
            .get("big")
            .unwrap()
            .rows()
            .iter()
            .zip(snap.get("big").unwrap().ids().iter())
        {
            assert_eq!(&snap.arena().value(id), row);
        }
    }

    /// Copy-on-write: a reader holding a clone keeps a consistent view
    /// across the writer's republish *and* compaction.
    #[test]
    fn readers_keep_their_view_across_republish() {
        let mut snap = Snapshot::new();
        snap.publish("db", int_rows(0..50));
        let reader = snap.clone();
        let reader_arena = Arc::clone(reader.arena());

        // writer rebinds while the reader holds the arena → overlay path
        snap.publish("db", int_rows(100..150));
        // and forces a compaction on top
        snap.compact();

        // the reader's ids still decode in the reader's arena
        let published = reader.get("db").unwrap();
        for (row, &id) in published.rows().iter().zip(published.ids().iter()) {
            assert_eq!(&reader_arena.value(id), row);
        }
        assert_eq!(published.rows()[0], Value::Int(0));
        // the writer sees the new binding
        assert_eq!(snap.get("db").unwrap().rows()[0], Value::Int(100));
    }

    /// A reader overlay chained on the snapshot arena can intern new values
    /// and still resolve published ids — the per-query arena pattern.
    #[test]
    fn reader_overlays_resolve_published_ids() {
        let mut snap = Snapshot::new();
        snap.publish("db", int_rows(0..20));
        let mut overlay = Interner::with_base(Arc::clone(snap.arena()));
        let local = overlay.intern(&Value::pair(Value::Int(999), Value::Int(998)));
        let &first = snap.get("db").unwrap().ids().first().unwrap();
        assert_eq!(overlay.value(first), Value::Int(0));
        assert_eq!(
            overlay.value(local),
            Value::pair(Value::Int(999), Value::Int(998))
        );
    }

    #[test]
    fn retract_accrues_garbage_and_forgets_the_name() {
        let mut snap = Snapshot::new();
        snap.publish("a", int_rows(0..10));
        snap.publish("b", int_rows(10..20));
        assert!(snap.retract("a"));
        assert!(!snap.retract("a"));
        assert!(snap.get("a").is_none());
        assert!(snap.get("b").is_some());
        // arena below the compaction floor: garbage is tracked, not yet
        // collected
        assert!(snap.garbage_hint() > 0);
    }

    #[test]
    fn deep_overlay_chains_trigger_compaction() {
        let mut snap = Snapshot::new();
        let mut holds = Vec::new();
        for i in 0..(MAX_OVERLAY_DEPTH as i64 + 8) {
            // keep a clone alive so every publish is forced onto the
            // copy-on-write overlay path
            holds.push(snap.clone());
            snap.publish(&format!("r{i}"), int_rows(i..i + 2));
        }
        // compaction must have reset the chain depth at least once
        assert!(
            snap.depth <= MAX_OVERLAY_DEPTH,
            "depth {} unbounded",
            snap.depth
        );
        for i in 0..(MAX_OVERLAY_DEPTH as i64 + 8) {
            let published = snap.get(&format!("r{i}")).unwrap();
            assert_eq!(
                &snap.arena().value(published.ids()[0]),
                &published.rows()[0]
            );
        }
    }
}
