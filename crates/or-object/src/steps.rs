//! Elementary information-improvement steps and their closures
//! (Propositions 3.1 and 3.2).
//!
//! Section 3 characterizes the Hoare and Smyth orders as reflexive–transitive
//! closures of elementary transformations on finite sets over a poset
//! `(X, ≤)`:
//!
//! * for ordinary sets (`⇝`):
//!   1. replace an element `a` by a non-empty set `A'` of elements all above
//!      `a`;
//!   2. add an arbitrary element;
//! * for or-sets (`↪`):
//!   1. replace an element `a` by a non-empty set `A'` of elements all above
//!      `a`;
//!   2. remove an element, provided the result is non-empty.
//!
//! Proposition 3.1 states `⇝* = ⊑♭` and `↪* = ⊑♯`.  Proposition 3.2 states
//! the analogous result for the antichain variants `⇝ₐ` / `↪ₐ` in which each
//! step is followed by `max` / `min`.
//!
//! The closure checkers below perform a breadth-first search over step
//! applications restricted to elements occurring in the source or the target
//! (the proofs of Propositions 3.1/3.2 show that this restriction is
//! complete).  They are intentionally independent of the direct order
//! predicates in [`crate::order`], so tests and experiment E8 can confirm the
//! propositions by comparing the two.

use std::collections::{BTreeSet, VecDeque};

use crate::antichain::{max_elems, min_elems};

/// Which collection kind the steps operate on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// Ordinary sets: replacement by larger elements and addition.
    Set,
    /// Or-sets: replacement by larger elements and removal (keeping the
    /// result non-empty).
    OrSet,
}

/// Configuration for the closure search.
#[derive(Debug, Clone, Copy)]
pub struct ClosureConfig {
    /// Apply the antichain coercion (`max` for sets, `min` for or-sets)
    /// after every step, as in Proposition 3.2.
    pub antichain: bool,
    /// Safety cap on the number of states explored.
    pub max_states: usize,
}

impl Default for ClosureConfig {
    fn default() -> Self {
        ClosureConfig {
            antichain: false,
            max_states: 200_000,
        }
    }
}

/// A state in the search: a finite subset of the universe, encoded as a
/// sorted vector of universe indices.
type State = Vec<usize>;

fn canonical(mut s: State) -> State {
    s.sort_unstable();
    s.dedup();
    s
}

/// Compute the successor states of `state` under the elementary steps,
/// where the universe is indexed `0..n` and `leq(i, j)` gives the element
/// order on universe indices.
fn successors<F>(
    state: &State,
    universe_len: usize,
    leq: &F,
    kind: StepKind,
    antichain: bool,
) -> Vec<State>
where
    F: Fn(usize, usize) -> bool,
{
    let mut out: Vec<State> = Vec::new();
    let coerce = |s: State| -> State {
        if !antichain {
            return canonical(s);
        }
        let items = canonical(s);
        let picked = match kind {
            StepKind::Set => max_elems(&items, |a, b| leq(*a, *b)),
            StepKind::OrSet => min_elems(&items, |a, b| leq(*a, *b)),
        };
        canonical(picked)
    };

    // Rule 1 (both kinds): replace an element by a non-empty set of elements
    // all above it.  We enumerate non-empty subsets of the up-set of `a`
    // restricted to the universe.
    for (pos, &a) in state.iter().enumerate() {
        let ups: Vec<usize> = (0..universe_len).filter(|&x| leq(a, x)).collect();
        if ups.is_empty() {
            continue;
        }
        // enumerate non-empty subsets of `ups` (the universe is small in the
        // intended uses: tests and experiment E8 keep it under ~12 elements)
        let m = ups.len();
        for mask in 1u32..(1u32 << m) {
            let mut next: State = state.clone();
            next.remove(pos);
            for (bit, &u) in ups.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    next.push(u);
                }
            }
            out.push(coerce(next));
        }
    }

    match kind {
        StepKind::Set => {
            // Rule 2 for sets: add an arbitrary universe element.
            for x in 0..universe_len {
                if !state.contains(&x) {
                    let mut next = state.clone();
                    next.push(x);
                    out.push(coerce(next));
                }
            }
        }
        StepKind::OrSet => {
            // Rule 2 for or-sets: remove an element, result must be non-empty.
            if state.len() > 1 {
                for pos in 0..state.len() {
                    let mut next = state.clone();
                    next.remove(pos);
                    out.push(coerce(next));
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Is `target` reachable from `source` by a (possibly empty) sequence of
/// elementary steps, using only elements of `source ∪ target`?
///
/// `leq` is the element order.  Elements are compared for identity with
/// `PartialEq`; duplicates between `source` and `target` are merged.
pub fn reachable<T, F>(
    source: &[T],
    target: &[T],
    mut leq: F,
    kind: StepKind,
    config: ClosureConfig,
) -> bool
where
    T: Clone + PartialEq,
    F: FnMut(&T, &T) -> bool,
{
    // Build the universe.
    let mut universe: Vec<T> = Vec::new();
    for x in source.iter().chain(target.iter()) {
        if !universe.contains(x) {
            universe.push(x.clone());
        }
    }
    let index_of = |x: &T, universe: &[T]| universe.iter().position(|u| u == x).unwrap();
    let src: State = canonical(source.iter().map(|x| index_of(x, &universe)).collect());
    let tgt: State = canonical(target.iter().map(|x| index_of(x, &universe)).collect());

    // Pre-compute the order relation on universe indices.
    let n = universe.len();
    let mut rel = vec![false; n * n];
    for i in 0..n {
        for j in 0..n {
            rel[i * n + j] = leq(&universe[i], &universe[j]);
        }
    }
    let leq_idx = move |i: usize, j: usize| rel[i * n + j];

    // The starting state must also be coerced when the antichain variant is
    // requested (the relation is defined on antichains).
    let start = if config.antichain {
        let picked = match kind {
            StepKind::Set => max_elems(&src, |a, b| leq_idx(*a, *b)),
            StepKind::OrSet => min_elems(&src, |a, b| leq_idx(*a, *b)),
        };
        canonical(picked)
    } else {
        src
    };
    if start == tgt {
        return true;
    }

    let mut seen: BTreeSet<State> = BTreeSet::new();
    seen.insert(start.clone());
    let mut queue: VecDeque<State> = VecDeque::new();
    queue.push_back(start);
    while let Some(state) = queue.pop_front() {
        if seen.len() > config.max_states {
            // Search exhausted its budget; report unreachable conservatively.
            return false;
        }
        for next in successors(&state, n, &leq_idx, kind, config.antichain) {
            if next == tgt {
                return true;
            }
            if seen.insert(next.clone()) {
                queue.push_back(next);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::{hoare, smyth};

    /// A small poset used throughout: 0 < 2, 0 < 3, 1 < 3, 1 < 4 (a "zig-zag").
    fn zigzag(a: &u8, b: &u8) -> bool {
        a == b || matches!((a, b), (0, 2) | (0, 3) | (1, 3) | (1, 4))
    }

    #[test]
    fn office_example_reaches_more_informative_set() {
        // {⊥} ⇝* {Joe, Mary, Bill}: replace the null record and add one.
        // modelled on the zigzag poset: {0} should reach {2, 3, 4}
        assert!(reachable(
            &[0u8],
            &[2, 3, 4],
            zigzag,
            StepKind::Set,
            ClosureConfig::default()
        ));
    }

    #[test]
    fn set_closure_agrees_with_hoare_on_small_cases() {
        let subsets: Vec<Vec<u8>> = (0u32..32)
            .map(|mask| (0u8..5).filter(|i| mask & (1 << i) != 0).collect())
            .collect();
        for a in &subsets {
            for b in &subsets {
                let expect = hoare(a, b, zigzag);
                let got = reachable(a, b, zigzag, StepKind::Set, ClosureConfig::default());
                assert_eq!(got, expect, "hoare mismatch for {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn orset_closure_agrees_with_smyth_on_small_cases() {
        let subsets: Vec<Vec<u8>> = (0u32..32)
            .map(|mask| (0u8..5).filter(|i| mask & (1 << i) != 0).collect())
            .collect();
        for a in &subsets {
            for b in &subsets {
                let expect = smyth(a, b, zigzag);
                let got = reachable(a, b, zigzag, StepKind::OrSet, ClosureConfig::default());
                assert_eq!(got, expect, "smyth mismatch for {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn antichain_set_closure_agrees_with_hoare_on_antichains() {
        // Proposition 3.2 restricted to antichains of the zigzag poset.
        let all: Vec<Vec<u8>> = (0u32..32)
            .map(|mask| (0u8..5).filter(|i| mask & (1 << i) != 0).collect())
            .collect();
        let antichains: Vec<&Vec<u8>> = all
            .iter()
            .filter(|s| {
                s.iter()
                    .all(|x| s.iter().all(|y| x == y || (!zigzag(x, y) && !zigzag(y, x))))
            })
            .collect();
        let cfg = ClosureConfig {
            antichain: true,
            ..ClosureConfig::default()
        };
        for a in &antichains {
            for b in &antichains {
                let expect = hoare(a, b, zigzag);
                let got = reachable(a, b, zigzag, StepKind::Set, cfg);
                assert_eq!(got, expect, "antichain hoare mismatch for {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn antichain_orset_closure_agrees_with_smyth_on_antichains() {
        let all: Vec<Vec<u8>> = (0u32..32)
            .map(|mask| (0u8..5).filter(|i| mask & (1 << i) != 0).collect())
            .collect();
        let antichains: Vec<&Vec<u8>> = all
            .iter()
            .filter(|s| {
                s.iter()
                    .all(|x| s.iter().all(|y| x == y || (!zigzag(x, y) && !zigzag(y, x))))
            })
            .collect();
        let cfg = ClosureConfig {
            antichain: true,
            ..ClosureConfig::default()
        };
        for a in &antichains {
            for b in &antichains {
                let expect = smyth(a, b, zigzag);
                let got = reachable(a, b, zigzag, StepKind::OrSet, cfg);
                assert_eq!(got, expect, "antichain smyth mismatch for {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn orset_cannot_reach_empty_target() {
        assert!(!reachable(
            &[0u8, 1],
            &[],
            zigzag,
            StepKind::OrSet,
            ClosureConfig::default()
        ));
    }

    #[test]
    fn empty_set_reaches_anything() {
        assert!(reachable(
            &[],
            &[0u8, 4],
            zigzag,
            StepKind::Set,
            ClosureConfig::default()
        ));
    }
}
