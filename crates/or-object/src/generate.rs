//! Random generators for types and objects.
//!
//! These are used by the property tests and by the benchmark workloads
//! (experiments E3–E5, E8–E11).  Generation is deterministic given an RNG
//! seed so that benchmark tables are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::types::Type;
use crate::value::Value;

/// Parameters controlling random generation.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Maximum nesting depth of generated types/objects.
    pub max_depth: usize,
    /// Maximum number of elements in generated sets / or-sets.
    pub max_width: usize,
    /// Range of generated integer constants (inclusive upper bound).
    pub int_range: i64,
    /// Probability (0..=100) of generating an or-set at a collection site.
    pub orset_bias: u8,
    /// Allow empty or-sets (conceptually inconsistent objects).
    pub allow_empty_orsets: bool,
    /// Allow `Null` constants at base types.
    pub allow_nulls: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_depth: 4,
            max_width: 3,
            int_range: 8,
            orset_bias: 50,
            allow_empty_orsets: false,
            allow_nulls: false,
        }
    }
}

/// A deterministic generator of random types and objects.
#[derive(Debug)]
pub struct Generator {
    rng: StdRng,
    /// Generation parameters.
    pub config: GenConfig,
}

impl Generator {
    /// Create a generator from a seed and configuration.
    pub fn new(seed: u64, config: GenConfig) -> Self {
        Generator {
            rng: StdRng::seed_from_u64(seed),
            config,
        }
    }

    /// Create a generator with default configuration.
    pub fn with_seed(seed: u64) -> Self {
        Generator::new(seed, GenConfig::default())
    }

    /// Generate a random object type of depth at most `config.max_depth`
    /// that is guaranteed to mention an or-set.
    pub fn or_type(&mut self) -> Type {
        loop {
            let t = self.object_type(self.config.max_depth);
            if t.contains_orset() {
                return t;
            }
        }
    }

    /// Generate a random object type of depth at most `depth`.
    pub fn object_type(&mut self, depth: usize) -> Type {
        if depth <= 1 {
            return self.base_type();
        }
        match self.rng.gen_range(0..100u8) {
            0..=24 => self.base_type(),
            25..=49 => Type::prod(self.object_type(depth - 1), self.object_type(depth - 1)),
            50..=74 => {
                if self.rng.gen_range(0..100u8) < self.config.orset_bias {
                    Type::orset(self.object_type(depth - 1))
                } else {
                    Type::set(self.object_type(depth - 1))
                }
            }
            _ => {
                if self.rng.gen_range(0..100u8) < self.config.orset_bias {
                    Type::orset(self.object_type(depth - 1))
                } else {
                    Type::set(self.object_type(depth - 1))
                }
            }
        }
    }

    fn base_type(&mut self) -> Type {
        match self.rng.gen_range(0..3u8) {
            0 => Type::Int,
            1 => Type::Bool,
            _ => Type::Str,
        }
    }

    /// Generate a random object of the given type.
    pub fn object_of(&mut self, ty: &Type) -> Value {
        match ty {
            Type::Unit => Value::Unit,
            Type::Bool => {
                if self.config.allow_nulls && self.rng.gen_ratio(1, 8) {
                    Value::Null
                } else {
                    Value::Bool(self.rng.gen())
                }
            }
            Type::Int => {
                if self.config.allow_nulls && self.rng.gen_ratio(1, 8) {
                    Value::Null
                } else {
                    Value::Int(self.rng.gen_range(0..=self.config.int_range))
                }
            }
            Type::Str => {
                if self.config.allow_nulls && self.rng.gen_ratio(1, 8) {
                    Value::Null
                } else {
                    let names = ["a", "b", "c", "d", "e", "f"];
                    Value::str(names[self.rng.gen_range(0..names.len())])
                }
            }
            Type::Prod(a, b) => Value::pair(self.object_of(a), self.object_of(b)),
            Type::Set(t) => {
                let width = self.rng.gen_range(0..=self.config.max_width);
                Value::set((0..width).map(|_| self.object_of(t)))
            }
            Type::OrSet(t) => {
                let lo = usize::from(!self.config.allow_empty_orsets);
                let width = self.rng.gen_range(lo..=self.config.max_width.max(lo));
                Value::orset((0..width).map(|_| self.object_of(t)))
            }
            Type::Bag(t) => {
                let width = self.rng.gen_range(0..=self.config.max_width);
                Value::bag((0..width).map(|_| self.object_of(t)))
            }
        }
    }

    /// Generate a random object together with its type.
    pub fn typed_object(&mut self) -> (Type, Value) {
        let ty = self.object_type(self.config.max_depth);
        let v = self.object_of(&ty);
        (ty, v)
    }

    /// Generate a random or-set-containing object together with its type.
    pub fn typed_or_object(&mut self) -> (Type, Value) {
        let ty = self.or_type();
        let v = self.object_of(&ty);
        (ty, v)
    }

    /// The witness family of Theorem 6.2 / 6.5: a set of `k` three-element
    /// or-sets over `3k` pairwise-distinct integers.  Its normal form has
    /// exactly `3^k = 3^{n/3}` elements of size `k = n/3` each.
    pub fn tightness_witness(k: usize) -> Value {
        Value::set(
            (0..k).map(|i| Value::int_orset([3 * i as i64, 3 * i as i64 + 1, 3 * i as i64 + 2])),
        )
    }

    /// The exponential-blow-up family of Section 2: a set of `n` two-element
    /// or-sets over `2n` pairwise-distinct integers.  `alpha` maps it to an
    /// or-set of `2^n` sets.
    pub fn alpha_blowup_witness(n: usize) -> Value {
        Value::set((0..n).map(|i| Value::int_orset([2 * i as i64, 2 * i as i64 + 1])))
    }

    /// Access the underlying RNG (for workloads that need extra randomness).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut g1 = Generator::with_seed(7);
        let mut g2 = Generator::with_seed(7);
        for _ in 0..20 {
            assert_eq!(g1.typed_object(), g2.typed_object());
        }
    }

    #[test]
    fn generated_objects_have_their_declared_type() {
        let mut g = Generator::with_seed(42);
        for _ in 0..200 {
            let (ty, v) = g.typed_object();
            assert!(v.has_type(&ty), "{v} should have type {ty}");
        }
    }

    #[test]
    fn or_type_always_contains_an_orset() {
        let mut g = Generator::with_seed(3);
        for _ in 0..50 {
            assert!(g.or_type().contains_orset());
        }
    }

    #[test]
    fn empty_orsets_are_excluded_by_default() {
        let mut g = Generator::with_seed(11);
        for _ in 0..200 {
            let (_, v) = g.typed_or_object();
            assert!(!v.contains_empty_orset(), "{v} contains an empty or-set");
        }
    }

    #[test]
    fn nulls_appear_when_enabled() {
        let config = GenConfig {
            allow_nulls: true,
            ..GenConfig::default()
        };
        let mut g = Generator::new(5, config);
        let ty = Type::set(Type::Int);
        let found_null = (0..200)
            .map(|_| g.object_of(&ty))
            .any(|v| v.subobjects().iter().any(|s| **s == Value::Null));
        assert!(found_null);
    }

    #[test]
    fn tightness_witness_has_expected_size() {
        let w = Generator::tightness_witness(4);
        assert_eq!(w.size(), 12);
        assert_eq!(w.elements().unwrap().len(), 4);
    }

    #[test]
    fn blowup_witness_has_expected_shape() {
        let w = Generator::alpha_blowup_witness(5);
        assert_eq!(w.size(), 10);
        assert_eq!(w.elements().unwrap().len(), 5);
    }
}
