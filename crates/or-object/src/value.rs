//! Complex objects: the values of or-NRA.
//!
//! An object is built from base constants by pairing, finite sets `{…}` and
//! or-sets `<…>`.  Following the paper, angle brackets denote or-sets and
//! curly braces denote ordinary sets.  A multiset ("bag") constructor exists
//! for the internal normalization process of Section 4 only.
//!
//! Values carry a canonical representation: set and or-set elements are kept
//! sorted and deduplicated, bags sorted but with duplicates retained.  This
//! makes structural equality coincide with the intended set equality.

use std::fmt;

use crate::types::Type;

/// A complex object.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// The unique element of type `unit`.
    Unit,
    /// A boolean constant.
    Bool(bool),
    /// An integer constant.
    Int(i64),
    /// A string constant.
    Str(String),
    /// The "no information" null of a flat domain (Codd-style null).  It is
    /// the bottom element under [`crate::base_order::BaseOrder::FlatWithNull`]
    /// and is only ever used with base types.
    Null,
    /// A pair.
    Pair(Box<Value>, Box<Value>),
    /// An ordinary finite set (sorted, deduplicated).
    Set(Vec<Value>),
    /// An or-set (sorted, deduplicated).
    OrSet(Vec<Value>),
    /// A multiset (sorted, duplicates preserved); internal to normalization.
    Bag(Vec<Value>),
}

/// Errors raised when an object does not fit an expected shape or type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueError {
    /// The value does not have the expected type.
    TypeMismatch {
        /// The type the value was expected to have.
        expected: Type,
        /// A rendering of the offending value.
        value: String,
    },
    /// A structural expectation failed (e.g. "expected a pair").
    Shape(String),
}

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueError::TypeMismatch { expected, value } => {
                write!(f, "value {value} does not have type {expected}")
            }
            ValueError::Shape(msg) => write!(f, "shape error: {msg}"),
        }
    }
}

impl std::error::Error for ValueError {}

impl Value {
    /// Build a string constant.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Build a pair.
    pub fn pair(a: Value, b: Value) -> Value {
        Value::Pair(Box::new(a), Box::new(b))
    }

    /// Build a canonical (sorted, deduplicated) set.
    pub fn set(items: impl IntoIterator<Item = Value>) -> Value {
        let mut v: Vec<Value> = items.into_iter().collect();
        v.sort();
        v.dedup();
        Value::Set(v)
    }

    /// Build a canonical (sorted, deduplicated) or-set.
    pub fn orset(items: impl IntoIterator<Item = Value>) -> Value {
        let mut v: Vec<Value> = items.into_iter().collect();
        v.sort();
        v.dedup();
        Value::OrSet(v)
    }

    /// Build a canonical (sorted, duplicates kept) bag.
    pub fn bag(items: impl IntoIterator<Item = Value>) -> Value {
        let mut v: Vec<Value> = items.into_iter().collect();
        v.sort();
        Value::Bag(v)
    }

    /// The empty set.
    pub fn empty_set() -> Value {
        Value::Set(Vec::new())
    }

    /// The empty or-set (the paper's representation of inconsistency).
    pub fn empty_orset() -> Value {
        Value::OrSet(Vec::new())
    }

    /// Build a set of integers (convenience for tests and examples).
    pub fn int_set(items: impl IntoIterator<Item = i64>) -> Value {
        Value::set(items.into_iter().map(Value::Int))
    }

    /// Build an or-set of integers (convenience for tests and examples).
    pub fn int_orset(items: impl IntoIterator<Item = i64>) -> Value {
        Value::orset(items.into_iter().map(Value::Int))
    }

    /// Is this a base constant (including `Null`)?
    pub fn is_base(&self) -> bool {
        matches!(
            self,
            Value::Unit | Value::Bool(_) | Value::Int(_) | Value::Str(_) | Value::Null
        )
    }

    /// Elements of a set, or-set or bag.  Returns `None` for other shapes.
    pub fn elements(&self) -> Option<&[Value]> {
        match self {
            Value::Set(v) | Value::OrSet(v) | Value::Bag(v) => Some(v),
            _ => None,
        }
    }

    /// The components of a pair, if the value is a pair.
    pub fn as_pair(&self) -> Option<(&Value, &Value)> {
        match self {
            Value::Pair(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// The boolean payload, if the value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if the value is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string payload, if the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The `size` measure of Section 6: the number of leaves of the tree
    /// representation.  `size` of an atomic object is 1; pairs, sets, or-sets
    /// and bags add the sizes of their components.  The empty set / or-set /
    /// bag contributes 0 leaves (its node has no leaf below it), matching the
    /// paper's definition `size {x1,…,xn} = size x1 + … + size xn`.
    pub fn size(&self) -> u64 {
        match self {
            v if v.is_base() => 1,
            Value::Pair(a, b) => a.size() + b.size(),
            Value::Set(v) | Value::OrSet(v) | Value::Bag(v) => v.iter().map(Value::size).sum(),
            _ => unreachable!("all shapes covered"),
        }
    }

    /// The number of nodes of the tree representation (used as a secondary
    /// complexity measure in benchmarks).
    pub fn node_count(&self) -> u64 {
        match self {
            v if v.is_base() => 1,
            Value::Pair(a, b) => 1 + a.node_count() + b.node_count(),
            Value::Set(v) | Value::OrSet(v) | Value::Bag(v) => {
                1 + v.iter().map(Value::node_count).sum::<u64>()
            }
            _ => unreachable!("all shapes covered"),
        }
    }

    /// Height of the tree representation.
    pub fn height(&self) -> usize {
        match self {
            v if v.is_base() => 1,
            Value::Pair(a, b) => 1 + a.height().max(b.height()),
            Value::Set(v) | Value::OrSet(v) | Value::Bag(v) => {
                1 + v.iter().map(Value::height).max().unwrap_or(0)
            }
            _ => unreachable!("all shapes covered"),
        }
    }

    /// Does the object contain an or-set constructor anywhere?
    pub fn contains_orset(&self) -> bool {
        match self {
            v if v.is_base() => false,
            Value::Pair(a, b) => a.contains_orset() || b.contains_orset(),
            Value::Set(v) | Value::Bag(v) => v.iter().any(Value::contains_orset),
            Value::OrSet(_) => true,
            _ => unreachable!("all shapes covered"),
        }
    }

    /// Does the object contain an *empty* or-set anywhere?  Such objects are
    /// conceptually inconsistent (Section 1) and are excluded from the
    /// losslessness theorem.
    pub fn contains_empty_orset(&self) -> bool {
        match self {
            v if v.is_base() => false,
            Value::Pair(a, b) => a.contains_empty_orset() || b.contains_empty_orset(),
            Value::Set(v) | Value::Bag(v) => v.iter().any(Value::contains_empty_orset),
            Value::OrSet(v) => v.is_empty() || v.iter().any(Value::contains_empty_orset),
            _ => unreachable!("all shapes covered"),
        }
    }

    /// Does the object contain an empty collection (set, or-set or bag)
    /// anywhere?  The cost bounds of Section 6 are stated for objects without
    /// empty collections ("empty sets and or-sets are excluded" in the proofs
    /// of Theorems 6.2/6.3), because an empty collection contributes zero to
    /// the size measure while still affecting the normal form.
    pub fn contains_empty_collection(&self) -> bool {
        match self {
            v if v.is_base() => false,
            Value::Pair(a, b) => a.contains_empty_collection() || b.contains_empty_collection(),
            Value::Set(v) | Value::OrSet(v) | Value::Bag(v) => {
                v.is_empty() || v.iter().any(Value::contains_empty_collection)
            }
            _ => unreachable!("all shapes covered"),
        }
    }

    /// Does the object contain a bag constructor anywhere?
    pub fn contains_bag(&self) -> bool {
        match self {
            v if v.is_base() => false,
            Value::Pair(a, b) => a.contains_bag() || b.contains_bag(),
            Value::Set(v) | Value::OrSet(v) => v.iter().any(Value::contains_bag),
            Value::Bag(_) => true,
            _ => unreachable!("all shapes covered"),
        }
    }

    /// The object `o^d` of Section 4: replace every set with a bag carrying
    /// single multiplicities.
    pub fn to_bagged(&self) -> Value {
        match self {
            v if v.is_base() => v.clone(),
            Value::Pair(a, b) => Value::pair(a.to_bagged(), b.to_bagged()),
            Value::Set(v) | Value::Bag(v) => Value::bag(v.iter().map(Value::to_bagged)),
            Value::OrSet(v) => Value::orset(v.iter().map(Value::to_bagged)),
            _ => unreachable!("all shapes covered"),
        }
    }

    /// The object `o^s` of Section 4: turn every bag into a set by removing
    /// duplicates.
    pub fn to_setted(&self) -> Value {
        match self {
            v if v.is_base() => v.clone(),
            Value::Pair(a, b) => Value::pair(a.to_setted(), b.to_setted()),
            Value::Set(v) => Value::set(v.iter().map(Value::to_setted)),
            Value::Bag(v) => Value::set(v.iter().map(Value::to_setted)),
            Value::OrSet(v) => Value::orset(v.iter().map(Value::to_setted)),
            _ => unreachable!("all shapes covered"),
        }
    }

    /// Check that the object is a well-typed inhabitant of `ty`.  `Null` is
    /// accepted at every base type (it is the flat-domain bottom).
    pub fn has_type(&self, ty: &Type) -> bool {
        match (self, ty) {
            (Value::Null, t) if t.is_base() => true,
            (Value::Unit, Type::Unit) => true,
            (Value::Bool(_), Type::Bool) => true,
            (Value::Int(_), Type::Int) => true,
            (Value::Str(_), Type::Str) => true,
            (Value::Pair(a, b), Type::Prod(ta, tb)) => a.has_type(ta) && b.has_type(tb),
            (Value::Set(v), Type::Set(t)) => v.iter().all(|x| x.has_type(t)),
            (Value::OrSet(v), Type::OrSet(t)) => v.iter().all(|x| x.has_type(t)),
            (Value::Bag(v), Type::Bag(t)) => v.iter().all(|x| x.has_type(t)),
            _ => false,
        }
    }

    /// Check the type and return a [`ValueError`] on mismatch.
    pub fn check_type(&self, ty: &Type) -> Result<(), ValueError> {
        if self.has_type(ty) {
            Ok(())
        } else {
            Err(ValueError::TypeMismatch {
                expected: ty.clone(),
                value: self.to_string(),
            })
        }
    }

    /// Infer a type for the object, if one exists.  Empty collections are
    /// given element type `unit`; heterogeneous collections fail.
    pub fn infer_type(&self) -> Result<Type, ValueError> {
        match self {
            Value::Unit => Ok(Type::Unit),
            Value::Bool(_) => Ok(Type::Bool),
            Value::Int(_) => Ok(Type::Int),
            Value::Str(_) => Ok(Type::Str),
            Value::Null => Err(ValueError::Shape(
                "cannot infer the base type of a null".into(),
            )),
            Value::Pair(a, b) => Ok(Type::prod(a.infer_type()?, b.infer_type()?)),
            Value::Set(v) | Value::OrSet(v) | Value::Bag(v) => {
                let elem = match v.first() {
                    None => Type::Unit,
                    Some(first) => {
                        let t = first.infer_type()?;
                        for other in &v[1..] {
                            if !other.has_type(&t) {
                                return Err(ValueError::Shape(format!(
                                    "heterogeneous collection: {other} is not of type {t}"
                                )));
                            }
                        }
                        t
                    }
                };
                Ok(match self {
                    Value::Set(_) => Type::set(elem),
                    Value::OrSet(_) => Type::orset(elem),
                    _ => Type::bag(elem),
                })
            }
        }
    }

    /// Iterate over every sub-object (including `self`), outermost first.
    pub fn subobjects(&self) -> Vec<&Value> {
        let mut out = Vec::new();
        let mut stack = vec![self];
        while let Some(v) = stack.pop() {
            out.push(v);
            match v {
                Value::Pair(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
                Value::Set(items) | Value::OrSet(items) | Value::Bag(items) => {
                    stack.extend(items.iter());
                }
                _ => {}
            }
        }
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn list(f: &mut fmt::Formatter<'_>, items: &[Value]) -> fmt::Result {
            for (i, v) in items.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            Ok(())
        }
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Null => write!(f, "null"),
            Value::Pair(a, b) => write!(f, "({a}, {b})"),
            Value::Set(v) => {
                write!(f, "{{")?;
                list(f, v)?;
                write!(f, "}}")
            }
            Value::OrSet(v) => {
                write!(f, "<")?;
                list(f, v)?;
                write!(f, ">")
            }
            Value::Bag(v) => {
                write!(f, "[|")?;
                list(f, v)?;
                write!(f, "|]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sets_are_canonical() {
        let a = Value::int_set([3, 1, 2, 2, 1]);
        let b = Value::int_set([1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.elements().unwrap().len(), 3);
    }

    #[test]
    fn orsets_are_canonical_but_bags_keep_duplicates() {
        let o = Value::orset([Value::Int(2), Value::Int(2), Value::Int(1)]);
        assert_eq!(o.elements().unwrap().len(), 2);
        let b = Value::bag([Value::Int(2), Value::Int(2), Value::Int(1)]);
        assert_eq!(b.elements().unwrap().len(), 3);
    }

    #[test]
    fn size_counts_leaves() {
        // x = [<b1,b2,b3>, <b4,b5,b6>] has size 6 (Theorem 6.2 witness shape)
        let x = Value::set([Value::int_orset([1, 2, 3]), Value::int_orset([4, 5, 6])]);
        assert_eq!(x.size(), 6);
        assert_eq!(Value::Int(7).size(), 1);
        assert_eq!(Value::pair(Value::Int(1), Value::Int(2)).size(), 2);
        assert_eq!(Value::empty_set().size(), 0);
    }

    #[test]
    fn type_checking_accepts_nulls_at_base_types() {
        let v = Value::pair(Value::Null, Value::Int(3));
        assert!(v.has_type(&Type::prod(Type::Str, Type::Int)));
        assert!(!v.has_type(&Type::prod(Type::set(Type::Str), Type::Int)));
    }

    #[test]
    fn infer_type_of_nested_object() {
        let v = Value::set([Value::int_orset([1, 2]), Value::int_orset([3])]);
        assert_eq!(v.infer_type().unwrap(), Type::set(Type::orset(Type::Int)));
    }

    #[test]
    fn infer_type_rejects_heterogeneous_collections() {
        let v = Value::set([Value::Int(1), Value::Bool(true)]);
        assert!(v.infer_type().is_err());
    }

    #[test]
    fn bagged_and_setted_round_trip() {
        let v = Value::set([Value::int_orset([1, 2]), Value::int_orset([2, 3])]);
        let d = v.to_bagged();
        assert!(d.contains_bag());
        assert_eq!(d.to_setted(), v);
    }

    #[test]
    fn empty_orset_detection() {
        let v = Value::set([Value::int_orset([1]), Value::empty_orset()]);
        assert!(v.contains_empty_orset());
        let w = Value::set([Value::int_orset([1])]);
        assert!(!w.contains_empty_orset());
    }

    #[test]
    fn display_uses_paper_notation() {
        let v = Value::pair(Value::int_set([1, 2]), Value::int_orset([3]));
        assert_eq!(v.to_string(), "({1, 2}, <3>)");
    }

    #[test]
    fn subobjects_includes_everything() {
        let v = Value::pair(Value::int_set([1, 2]), Value::Int(3));
        let subs = v.subobjects();
        assert_eq!(subs.len(), 5); // pair, set, 1, 2, 3
    }

    #[test]
    fn has_type_for_empty_collections() {
        assert!(Value::empty_set().has_type(&Type::set(Type::Int)));
        assert!(Value::empty_orset().has_type(&Type::orset(Type::prod(Type::Int, Type::Bool))));
    }
}
