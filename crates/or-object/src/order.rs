//! Orders on complex objects: the Hoare, Smyth and Plotkin orderings and the
//! structural "more informative than" relation of Section 3.
//!
//! For a poset `(X, ≤)` and finite subsets `A, B ⊆ X`:
//!
//! * Hoare order: `A ⊑♭ B  iff  ∀a∈A ∃b∈B. a ≤ b`
//! * Smyth order: `A ⊑♯ B  iff  (∀b∈B ∃a∈A. a ≤ b) ∧ (B=∅ ⇒ A=∅)`
//! * Plotkin (Egli–Milner) order: `A ⊑♮ B  iff  A ⊑♭ B ∧ A ⊑♯ B`
//!
//! The paper orders values of set types by the Hoare order and values of
//! or-set types by the Smyth order; the extra clause on the Smyth order makes
//! the empty or-set (inconsistency) incomparable with every non-empty or-set.

use crate::base_order::BaseOrder;
use crate::value::Value;

/// Hoare order on finite subsets of a poset, parameterized by the element
/// order `leq`.
pub fn hoare<T, F>(a: &[T], b: &[T], mut leq: F) -> bool
where
    F: FnMut(&T, &T) -> bool,
{
    a.iter().all(|x| b.iter().any(|y| leq(x, y)))
}

/// Smyth order on finite subsets of a poset (with the paper's convention
/// that the empty set is only below itself).
pub fn smyth<T, F>(a: &[T], b: &[T], mut leq: F) -> bool
where
    F: FnMut(&T, &T) -> bool,
{
    if b.is_empty() {
        return a.is_empty();
    }
    b.iter().all(|y| a.iter().any(|x| leq(x, y)))
}

/// Plotkin (Egli–Milner) order: the conjunction of the Hoare and Smyth
/// orders (written `⊑♮` in the proofs of Propositions 3.1/3.2).
pub fn plotkin<T, F>(a: &[T], b: &[T], mut leq: F) -> bool
where
    F: FnMut(&T, &T) -> bool,
{
    hoare(a, b, &mut leq) && smyth(a, b, &mut leq)
}

/// The structural order on complex objects induced by a base order:
///
/// * base values are compared with the base order;
/// * pairs componentwise;
/// * sets by the Hoare order on their elements;
/// * or-sets by the Smyth order on their elements;
/// * bags by the Hoare order on their element lists (bags only appear inside
///   the normalization machinery and this case exists for completeness).
///
/// Objects of structurally different shapes are incomparable.
pub fn object_leq(base: BaseOrder, x: &Value, y: &Value) -> bool {
    match (x, y) {
        _ if x.is_base() && y.is_base() => base.leq(x, y),
        (Value::Pair(a1, b1), Value::Pair(a2, b2)) => {
            object_leq(base, a1, a2) && object_leq(base, b1, b2)
        }
        (Value::Set(a), Value::Set(b)) | (Value::Bag(a), Value::Bag(b)) => {
            hoare(a, b, |u, v| object_leq(base, u, v))
        }
        (Value::OrSet(a), Value::OrSet(b)) => smyth(a, b, |u, v| object_leq(base, u, v)),
        _ => false,
    }
}

/// Strict structural order on objects.
pub fn object_lt(base: BaseOrder, x: &Value, y: &Value) -> bool {
    object_leq(base, x, y) && !object_leq(base, y, x)
}

/// Structural equivalence under the order (mutual `⊑`).  With the plain set
/// semantics two distinct canonical values can be order-equivalent (e.g.
/// `{null, 1}` and `{1}` under the flat order); the antichain semantics of
/// [`crate::antichain`] removes this slack.
pub fn object_equiv(base: BaseOrder, x: &Value, y: &Value) -> bool {
    object_leq(base, x, y) && object_leq(base, y, x)
}

/// Are `x` and `y` comparable under the structural order?
pub fn comparable(base: BaseOrder, x: &Value, y: &Value) -> bool {
    object_leq(base, x, y) || object_leq(base, y, x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leq_i64(a: &i64, b: &i64) -> bool {
        a <= b
    }

    #[test]
    fn hoare_on_totally_unordered_elements_is_subset() {
        let eq = |a: &i64, b: &i64| a == b;
        assert!(hoare(&[1, 2], &[1, 2, 3], eq));
        assert!(!hoare(&[1, 4], &[1, 2, 3], eq));
        assert!(hoare(&[], &[1], eq));
        assert!(hoare::<i64, _>(&[], &[], eq));
    }

    #[test]
    fn smyth_on_totally_unordered_elements_is_superset_on_nonempty() {
        let eq = |a: &i64, b: &i64| a == b;
        assert!(smyth(&[1, 2, 3], &[1, 2], eq));
        assert!(!smyth(&[1, 2], &[1, 2, 3], eq));
        // the empty or-set is only related to itself
        assert!(!smyth(&[1], &[], eq));
        assert!(!smyth(&[], &[1], eq));
        assert!(smyth::<i64, _>(&[], &[], eq));
    }

    #[test]
    fn plotkin_is_conjunction() {
        assert!(plotkin(&[1, 3], &[2, 4], leq_i64));
        assert!(!plotkin(&[1], &[0, 2], leq_i64)); // smyth fails for 0
        assert!(!plotkin(&[1, 5], &[2], |a, b| a <= b)); // hoare fails for 5
    }

    #[test]
    fn record_example_from_the_paper() {
        // [Name => null, Office => "515"]  ⊑  [Name => "Joe", Office => "515"]
        let base = BaseOrder::FlatWithNull;
        let partial = Value::pair(Value::Null, Value::str("515"));
        let full = Value::pair(Value::str("Joe"), Value::str("515"));
        assert!(object_leq(base, &partial, &full));
        assert!(!object_leq(base, &full, &partial));
    }

    #[test]
    fn sets_grow_more_informative_by_adding_elements() {
        let base = BaseOrder::FlatWithNull;
        let a = Value::int_set([1]);
        let b = Value::int_set([1, 2]);
        assert!(object_leq(base, &a, &b));
        assert!(!object_leq(base, &b, &a));
    }

    #[test]
    fn orsets_grow_more_informative_by_removing_elements() {
        let base = BaseOrder::FlatWithNull;
        let a = Value::int_orset([1, 2, 3]);
        let b = Value::int_orset([1, 2]);
        assert!(object_leq(base, &a, &b));
        assert!(!object_leq(base, &b, &a));
    }

    #[test]
    fn empty_orset_is_incomparable_with_nonempty() {
        let base = BaseOrder::FlatWithNull;
        let empty = Value::empty_orset();
        let one = Value::int_orset([1]);
        assert!(!object_leq(base, &empty, &one));
        assert!(!object_leq(base, &one, &empty));
        assert!(object_leq(base, &empty, &empty));
    }

    #[test]
    fn empty_set_is_below_every_set() {
        let base = BaseOrder::FlatWithNull;
        let empty = Value::empty_set();
        let one = Value::int_set([1]);
        assert!(object_leq(base, &empty, &one));
        assert!(!object_leq(base, &one, &empty));
    }

    #[test]
    fn shape_mismatch_is_incomparable() {
        let base = BaseOrder::FlatWithNull;
        assert!(!object_leq(
            base,
            &Value::int_set([1]),
            &Value::int_orset([1])
        ));
        assert!(!object_leq(base, &Value::Int(1), &Value::int_set([1])));
    }

    #[test]
    fn order_is_reflexive_and_transitive_on_samples() {
        let base = BaseOrder::NumericLeq;
        let xs = [
            Value::int_orset([1, 2, 3]),
            Value::int_orset([2, 3]),
            Value::int_orset([3]),
            Value::int_set([1, 2]),
            Value::pair(Value::Int(1), Value::int_orset([4, 5])),
        ];
        for x in &xs {
            assert!(object_leq(base, x, x));
        }
        for x in &xs {
            for y in &xs {
                for z in &xs {
                    if object_leq(base, x, y) && object_leq(base, y, z) {
                        assert!(object_leq(base, x, z));
                    }
                }
            }
        }
    }

    #[test]
    fn nested_example_mixing_sets_and_orsets() {
        let base = BaseOrder::NumericLeq;
        // {<1,2>, <5>}  vs  {<2>, <5>, <7>}
        let a = Value::set([Value::int_orset([1, 2]), Value::int_orset([5])]);
        let b = Value::set([
            Value::int_orset([2]),
            Value::int_orset([5]),
            Value::int_orset([7]),
        ]);
        assert!(object_leq(base, &a, &b));
        assert!(!object_leq(base, &b, &a));
    }
}
