//! Hash-consing of complex objects.
//!
//! α-expansion materializes — in the worst case, exponentially — many
//! possible worlds that share almost all of their structure: two denotations
//! of `{(id, <a, b>), (id', <a, b>)}` differ in one chosen alternative and
//! agree everywhere else.  Representing every world as an owned
//! [`Value`] tree repeats that shared structure once per world, and
//! deduplicating worlds then costs a deep traversal per comparison.
//!
//! An [`Interner`] stores each distinct sub-object **once** and names it by a
//! dense [`InternId`].  Structural equality of interned objects is id
//! equality — O(1) — and hashing an id is hashing a `u32`.  Interning is
//! canonical: two [`Value`]s are structurally equal **iff** they intern to
//! the same id (values are canonical by construction — sets and or-sets
//! sorted and deduplicated — and interning proceeds bottom-up, so equal
//! children always resolve to equal ids).
//!
//! ## The arena lifecycle
//!
//! The arena is the physical engine's **row currency**: a query interns its
//! inputs once, every operator (filter, project, join probe, union, flatten,
//! α-expansion, streaming dedup) computes on `u32`-sized ids, and values are
//! re-materialized ([`Interner::decode`]) exactly once, at the result
//! boundary.  Three lifetimes occur in practice:
//!
//! 1. **per-operator scratch** — an `OrExpand` operator's worlds share
//!    sub-structure across rows and dedup as a `HashSet<InternId>`;
//! 2. **per-query arena** — the executor interns the input relations and
//!    pre-interns plan constants, then every downstream operation is
//!    id-width work;
//! 3. **cross-query (session / relation) arena** — a frozen arena can serve
//!    as the shared **base** of per-query overlays
//!    ([`Interner::with_base`]): the base's ids stay valid and mean the same
//!    object in every overlay, so relations interned once (on `let`, or in
//!    `Relation`'s interned-rows cache) are never re-interned by later
//!    queries.  Overlays of a common base may diverge freely — each allocates
//!    its own ids above the base — and are discarded when the query ends.
//!
//! ## Canonical order without trees
//!
//! The executor's merge step (sort + dedup) and the canonical collection
//! constructors need the **order** of the underlying values, not just
//! equality.  [`Interner::cmp`] compares structurally (with id
//! short-circuiting); for bulk sorts, [`Interner::rank_table`] lazily
//! computes an id→rank permutation of the whole arena (cached until the
//! arena grows) so that sorting result ids is a `u32`-key sort
//! ([`Interner::sort_ids`] picks whichever is cheaper).
//!
//! ## When decode happens
//!
//! [`Interner::decode`] is the **only** sanctioned way to turn engine ids
//! back into [`Value`]s; it counts each materialization
//! ([`Interner::decode_count`]), and the engine surfaces the counter through
//! its `ExecStats` so tests can assert the "at most one decode per result
//! row" discipline.  [`Interner::value`] is the raw uncounted reconstruction
//! kept for error paths and tests.

use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

use crate::value::Value;

/// FNV-1a, a tiny non-cryptographic hasher.  Interning hashes very small
/// keys (a discriminant plus a few 4-byte ids) at very high rates, where the
/// default SipHash's per-call setup dominates; FNV-1a is a multiply-xor per
/// byte with no setup at all.
#[derive(Debug, Default, Clone)]
pub struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = if self.0 == 0 {
            0xCBF2_9CE4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        self.0 = h;
    }
}

/// `BuildHasher` for [`FnvHasher`].
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// A hash set of [`InternId`]s using the fast hasher — the recommended
/// container for streaming world dedup.
pub type IdSet = HashSet<InternId, FnvBuildHasher>;

static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

/// A reference to an interned object inside an [`Interner`].
///
/// Ids are only meaningful relative to the interner that produced them (or
/// any overlay chained on top of it via [`Interner::with_base`]).  Within
/// one such chain, `a == b` iff the interned objects are structurally
/// equal, and `Hash` hashes the raw index — this is what makes interned
/// dedup O(1) per world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InternId(u32);

impl InternId {
    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One interned node: the shape of a [`Value`] with children replaced by
/// [`InternId`]s.  Collection children are kept in the canonical (value)
/// order of the objects they name, mirroring the canonical representation of
/// [`Value`] itself.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Node {
    /// `()`.
    Unit,
    /// A boolean constant.
    Bool(bool),
    /// An integer constant.
    Int(i64),
    /// A string constant.
    Str(String),
    /// The Codd-style null.
    Null,
    /// A pair of interned objects.
    Pair(InternId, InternId),
    /// A set (children in canonical value order, deduplicated).
    Set(Box<[InternId]>),
    /// An or-set (children in canonical value order, deduplicated).
    OrSet(Box<[InternId]>),
    /// A bag (children in canonical value order, duplicates kept).
    Bag(Box<[InternId]>),
}

/// One step of a tuple-field path: records are right-nested [`Node::Pair`]
/// spines, so "the `k`-th field" is `Snd^k` followed by `Fst` (or a final
/// `Snd` for the last field).  Column views ([`Interner::gather_path`]) and
/// the engine's columnar kernels address fields by these paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Field {
    /// The first component of a pair (`Proj1`).
    Fst,
    /// The second component of a pair (`Proj2`).
    Snd,
}

/// A hash-consing arena for complex objects.
///
/// Nodes live **once**, in `nodes`; the lookup index is a flat
/// open-addressing table of ids (`u32::MAX` = empty slot) probed linearly by
/// node hash, with equality resolved against the arena itself.  A wide
/// world-set node is therefore never duplicated as a map key, and inserting
/// a node costs no allocation beyond the `nodes` push.
///
/// An arena may be an **overlay** over a frozen base
/// ([`Interner::with_base`]): lookups consult the base chain first, so an
/// object already interned below always resolves to its base id, and new
/// objects get ids above `base_len`.  The base is never mutated — overlays
/// of a shared base are independent and may live on different threads.
#[derive(Debug)]
pub struct Interner {
    /// Frozen ancestor arena (`None` for a root arena).
    base: Option<Arc<Interner>>,
    /// Total number of nodes in the base chain (0 for a root arena); local
    /// node `i` has the global id `base_len + i`.
    base_len: usize,
    nodes: Vec<Node>,
    /// FNV hash of each local node, parallel to `nodes` (used to re-place
    /// entries when the table grows).
    hashes: Vec<u64>,
    /// Open-addressing index of the **local** nodes; always a power-of-two
    /// length.  Each occupied slot packs the hash's top 32 bits (a
    /// fingerprint, rejected without touching `nodes`) with the global id:
    /// probes stay inside this one cache-friendly array until a
    /// fingerprint matches.
    table: Vec<u64>,
    token: u64,
    /// Lazily built id→rank permutation realizing the canonical order over
    /// the whole chain; valid while `ranks.len() == self.len()`.
    ranks: Vec<u32>,
    /// How many [`Value`]s this arena has materialized via
    /// [`Interner::decode`].
    decodes: u64,
}

const EMPTY_SLOT: u64 = u64::MAX;

/// Pack a table entry: hash fingerprint (top 32 bits) next to the global
/// id.  `id != u32::MAX` (asserted at insert), so no entry collides with
/// [`EMPTY_SLOT`].
fn slot_entry(hash: u64, id: u32) -> u64 {
    (hash & 0xFFFF_FFFF_0000_0000) | u64::from(id)
}

impl Clone for Interner {
    fn clone(&self) -> Interner {
        Interner {
            base: self.base.clone(),
            base_len: self.base_len,
            nodes: self.nodes.clone(),
            hashes: self.hashes.clone(),
            table: self.table.clone(),
            // a clone can diverge from the original, so it gets a fresh
            // token: memoized ids from one are never replayed on the other
            token: NEXT_TOKEN.fetch_add(1, AtomicOrdering::Relaxed),
            ranks: self.ranks.clone(),
            decodes: self.decodes,
        }
    }
}

impl Default for Interner {
    fn default() -> Interner {
        Interner::new()
    }
}

impl Interner {
    /// An empty arena.
    pub fn new() -> Interner {
        Interner {
            base: None,
            base_len: 0,
            nodes: Vec::new(),
            hashes: Vec::new(),
            table: vec![EMPTY_SLOT; 64],
            token: NEXT_TOKEN.fetch_add(1, AtomicOrdering::Relaxed),
            ranks: Vec::new(),
            decodes: 0,
        }
    }

    /// An overlay arena on a frozen base: every id of `base` (and of its own
    /// bases, recursively) remains valid and names the same object, and new
    /// objects are interned locally.  Overlays are cheap (no node copying)
    /// and independent — the parallel executor gives each worker its own
    /// overlay of the query's shared base arena.
    pub fn with_base(base: Arc<Interner>) -> Interner {
        let base_len = base.len();
        Interner {
            base: Some(base),
            base_len,
            nodes: Vec::new(),
            hashes: Vec::new(),
            table: vec![EMPTY_SLOT; 64],
            token: NEXT_TOKEN.fetch_add(1, AtomicOrdering::Relaxed),
            ranks: Vec::new(),
            decodes: 0,
        }
    }

    /// A process-unique token identifying this arena instance.  Caches that
    /// store [`InternId`]s alongside results (e.g. the lazy normalizer's
    /// constant-subtree memo) key them by this token, so an id from one
    /// arena is never replayed against another.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Number of distinct interned nodes reachable through this arena
    /// (its own plus the whole base chain).
    pub fn len(&self) -> usize {
        self.base_len + self.nodes.len()
    }

    /// Is the arena (including its base chain) empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many [`Value`] materializations [`Interner::decode`] has
    /// performed.
    pub fn decode_count(&self) -> u64 {
        self.decodes
    }

    /// Look up the node an id names.
    pub fn node(&self, id: InternId) -> &Node {
        let idx = id.index();
        if idx < self.base_len {
            self.base
                .as_ref()
                .expect("non-zero base_len implies a base")
                .node(id)
        } else {
            &self.nodes[idx - self.base_len]
        }
    }

    /// Probe this level's local table for `node`.
    fn find_local(&self, hash: u64, node: &Node) -> Option<InternId> {
        let mask = self.table.len() - 1;
        let fingerprint = hash & 0xFFFF_FFFF_0000_0000;
        let mut slot = (hash as usize) & mask;
        loop {
            let entry = self.table[slot];
            if entry == EMPTY_SLOT {
                return None;
            }
            if entry & 0xFFFF_FFFF_0000_0000 == fingerprint {
                let id = entry as u32;
                if self.nodes[id as usize - self.base_len] == *node {
                    return Some(InternId(id));
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Can `node` possibly live in the base chain?  A composite node
    /// referencing any **locally** interned child cannot: frozen base
    /// nodes only reference base ids.  Skipping the base probe for such
    /// nodes keeps the hot construction path (new pairs/worlds built
    /// during execution) inside the small local table.
    fn could_be_in_base(&self, node: &Node) -> bool {
        if self.base_len == 0 {
            return false;
        }
        let local = |id: &InternId| id.index() >= self.base_len;
        match node {
            Node::Pair(a, b) => !local(a) && !local(b),
            Node::Set(xs) | Node::OrSet(xs) | Node::Bag(xs) => !xs.iter().any(local),
            _ => true,
        }
    }

    /// Probe the whole chain.  The local level goes first (it is small and
    /// hot — streaming dedup hits it on every repeated world), then the
    /// frozen base levels; a node is only ever stored at one level, so the
    /// order does not affect the answer.
    fn find(&self, hash: u64, node: &Node) -> Option<InternId> {
        if let Some(id) = self.find_local(hash, node) {
            return Some(id);
        }
        if self.could_be_in_base(node) {
            let mut level = self.base.as_deref();
            while let Some(arena) = level {
                if let Some(id) = arena.find_local(hash, node) {
                    return Some(id);
                }
                level = arena.base.as_deref();
            }
        }
        None
    }

    fn insert(&mut self, node: Node) -> InternId {
        let hash = Self::node_hash(&node);
        if let Some(id) = self.find(hash, &node) {
            return id;
        }
        let raw = u32::try_from(self.len()).expect("intern arena overflow");
        assert_ne!(raw, u32::MAX, "intern arena overflow");
        // find() left no slot cursor behind (the chain was probed); re-probe
        // the local table for the insertion slot.
        let mask = self.table.len() - 1;
        let mut slot = (hash as usize) & mask;
        while self.table[slot] != EMPTY_SLOT {
            slot = (slot + 1) & mask;
        }
        self.nodes.push(node);
        self.hashes.push(hash);
        self.table[slot] = slot_entry(hash, raw);
        // grow at 75% load so probe chains stay short
        if self.nodes.len() * 4 >= self.table.len() * 3 {
            self.grow_table();
        }
        InternId(raw)
    }

    fn node_hash(node: &Node) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = FnvHasher::default();
        node.hash(&mut h);
        h.finish()
    }

    fn grow_table(&mut self) {
        let new_len = self.table.len() * 2;
        let mask = new_len - 1;
        let mut table = vec![EMPTY_SLOT; new_len];
        for (i, &hash) in self.hashes.iter().enumerate() {
            let mut slot = (hash as usize) & mask;
            while table[slot] != EMPTY_SLOT {
                slot = (slot + 1) & mask;
            }
            table[slot] = slot_entry(hash, (self.base_len + i) as u32);
        }
        self.table = table;
    }

    /// Intern a (canonical) value, bottom-up.  Equal values always produce
    /// equal ids.
    pub fn intern(&mut self, v: &Value) -> InternId {
        match v {
            Value::Unit => self.insert(Node::Unit),
            Value::Bool(b) => self.insert(Node::Bool(*b)),
            Value::Int(i) => self.insert(Node::Int(*i)),
            Value::Str(s) => self.insert(Node::Str(s.clone())),
            Value::Null => self.insert(Node::Null),
            Value::Pair(a, b) => {
                let ia = self.intern(a);
                let ib = self.intern(b);
                self.insert(Node::Pair(ia, ib))
            }
            Value::Set(items) => {
                let ids: Vec<InternId> = items.iter().map(|x| self.intern(x)).collect();
                // canonical values keep their children sorted already
                self.insert(Node::Set(ids.into_boxed_slice()))
            }
            Value::OrSet(items) => {
                let ids: Vec<InternId> = items.iter().map(|x| self.intern(x)).collect();
                self.insert(Node::OrSet(ids.into_boxed_slice()))
            }
            Value::Bag(items) => {
                let ids: Vec<InternId> = items.iter().map(|x| self.intern(x)).collect();
                self.insert(Node::Bag(ids.into_boxed_slice()))
            }
        }
    }

    /// Intern a boolean (the per-row result currency of interned
    /// predicates).
    pub fn bool(&mut self, b: bool) -> InternId {
        self.insert(Node::Bool(b))
    }

    /// Intern an integer.
    pub fn int(&mut self, i: i64) -> InternId {
        self.insert(Node::Int(i))
    }

    /// Intern the unit value.
    pub fn unit(&mut self) -> InternId {
        self.insert(Node::Unit)
    }

    /// Intern a pair from already-interned components.
    pub fn pair(&mut self, a: InternId, b: InternId) -> InternId {
        self.insert(Node::Pair(a, b))
    }

    /// Intern a set from already-interned element ids.  The ids are sorted
    /// into canonical value order and deduplicated, mirroring [`Value::set`].
    pub fn set(&mut self, mut ids: Vec<InternId>) -> InternId {
        self.canonicalize(&mut ids, true);
        self.insert(Node::Set(ids.into_boxed_slice()))
    }

    /// Intern an or-set from already-interned element ids (sorted,
    /// deduplicated), mirroring [`Value::orset`].
    pub fn orset(&mut self, mut ids: Vec<InternId>) -> InternId {
        self.canonicalize(&mut ids, true);
        self.insert(Node::OrSet(ids.into_boxed_slice()))
    }

    /// Intern a bag from already-interned element ids (sorted, duplicates
    /// kept), mirroring [`Value::bag`].
    pub fn bag(&mut self, mut ids: Vec<InternId>) -> InternId {
        self.canonicalize(&mut ids, false);
        self.insert(Node::Bag(ids.into_boxed_slice()))
    }

    fn canonicalize(&self, ids: &mut Vec<InternId>, dedup: bool) {
        // sorted inputs (the common case: children of canonical nodes) are
        // detected in O(n) by the sort itself; ranks are not consulted here
        // because constructors run while the arena is still growing
        ids.sort_by(|&a, &b| self.cmp(a, b));
        if dedup {
            ids.dedup(); // equal values have equal ids
        }
    }

    /// Compare two interned objects in the same order as
    /// [`Value`]'s derived `Ord`.  Equal ids short-circuit, and shared
    /// sub-structure keeps the recursion shallow in practice.  When the
    /// cached rank table is current, the comparison is a `u32` comparison.
    pub fn cmp(&self, a: InternId, b: InternId) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        if a == b {
            return Ordering::Equal;
        }
        if self.ranks.len() == self.len() {
            return self.ranks[a.index()].cmp(&self.ranks[b.index()]);
        }
        self.cmp_structural(a, b)
    }

    fn cmp_structural(&self, a: InternId, b: InternId) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        if a == b {
            return Ordering::Equal;
        }
        let rank = variant_rank;
        let (na, nb) = (self.node(a), self.node(b));
        match (na, nb) {
            (Node::Bool(x), Node::Bool(y)) => x.cmp(y),
            (Node::Int(x), Node::Int(y)) => x.cmp(y),
            (Node::Str(x), Node::Str(y)) => x.cmp(y),
            (Node::Pair(a1, a2), Node::Pair(b1, b2)) => self
                .cmp_structural(*a1, *b1)
                .then_with(|| self.cmp_structural(*a2, *b2)),
            (Node::Set(xs), Node::Set(ys))
            | (Node::OrSet(xs), Node::OrSet(ys))
            | (Node::Bag(xs), Node::Bag(ys)) => {
                for (x, y) in xs.iter().zip(ys.iter()) {
                    let ord = self.cmp_structural(*x, *y);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                xs.len().cmp(&ys.len())
            }
            _ => rank(na).cmp(&rank(nb)),
        }
    }

    /// Compare an object of `self` against an object of a **sibling**
    /// arena, in [`Value`]'s canonical order.
    ///
    /// Both arenas must overlay (a chain over) one shared frozen base, and
    /// `shared_len` is that base's [`Interner::len`]: an id below
    /// `shared_len` names the same object in both arenas, so equal ids in
    /// the shared region short-circuit to `Equal` without a walk — the same
    /// trick [`Interner::cmp`] plays within one arena.  Ids at or above
    /// `shared_len` are overlay-local: the *same* numeric id may name
    /// *different* objects in the two arenas, so they are always compared
    /// structurally, each side resolved in its own arena.
    ///
    /// This is what lets the parallel executor merge per-worker sorted id
    /// runs without decoding them: worker overlays diverge above the query
    /// arena's freeze point, and `cmp_across` is the comparison under which
    /// those runs are still mutually ordered.
    pub fn cmp_across(
        &self,
        a: InternId,
        other: &Interner,
        b: InternId,
        shared_len: usize,
    ) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        if a == b && a.index() < shared_len {
            return Ordering::Equal;
        }
        let (na, nb) = (self.node(a), other.node(b));
        match (na, nb) {
            (Node::Bool(x), Node::Bool(y)) => x.cmp(y),
            (Node::Int(x), Node::Int(y)) => x.cmp(y),
            (Node::Str(x), Node::Str(y)) => x.cmp(y),
            (Node::Pair(a1, a2), Node::Pair(b1, b2)) => self
                .cmp_across(*a1, other, *b1, shared_len)
                .then_with(|| self.cmp_across(*a2, other, *b2, shared_len)),
            (Node::Set(xs), Node::Set(ys))
            | (Node::OrSet(xs), Node::OrSet(ys))
            | (Node::Bag(xs), Node::Bag(ys)) => {
                for (x, y) in xs.iter().zip(ys.iter()) {
                    let ord = self.cmp_across(*x, other, *y, shared_len);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                xs.len().cmp(&ys.len())
            }
            _ => variant_rank(na).cmp(&variant_rank(nb)),
        }
    }

    /// The id→rank permutation realizing the canonical order over every
    /// currently interned object: `rank_table()[a] < rank_table()[b]` iff
    /// the object `a` names sorts strictly before the object `b` names.
    ///
    /// Built lazily (one structural sort of the whole arena) and cached
    /// until the arena grows; once built, [`Interner::cmp`] and
    /// [`Interner::sort_ids`] become `u32`-key operations.
    pub fn rank_table(&mut self) -> &[u32] {
        if self.ranks.len() != self.len() {
            let total = self.len();
            let mut order: Vec<u32> = (0..total as u32).collect();
            {
                let this = &*self;
                order.sort_unstable_by(|&a, &b| this.cmp_structural(InternId(a), InternId(b)));
            }
            let mut ranks = vec![0u32; total];
            for (rank, &id) in order.iter().enumerate() {
                ranks[id as usize] = rank as u32;
            }
            self.ranks = ranks;
        }
        &self.ranks
    }

    /// Sort ids into canonical value order (ascending), so that a
    /// subsequent `dedup()` removes exactly the structural duplicates.
    ///
    /// Uses the cached rank table when it is current (then the sort is a
    /// `u32`-key sort); otherwise an O(n) pre-check recognizes
    /// already-ordered streams — the common case for pipelines over sorted
    /// relations, whose row-local operators preserve the driving order —
    /// and falls back to a structural sort of just these ids (shared
    /// sub-structure and id short-circuiting keep each comparison
    /// shallow).  The whole-arena rank permutation is **not** built here:
    /// ranking every node to sort one result set costs more than it saves;
    /// long-lived arenas that sort repeatedly opt in via
    /// [`Interner::rank_table`].
    pub fn sort_ids(&mut self, ids: &mut [InternId]) {
        use std::cmp::Ordering;
        if ids.len() <= 1 {
            return;
        }
        if self.ranks.len() == self.len() {
            let ranks = &self.ranks;
            ids.sort_unstable_by_key(|id| ranks[id.index()]);
            return;
        }
        if ids
            .windows(2)
            .all(|w| self.cmp_structural(w[0], w[1]) != Ordering::Greater)
        {
            return;
        }
        ids.sort_unstable_by(|&a, &b| self.cmp_structural(a, b));
    }

    /// Follow a [`Field`] path through pair spines: `project_path(id,
    /// [Snd, Fst])` is the id of `fst(snd(x))`.  `None` when any node along
    /// the way is not a [`Node::Pair`] — the caller decides whether that is
    /// a type error (scalar fallback) or impossible (typed plans).
    pub fn project_path(&self, id: InternId, path: &[Field]) -> Option<InternId> {
        let mut at = id;
        for step in path {
            match self.node(at) {
                Node::Pair(a, b) => at = if *step == Field::Fst { *a } else { *b },
                _ => return None,
            }
        }
        Some(at)
    }

    /// A typed **column view** over interned tuple rows: resolve the field
    /// at `path` for every row into `out` (cleared first).  This is the
    /// columnar engine's resolve step — one pass of pair-spine walks per
    /// column, after which the kernels work on plain id slices with no
    /// arena probes.  `Err(i)` reports the first row whose shape does not
    /// match (row `i` is not a pair spine deep enough for `path`).
    pub fn gather_path(
        &self,
        rows: &[InternId],
        path: &[Field],
        out: &mut Vec<InternId>,
    ) -> Result<(), usize> {
        out.clear();
        out.reserve(rows.len());
        for (i, &row) in rows.iter().enumerate() {
            match self.project_path(row, path) {
                Some(id) => out.push(id),
                None => return Err(i),
            }
        }
        Ok(())
    }

    /// Resolve a column of ids to its integer values (the typed view behind
    /// columnar comparison kernels).  `Err(i)` reports the first id that is
    /// not a [`Node::Int`].
    pub fn resolve_ints(&self, ids: &[InternId], out: &mut Vec<i64>) -> Result<(), usize> {
        out.clear();
        out.reserve(ids.len());
        for (i, &id) in ids.iter().enumerate() {
            match self.node(id) {
                Node::Int(v) => out.push(*v),
                _ => return Err(i),
            }
        }
        Ok(())
    }

    /// Reconstruct the [`Value`] an id names, **counting** the
    /// materialization (see [`Interner::decode_count`]).  This is the
    /// engine's result-boundary export; everything before it stays
    /// id-width.
    pub fn decode(&mut self, id: InternId) -> Value {
        self.decodes += 1;
        self.value(id)
    }

    /// Reconstruct the [`Value`] an id names (uncounted; prefer
    /// [`Interner::decode`] in engine code so the decode discipline stays
    /// observable).
    pub fn value(&self, id: InternId) -> Value {
        match self.node(id) {
            Node::Unit => Value::Unit,
            Node::Bool(b) => Value::Bool(*b),
            Node::Int(i) => Value::Int(*i),
            Node::Str(s) => Value::Str(s.clone()),
            Node::Null => Value::Null,
            Node::Pair(a, b) => Value::Pair(Box::new(self.value(*a)), Box::new(self.value(*b))),
            // children are already canonical, so rebuild without re-sorting
            Node::Set(ids) => Value::Set(ids.iter().map(|&i| self.value(i)).collect()),
            Node::OrSet(ids) => Value::OrSet(ids.iter().map(|&i| self.value(i)).collect()),
            Node::Bag(ids) => Value::Bag(ids.iter().map(|&i| self.value(i)).collect()),
        }
    }
}

/// Variant order of [`Node`], matching the declaration order of `Value`'s
/// variants (which derived `Ord` compares first).
fn variant_rank(n: &Node) -> u8 {
    match n {
        Node::Unit => 0,
        Node::Bool(_) => 1,
        Node::Int(_) => 2,
        Node::Str(_) => 3,
        Node::Null => 4,
        Node::Pair(..) => 5,
        Node::Set(_) => 6,
        Node::OrSet(_) => 7,
        Node::Bag(_) => 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{GenConfig, Generator};

    #[test]
    fn column_views_gather_tuple_fields() {
        let mut arena = Interner::new();
        // (id, (cost, tag)) records: three-field right-nested spines
        let rows: Vec<InternId> = (0..10i64)
            .map(|i| {
                arena.intern(&Value::pair(
                    Value::Int(i),
                    Value::pair(Value::Int(i * 7), Value::Int(i % 3)),
                ))
            })
            .collect();
        let mut col = Vec::new();
        arena
            .gather_path(&rows, &[Field::Snd, Field::Fst], &mut col)
            .expect("rows are deep enough");
        let mut ints = Vec::new();
        arena.resolve_ints(&col, &mut ints).expect("costs are ints");
        assert_eq!(ints, (0..10i64).map(|i| i * 7).collect::<Vec<_>>());
        // the empty path is the row itself
        arena.gather_path(&rows, &[], &mut col).expect("identity");
        assert_eq!(col, rows);
        // a path through a non-pair reports the offending row index
        let flat = arena.intern(&Value::Int(1));
        let mixed = [rows[0], flat];
        assert_eq!(arena.gather_path(&mixed, &[Field::Fst], &mut col), Err(1));
        // and ints that aren't ints report theirs
        let b = arena.intern(&Value::Bool(true));
        let mut out = Vec::new();
        assert_eq!(arena.resolve_ints(&[flat, b], &mut out), Err(1));
    }

    #[test]
    fn equal_values_intern_to_equal_ids() {
        let mut arena = Interner::new();
        let a = Value::set([Value::int_orset([3, 1]), Value::int_orset([2])]);
        let b = Value::set([Value::int_orset([1, 3]), Value::int_orset([2])]);
        assert_eq!(arena.intern(&a), arena.intern(&b));
        let c = Value::set([Value::int_orset([1, 3])]);
        assert_ne!(arena.intern(&a), arena.intern(&c));
    }

    #[test]
    fn value_round_trips() {
        let mut arena = Interner::new();
        let config = GenConfig {
            max_depth: 4,
            max_width: 3,
            ..GenConfig::default()
        };
        let mut gen = Generator::new(7, config);
        for _ in 0..50 {
            let (_, v) = gen.typed_object();
            let id = arena.intern(&v);
            assert_eq!(arena.value(id), v);
            // interning the round-tripped value is stable
            assert_eq!(arena.intern(&arena.value(id)), id);
        }
    }

    #[test]
    fn cmp_matches_value_order() {
        let mut arena = Interner::new();
        let config = GenConfig {
            max_depth: 3,
            max_width: 3,
            ..GenConfig::default()
        };
        let mut gen = Generator::new(11, config);
        let values: Vec<Value> = (0..30).map(|_| gen.typed_object().1).collect();
        for x in &values {
            for y in &values {
                let ix = arena.intern(x);
                let iy = arena.intern(y);
                assert_eq!(arena.cmp(ix, iy), x.cmp(y), "cmp disagrees on {x} vs {y}");
            }
        }
    }

    #[test]
    fn rank_table_agrees_with_value_order_on_generated_values() {
        // the satellite contract: the id→rank canonical Ord agrees with
        // Value::cmp on ~1k generated values
        let mut arena = Interner::new();
        let config = GenConfig {
            max_depth: 3,
            max_width: 3,
            ..GenConfig::default()
        };
        let mut gen = Generator::new(2026, config);
        let values: Vec<Value> = (0..1000).map(|_| gen.typed_object().1).collect();
        let ids: Vec<InternId> = values.iter().map(|v| arena.intern(v)).collect();
        let ranks = arena.rank_table().to_vec();
        for (x, &ix) in values.iter().zip(&ids) {
            for (y, &iy) in values.iter().zip(&ids).take(40) {
                assert_eq!(
                    ranks[ix.index()].cmp(&ranks[iy.index()]),
                    x.cmp(y),
                    "rank order disagrees with Value::cmp on {x} vs {y}"
                );
            }
        }
        // ranked cmp is served through cmp() once the table is fresh
        for (x, &ix) in values.iter().zip(&ids).take(100) {
            for (y, &iy) in values.iter().zip(&ids).take(100) {
                assert_eq!(arena.cmp(ix, iy), x.cmp(y));
            }
        }
    }

    #[test]
    fn sort_ids_realizes_the_canonical_order_on_both_paths() {
        let mut arena = Interner::new();
        let config = GenConfig {
            max_depth: 3,
            max_width: 2,
            ..GenConfig::default()
        };
        let mut gen = Generator::new(3, config);
        let mut values: Vec<Value> = (0..200).map(|_| gen.typed_object().1).collect();
        let mut small: Vec<InternId> = values.iter().take(10).map(|v| arena.intern(v)).collect();
        // small sort: structural path (no rank table built)
        arena.sort_ids(&mut small);
        let sorted_small: Vec<Value> = small.iter().map(|&i| arena.value(i)).collect();
        assert!(sorted_small.windows(2).all(|w| w[0] <= w[1]));
        // large sort: rank path
        let mut ids: Vec<InternId> = values.iter().map(|v| arena.intern(v)).collect();
        arena.sort_ids(&mut ids);
        ids.dedup();
        let decoded: Vec<Value> = ids.iter().map(|&i| arena.value(i)).collect();
        values.sort();
        values.dedup();
        assert_eq!(decoded, values);
    }

    #[test]
    fn overlays_share_base_ids_and_diverge_locally() {
        let mut base = Interner::new();
        let shared = Value::pair(Value::Int(1), Value::int_orset([2, 3]));
        let shared_id = base.intern(&shared);
        let base = Arc::new(base);
        let mut left = Interner::with_base(base.clone());
        let mut right = Interner::with_base(base.clone());
        // base objects resolve to their base ids in every overlay
        assert_eq!(left.intern(&shared), shared_id);
        assert_eq!(right.intern(&shared), shared_id);
        // new objects get fresh local ids above the base
        let l = left.intern(&Value::str("left-only"));
        let r = right.intern(&Value::str("right-only"));
        assert!(l.index() >= base.len());
        assert!(r.index() >= base.len());
        // each overlay decodes its own and the base's objects
        assert_eq!(left.value(l), Value::str("left-only"));
        assert_eq!(right.value(r), Value::str("right-only"));
        assert_eq!(left.value(shared_id), shared);
        // a node referencing base children interns fine in the overlay
        let mixed = left.pair(shared_id, l);
        assert_eq!(
            left.value(mixed),
            Value::pair(shared.clone(), Value::str("left-only"))
        );
        // chains of overlays keep resolving base-first
        let frozen_left = Arc::new(left);
        let mut deep = Interner::with_base(frozen_left.clone());
        assert_eq!(deep.intern(&shared), shared_id);
        assert_eq!(deep.intern(&Value::str("left-only")), l);
        assert_eq!(deep.len(), frozen_left.len());
    }

    #[test]
    fn overlay_cmp_and_sort_span_the_chain() {
        let mut base = Interner::new();
        let a = base.intern(&Value::Int(5));
        let mut overlay = Interner::with_base(Arc::new(base));
        let b = overlay.intern(&Value::Int(2));
        let c = overlay.intern(&Value::Int(9));
        assert_eq!(overlay.cmp(b, a), std::cmp::Ordering::Less);
        let mut ids = vec![c, a, b];
        overlay.sort_ids(&mut ids);
        assert_eq!(ids, vec![b, a, c]);
        // rank table covers base and overlay ids
        let ranks = overlay.rank_table();
        assert!(ranks[b.index()] < ranks[a.index()]);
        assert!(ranks[a.index()] < ranks[c.index()]);
    }

    /// `cmp_across` orders sibling-overlay objects like `Value`'s `Ord`,
    /// and never confuses numerically equal overlay-local ids: the same id
    /// above the shared base names *different* objects in the two arenas.
    #[test]
    fn cmp_across_sibling_overlays_matches_value_order() {
        use std::cmp::Ordering;
        let mut base = Interner::new();
        let shared = base.intern(&Value::pair(Value::Int(1), Value::Int(2)));
        let shared_len = base.len();
        let base = Arc::new(base);
        let mut left = Interner::with_base(base.clone());
        let mut right = Interner::with_base(base.clone());
        // same numeric id in both overlays, different objects
        let l = left.intern(&Value::str("apple"));
        let r = right.intern(&Value::str("banana"));
        assert_eq!(l, r, "siblings allocate local ids independently");
        assert_eq!(left.cmp_across(l, &right, r, shared_len), Ordering::Less);
        assert_eq!(right.cmp_across(r, &left, l, shared_len), Ordering::Greater);
        // equal ids in the shared region short-circuit to Equal
        assert_eq!(
            left.cmp_across(shared, &right, shared, shared_len),
            Ordering::Equal
        );
        // structurally equal overlay-local objects compare Equal
        let lv = left.intern(&Value::int_set([7, 9]));
        let rv = right.intern(&Value::int_set([7, 9]));
        assert_eq!(left.cmp_across(lv, &right, rv, shared_len), Ordering::Equal);
        // mixed-region comparisons agree with the value order
        assert_eq!(
            left.cmp_across(shared, &right, rv, shared_len),
            base.value(shared).cmp(&Value::int_set([7, 9]))
        );
    }

    /// Exhaustive agreement between `cmp_across` and `Value`'s `Ord` over
    /// generated values split across two diverging overlays.
    #[test]
    fn cmp_across_agrees_with_value_ord_on_generated_values() {
        let mut base = Interner::new();
        base.intern(&Value::Int(0));
        base.intern(&Value::str("base"));
        let shared_len = base.len();
        let base = Arc::new(base);
        let mut left = Interner::with_base(base.clone());
        let mut right = Interner::with_base(base);
        let values: Vec<Value> = (0..20i64)
            .map(|i| match i % 4 {
                0 => Value::Int(i),
                1 => Value::pair(Value::Int(i), Value::str("base")),
                2 => Value::int_set([i, i + 1]),
                _ => Value::int_orset([i % 3, i]),
            })
            .collect();
        for x in &values {
            let ix = left.intern(x);
            for y in &values {
                let iy = right.intern(y);
                assert_eq!(
                    left.cmp_across(ix, &right, iy, shared_len),
                    x.cmp(y),
                    "cmp_across disagrees with Value::cmp on {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn decode_counts_materializations() {
        let mut arena = Interner::new();
        let id = arena.intern(&Value::int_set([1, 2, 3]));
        assert_eq!(arena.decode_count(), 0);
        let v = arena.decode(id);
        assert_eq!(v, Value::int_set([1, 2, 3]));
        assert_eq!(arena.decode_count(), 1);
        // value() stays uncounted (error paths, tests)
        let _ = arena.value(id);
        assert_eq!(arena.decode_count(), 1);
    }

    #[test]
    fn constructors_match_value_constructors() {
        let mut arena = Interner::new();
        let e1 = arena.intern(&Value::Int(5));
        let e2 = arena.intern(&Value::Int(1));
        let set_id = arena.set(vec![e1, e2, e1]);
        assert_eq!(arena.value(set_id), Value::int_set([1, 5]));
        let orset_id = arena.orset(vec![e1, e2]);
        assert_eq!(arena.value(orset_id), Value::int_orset([1, 5]));
        let bag_id = arena.bag(vec![e1, e2, e1]);
        assert_eq!(
            arena.value(bag_id),
            Value::bag([Value::Int(1), Value::Int(5), Value::Int(5)])
        );
        let pair_id = arena.pair(e1, e2);
        assert_eq!(
            arena.value(pair_id),
            Value::pair(Value::Int(5), Value::Int(1))
        );
        let t = arena.bool(true);
        let u = arena.unit();
        let i = arena.int(42);
        assert_eq!(arena.value(t), Value::Bool(true));
        assert_eq!(arena.value(u), Value::Unit);
        assert_eq!(arena.value(i), Value::Int(42));
    }

    #[test]
    fn sharing_keeps_the_arena_small() {
        let mut arena = Interner::new();
        // 100 sets over the same 5 leaves: the arena holds the leaves once
        for i in 0..100i64 {
            let v = Value::set([Value::Int(i % 5), Value::Int((i + 1) % 5)]);
            arena.intern(&v);
        }
        // 5 leaves + at most 5*5 distinct two-element sets
        assert!(arena.len() <= 5 + 25, "arena grew to {}", arena.len());
    }
}
