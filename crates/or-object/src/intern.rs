//! Hash-consing of complex objects.
//!
//! α-expansion materializes — in the worst case, exponentially — many
//! possible worlds that share almost all of their structure: two denotations
//! of `{(id, <a, b>), (id', <a, b>)}` differ in one chosen alternative and
//! agree everywhere else.  Representing every world as an owned
//! [`Value`] tree repeats that shared structure once per world, and
//! deduplicating worlds then costs a deep traversal per comparison.
//!
//! An [`Interner`] stores each distinct sub-object **once** and names it by a
//! dense [`InternId`].  Structural equality of interned objects is id
//! equality — O(1) — and hashing an id is hashing a `u32`.  Interning is
//! canonical: two [`Value`]s are structurally equal **iff** they intern to
//! the same id (values are canonical by construction — sets and or-sets
//! sorted and deduplicated — and interning proceeds bottom-up, so equal
//! children always resolve to equal ids).
//!
//! The arena is the engine's "scratch" for α-expansion: an `OrExpand`
//! operator keeps one interner for its whole input stream, so possible
//! worlds produced by *different* rows still share their common
//! sub-structure, and streaming dedup degenerates to a `HashSet<InternId>`.

use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use crate::value::Value;

/// FNV-1a, a tiny non-cryptographic hasher.  Interning hashes very small
/// keys (a discriminant plus a few 4-byte ids) at very high rates, where the
/// default SipHash's per-call setup dominates; FNV-1a is a multiply-xor per
/// byte with no setup at all.
#[derive(Debug, Default, Clone)]
pub struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = if self.0 == 0 {
            0xCBF2_9CE4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        self.0 = h;
    }
}

/// `BuildHasher` for [`FnvHasher`].
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// A hash set of [`InternId`]s using the fast hasher — the recommended
/// container for streaming world dedup.
pub type IdSet = HashSet<InternId, FnvBuildHasher>;

static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

/// A reference to an interned object inside an [`Interner`].
///
/// Ids are only meaningful relative to the interner that produced them.
/// Within one interner, `a == b` iff the interned objects are structurally
/// equal, and `Hash` hashes the raw index — this is what makes interned
/// dedup O(1) per world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InternId(u32);

impl InternId {
    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One interned node: the shape of a [`Value`] with children replaced by
/// [`InternId`]s.  Collection children are kept in the canonical (value)
/// order of the objects they name, mirroring the canonical representation of
/// [`Value`] itself.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Node {
    /// `()`.
    Unit,
    /// A boolean constant.
    Bool(bool),
    /// An integer constant.
    Int(i64),
    /// A string constant.
    Str(String),
    /// The Codd-style null.
    Null,
    /// A pair of interned objects.
    Pair(InternId, InternId),
    /// A set (children in canonical value order, deduplicated).
    Set(Box<[InternId]>),
    /// An or-set (children in canonical value order, deduplicated).
    OrSet(Box<[InternId]>),
    /// A bag (children in canonical value order, duplicates kept).
    Bag(Box<[InternId]>),
}

/// A hash-consing arena for complex objects.
///
/// Nodes live **once**, in `nodes`; the lookup index is a flat
/// open-addressing table of ids (`u32::MAX` = empty slot) probed linearly by
/// node hash, with equality resolved against the arena itself.  A wide
/// world-set node is therefore never duplicated as a map key, and inserting
/// a node costs no allocation beyond the `nodes` push.
#[derive(Debug)]
pub struct Interner {
    nodes: Vec<Node>,
    /// FNV hash of each node, parallel to `nodes` (saves re-hashing during
    /// probe rejection and table growth).
    hashes: Vec<u64>,
    /// Open-addressing index into `nodes`; always a power-of-two length.
    table: Vec<u32>,
    token: u64,
}

const EMPTY_SLOT: u32 = u32::MAX;

impl Clone for Interner {
    fn clone(&self) -> Interner {
        Interner {
            nodes: self.nodes.clone(),
            hashes: self.hashes.clone(),
            table: self.table.clone(),
            // a clone can diverge from the original, so it gets a fresh
            // token: memoized ids from one are never replayed on the other
            token: NEXT_TOKEN.fetch_add(1, AtomicOrdering::Relaxed),
        }
    }
}

impl Default for Interner {
    fn default() -> Interner {
        Interner::new()
    }
}

impl Interner {
    /// An empty arena.
    pub fn new() -> Interner {
        Interner {
            nodes: Vec::new(),
            hashes: Vec::new(),
            table: vec![EMPTY_SLOT; 64],
            token: NEXT_TOKEN.fetch_add(1, AtomicOrdering::Relaxed),
        }
    }

    /// A process-unique token identifying this arena instance.  Caches that
    /// store [`InternId`]s alongside results (e.g. the lazy normalizer's
    /// constant-subtree memo) key them by this token, so an id from one
    /// arena is never replayed against another.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Number of distinct interned nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the arena empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Look up the node an id names.
    pub fn node(&self, id: InternId) -> &Node {
        &self.nodes[id.index()]
    }

    fn insert(&mut self, node: Node) -> InternId {
        let hash = Self::node_hash(&node);
        let mask = self.table.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let entry = self.table[slot];
            if entry == EMPTY_SLOT {
                break;
            }
            let at = entry as usize;
            if self.hashes[at] == hash && self.nodes[at] == node {
                return InternId(entry);
            }
            slot = (slot + 1) & mask;
        }
        let raw = u32::try_from(self.nodes.len()).expect("intern arena overflow");
        assert_ne!(raw, EMPTY_SLOT, "intern arena overflow");
        self.nodes.push(node);
        self.hashes.push(hash);
        self.table[slot] = raw;
        // grow at 75% load so probe chains stay short
        if self.nodes.len() * 4 >= self.table.len() * 3 {
            self.grow_table();
        }
        InternId(raw)
    }

    fn node_hash(node: &Node) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = FnvHasher::default();
        node.hash(&mut h);
        h.finish()
    }

    fn grow_table(&mut self) {
        let new_len = self.table.len() * 2;
        let mask = new_len - 1;
        let mut table = vec![EMPTY_SLOT; new_len];
        for (i, &hash) in self.hashes.iter().enumerate() {
            let mut slot = (hash as usize) & mask;
            while table[slot] != EMPTY_SLOT {
                slot = (slot + 1) & mask;
            }
            table[slot] = i as u32;
        }
        self.table = table;
    }

    /// Intern a (canonical) value, bottom-up.  Equal values always produce
    /// equal ids.
    pub fn intern(&mut self, v: &Value) -> InternId {
        match v {
            Value::Unit => self.insert(Node::Unit),
            Value::Bool(b) => self.insert(Node::Bool(*b)),
            Value::Int(i) => self.insert(Node::Int(*i)),
            Value::Str(s) => self.insert(Node::Str(s.clone())),
            Value::Null => self.insert(Node::Null),
            Value::Pair(a, b) => {
                let ia = self.intern(a);
                let ib = self.intern(b);
                self.insert(Node::Pair(ia, ib))
            }
            Value::Set(items) => {
                let ids: Vec<InternId> = items.iter().map(|x| self.intern(x)).collect();
                // canonical values keep their children sorted already
                self.insert(Node::Set(ids.into_boxed_slice()))
            }
            Value::OrSet(items) => {
                let ids: Vec<InternId> = items.iter().map(|x| self.intern(x)).collect();
                self.insert(Node::OrSet(ids.into_boxed_slice()))
            }
            Value::Bag(items) => {
                let ids: Vec<InternId> = items.iter().map(|x| self.intern(x)).collect();
                self.insert(Node::Bag(ids.into_boxed_slice()))
            }
        }
    }

    /// Intern a pair from already-interned components.
    pub fn pair(&mut self, a: InternId, b: InternId) -> InternId {
        self.insert(Node::Pair(a, b))
    }

    /// Intern a set from already-interned element ids.  The ids are sorted
    /// into canonical value order and deduplicated, mirroring [`Value::set`].
    pub fn set(&mut self, mut ids: Vec<InternId>) -> InternId {
        self.canonicalize(&mut ids, true);
        self.insert(Node::Set(ids.into_boxed_slice()))
    }

    /// Intern an or-set from already-interned element ids (sorted,
    /// deduplicated), mirroring [`Value::orset`].
    pub fn orset(&mut self, mut ids: Vec<InternId>) -> InternId {
        self.canonicalize(&mut ids, true);
        self.insert(Node::OrSet(ids.into_boxed_slice()))
    }

    /// Intern a bag from already-interned element ids (sorted, duplicates
    /// kept), mirroring [`Value::bag`].
    pub fn bag(&mut self, mut ids: Vec<InternId>) -> InternId {
        self.canonicalize(&mut ids, false);
        self.insert(Node::Bag(ids.into_boxed_slice()))
    }

    fn canonicalize(&self, ids: &mut Vec<InternId>, dedup: bool) {
        ids.sort_by(|&a, &b| self.cmp(a, b));
        if dedup {
            ids.dedup(); // equal values have equal ids
        }
    }

    /// Compare two interned objects in the same order as
    /// [`Value`]'s derived `Ord`.  Equal ids short-circuit, and shared
    /// sub-structure keeps the recursion shallow in practice.
    pub fn cmp(&self, a: InternId, b: InternId) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        if a == b {
            return Ordering::Equal;
        }
        fn rank(n: &Node) -> u8 {
            // must match the declaration order of `Value`'s variants
            match n {
                Node::Unit => 0,
                Node::Bool(_) => 1,
                Node::Int(_) => 2,
                Node::Str(_) => 3,
                Node::Null => 4,
                Node::Pair(..) => 5,
                Node::Set(_) => 6,
                Node::OrSet(_) => 7,
                Node::Bag(_) => 8,
            }
        }
        let (na, nb) = (self.node(a), self.node(b));
        match (na, nb) {
            (Node::Bool(x), Node::Bool(y)) => x.cmp(y),
            (Node::Int(x), Node::Int(y)) => x.cmp(y),
            (Node::Str(x), Node::Str(y)) => x.cmp(y),
            (Node::Pair(a1, a2), Node::Pair(b1, b2)) => {
                self.cmp(*a1, *b1).then_with(|| self.cmp(*a2, *b2))
            }
            (Node::Set(xs), Node::Set(ys))
            | (Node::OrSet(xs), Node::OrSet(ys))
            | (Node::Bag(xs), Node::Bag(ys)) => {
                for (x, y) in xs.iter().zip(ys.iter()) {
                    let ord = self.cmp(*x, *y);
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                xs.len().cmp(&ys.len())
            }
            _ => rank(na).cmp(&rank(nb)),
        }
    }

    /// Reconstruct the [`Value`] an id names.
    pub fn value(&self, id: InternId) -> Value {
        match self.node(id) {
            Node::Unit => Value::Unit,
            Node::Bool(b) => Value::Bool(*b),
            Node::Int(i) => Value::Int(*i),
            Node::Str(s) => Value::Str(s.clone()),
            Node::Null => Value::Null,
            Node::Pair(a, b) => Value::Pair(Box::new(self.value(*a)), Box::new(self.value(*b))),
            // children are already canonical, so rebuild without re-sorting
            Node::Set(ids) => Value::Set(ids.iter().map(|&i| self.value(i)).collect()),
            Node::OrSet(ids) => Value::OrSet(ids.iter().map(|&i| self.value(i)).collect()),
            Node::Bag(ids) => Value::Bag(ids.iter().map(|&i| self.value(i)).collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{GenConfig, Generator};

    #[test]
    fn equal_values_intern_to_equal_ids() {
        let mut arena = Interner::new();
        let a = Value::set([Value::int_orset([3, 1]), Value::int_orset([2])]);
        let b = Value::set([Value::int_orset([1, 3]), Value::int_orset([2])]);
        assert_eq!(arena.intern(&a), arena.intern(&b));
        let c = Value::set([Value::int_orset([1, 3])]);
        assert_ne!(arena.intern(&a), arena.intern(&c));
    }

    #[test]
    fn value_round_trips() {
        let mut arena = Interner::new();
        let config = GenConfig {
            max_depth: 4,
            max_width: 3,
            ..GenConfig::default()
        };
        let mut gen = Generator::new(7, config);
        for _ in 0..50 {
            let (_, v) = gen.typed_object();
            let id = arena.intern(&v);
            assert_eq!(arena.value(id), v);
            // interning the round-tripped value is stable
            assert_eq!(arena.intern(&arena.value(id)), id);
        }
    }

    #[test]
    fn cmp_matches_value_order() {
        let mut arena = Interner::new();
        let config = GenConfig {
            max_depth: 3,
            max_width: 3,
            ..GenConfig::default()
        };
        let mut gen = Generator::new(11, config);
        let values: Vec<Value> = (0..30).map(|_| gen.typed_object().1).collect();
        for x in &values {
            for y in &values {
                let ix = arena.intern(x);
                let iy = arena.intern(y);
                assert_eq!(arena.cmp(ix, iy), x.cmp(y), "cmp disagrees on {x} vs {y}");
            }
        }
    }

    #[test]
    fn constructors_match_value_constructors() {
        let mut arena = Interner::new();
        let e1 = arena.intern(&Value::Int(5));
        let e2 = arena.intern(&Value::Int(1));
        let set_id = arena.set(vec![e1, e2, e1]);
        assert_eq!(arena.value(set_id), Value::int_set([1, 5]));
        let orset_id = arena.orset(vec![e1, e2]);
        assert_eq!(arena.value(orset_id), Value::int_orset([1, 5]));
        let bag_id = arena.bag(vec![e1, e2, e1]);
        assert_eq!(
            arena.value(bag_id),
            Value::bag([Value::Int(1), Value::Int(5), Value::Int(5)])
        );
        let pair_id = arena.pair(e1, e2);
        assert_eq!(
            arena.value(pair_id),
            Value::pair(Value::Int(5), Value::Int(1))
        );
    }

    #[test]
    fn sharing_keeps_the_arena_small() {
        let mut arena = Interner::new();
        // 100 sets over the same 5 leaves: the arena holds the leaves once
        for i in 0..100i64 {
            let v = Value::set([Value::Int(i % 5), Value::Int((i + 1) % 5)]);
            arena.intern(&v);
        }
        // 5 leaves + at most 5*5 distinct two-element sets
        assert!(arena.len() <= 5 + 25, "arena grew to {}", arena.len());
    }
}
