//! Antichain semantics: `max`/`min` coercions and helpers.
//!
//! Section 3 proposes restricting set values to antichains of their element
//! order, using the *maximal* elements for ordinary sets and the *minimal*
//! elements for or-sets.  Under this "antichain semantics" an application
//! that produces a set (or-set) is followed by `max` (`min`) to re-establish
//! the invariant.

use crate::base_order::BaseOrder;
use crate::intern::Interner;
use crate::order::object_leq;
use crate::value::Value;

/// The maximal elements of `items` under `leq` (duplicates removed).
pub fn max_elems<T, F>(items: &[T], mut leq: F) -> Vec<T>
where
    T: Clone + PartialEq,
    F: FnMut(&T, &T) -> bool,
{
    let mut out: Vec<T> = Vec::new();
    for (i, x) in items.iter().enumerate() {
        let dominated = items.iter().enumerate().any(|(j, y)| {
            if i == j {
                return false;
            }
            // strictly above, or equal-but-earlier (to dedup equals)
            (leq(x, y) && !leq(y, x)) || (leq(x, y) && leq(y, x) && j < i)
        });
        if !dominated && !out.contains(x) {
            out.push(x.clone());
        }
    }
    out
}

/// The minimal elements of `items` under `leq` (duplicates removed).
pub fn min_elems<T, F>(items: &[T], mut leq: F) -> Vec<T>
where
    T: Clone + PartialEq,
    F: FnMut(&T, &T) -> bool,
{
    max_elems(items, |a, b| leq(b, a))
}

/// Is `items` an antichain under `leq` (no two distinct comparable elements)?
pub fn is_antichain<T, F>(items: &[T], mut leq: F) -> bool
where
    T: PartialEq,
    F: FnMut(&T, &T) -> bool,
{
    for (i, x) in items.iter().enumerate() {
        for (j, y) in items.iter().enumerate() {
            if i != j && (leq(x, y) || leq(y, x)) {
                return false;
            }
        }
    }
    true
}

/// Take the maximal elements of a set value under the structural order.
pub fn set_max(base: BaseOrder, items: &[Value]) -> Vec<Value> {
    max_elems(items, |a, b| object_leq(base, a, b))
}

/// Take the minimal elements of an or-set value under the structural order.
pub fn orset_min(base: BaseOrder, items: &[Value]) -> Vec<Value> {
    min_elems(items, |a, b| object_leq(base, a, b))
}

/// Remove structural duplicates from `items` in O(n) interner operations,
/// keeping the first occurrence of each object in input order.  This is the
/// hash-consed replacement for the quadratic equality scans of
/// [`max_elems`]/[`min_elems`] when many candidates coincide — e.g. the
/// choice-function candidates of `alpha_a` over possible worlds that share
/// most of their structure.
pub fn dedup_interned(arena: &mut Interner, items: &[Value]) -> Vec<Value> {
    let mut seen = std::collections::HashSet::with_capacity(items.len());
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        if seen.insert(arena.intern(item)) {
            out.push(item.clone());
        }
    }
    out
}

/// [`set_max`] with an interner-backed duplicate pass: structural duplicates
/// are removed by id first (O(n)), so the quadratic domination scan runs on
/// distinct elements only.  Pointwise equal to [`set_max`].
pub fn set_max_interned(base: BaseOrder, arena: &mut Interner, items: &[Value]) -> Vec<Value> {
    let distinct = dedup_interned(arena, items);
    set_max(base, &distinct)
}

/// [`orset_min`] with an interner-backed duplicate pass; pointwise equal to
/// [`orset_min`].
pub fn orset_min_interned(base: BaseOrder, arena: &mut Interner, items: &[Value]) -> Vec<Value> {
    let distinct = dedup_interned(arena, items);
    orset_min(base, &distinct)
}

/// Coerce an object into the antichain semantics: recursively keep only the
/// maximal elements of every set and the minimal elements of every or-set.
/// Bags are left untouched (they are internal to normalization, which does
/// not use the antichain semantics).
pub fn to_antichain(base: BaseOrder, v: &Value) -> Value {
    match v {
        x if x.is_base() => x.clone(),
        Value::Pair(a, b) => Value::pair(to_antichain(base, a), to_antichain(base, b)),
        Value::Set(items) => {
            let items: Vec<Value> = items.iter().map(|x| to_antichain(base, x)).collect();
            Value::set(set_max(base, &items))
        }
        Value::OrSet(items) => {
            let items: Vec<Value> = items.iter().map(|x| to_antichain(base, x)).collect();
            Value::orset(orset_min(base, &items))
        }
        Value::Bag(items) => Value::bag(items.iter().map(|x| to_antichain(base, x))),
        _ => unreachable!("all shapes covered"),
    }
}

/// Is the object already in antichain form (every set an antichain of
/// maximal elements, every or-set an antichain of minimal elements)?
pub fn is_antichain_object(base: BaseOrder, v: &Value) -> bool {
    match v {
        x if x.is_base() => true,
        Value::Pair(a, b) => is_antichain_object(base, a) && is_antichain_object(base, b),
        Value::Set(items) | Value::OrSet(items) => {
            items.iter().all(|x| is_antichain_object(base, x))
                && is_antichain(items, |a, b| object_leq(base, a, b))
        }
        Value::Bag(items) => items.iter().all(|x| is_antichain_object(base, x)),
        _ => unreachable!("all shapes covered"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_and_min_of_an_integer_chain() {
        let leq = |a: &i64, b: &i64| a <= b;
        assert_eq!(max_elems(&[1, 3, 2], leq), vec![3]);
        assert_eq!(min_elems(&[1, 3, 2], leq), vec![1]);
    }

    #[test]
    fn max_removes_duplicates_but_keeps_incomparables() {
        let eq = |a: &i64, b: &i64| a == b;
        let mut m = max_elems(&[2, 1, 2, 3], eq);
        m.sort();
        assert_eq!(m, vec![1, 2, 3]);
    }

    #[test]
    fn antichain_detection() {
        let leq = |a: &i64, b: &i64| a <= b;
        assert!(is_antichain(&[5], leq));
        assert!(!is_antichain(&[1, 2], leq));
        let eq = |a: &i64, b: &i64| a == b;
        assert!(is_antichain(&[1, 2, 3], eq));
    }

    #[test]
    fn antichain_coercion_on_flat_records() {
        // { (null, "515"), ("Joe", "515") } -- the first record is subsumed
        let base = BaseOrder::FlatWithNull;
        let v = Value::set([
            Value::pair(Value::Null, Value::str("515")),
            Value::pair(Value::str("Joe"), Value::str("515")),
        ]);
        let a = to_antichain(base, &v);
        assert_eq!(
            a,
            Value::set([Value::pair(Value::str("Joe"), Value::str("515"))])
        );
        assert!(is_antichain_object(base, &a));
        assert!(!is_antichain_object(base, &v));
    }

    #[test]
    fn orsets_keep_minimal_elements() {
        let base = BaseOrder::NumericLeq;
        let v = Value::int_orset([3, 5, 7]);
        let a = to_antichain(base, &v);
        assert_eq!(a, Value::int_orset([3]));
    }

    #[test]
    fn sets_keep_maximal_elements_under_numeric_order() {
        let base = BaseOrder::NumericLeq;
        let v = Value::int_set([3, 5, 7]);
        let a = to_antichain(base, &v);
        assert_eq!(a, Value::int_set([7]));
    }

    #[test]
    fn interned_max_min_match_plain_variants() {
        let mut arena = Interner::new();
        let base = BaseOrder::FlatWithNull;
        let items = vec![
            Value::pair(Value::Null, Value::str("515")),
            Value::pair(Value::str("Joe"), Value::str("515")),
            Value::pair(Value::Null, Value::str("515")), // duplicate
            Value::pair(Value::Null, Value::Null),
        ];
        assert_eq!(
            set_max_interned(base, &mut arena, &items),
            set_max(base, &items)
        );
        assert_eq!(
            orset_min_interned(base, &mut arena, &items),
            orset_min(base, &items)
        );
        // dedup keeps first occurrences in order
        let deduped = dedup_interned(&mut arena, &items);
        assert_eq!(deduped.len(), 3);
        assert_eq!(deduped[0], items[0]);
    }

    #[test]
    fn coercion_is_idempotent() {
        let base = BaseOrder::NumericLeq;
        let v = Value::set([
            Value::int_orset([1, 2, 3]),
            Value::int_orset([2, 3]),
            Value::int_orset([9]),
        ]);
        let once = to_antichain(base, &v);
        let twice = to_antichain(base, &once);
        assert_eq!(once, twice);
        assert!(is_antichain_object(base, &once));
    }

    #[test]
    fn coercion_preserves_discrete_objects() {
        let base = BaseOrder::Discrete;
        let v = Value::set([Value::int_orset([1, 2]), Value::int_orset([3, 4])]);
        assert_eq!(to_antichain(base, &v), v);
    }
}
