//! The interaction operator `alpha` and its variants.
//!
//! `alpha : {<t>} -> <{t}>` combines the or-sets contained in an ordinary set
//! "componentwise in all possible ways": each element of the result picks one
//! alternative from every or-set of the input (a *choice function*).  It is
//! essentially the translation of a conjunctive normal form into a
//! disjunctive normal form and can be exponentially expensive (Section 2).
//!
//! Variants implemented here:
//!
//! * [`alpha_set`] — the plain set-semantics operator of Section 2;
//! * [`alpha_bag`] — the duplicate-preserving `alpha_d : [|<t>|] -> <[|t|]>`
//!   of Section 4, used by normalization;
//! * [`alpha_antichain`] / [`beta_antichain`] — the antichain-semantics
//!   mutually inverse isomorphisms of Theorem 3.3.

use crate::antichain::{orset_min, orset_min_interned, set_max, set_max_interned};
use crate::base_order::BaseOrder;
use crate::intern::{InternId, Interner};
use crate::value::{Value, ValueError};

/// Iterate over all choice functions of `lists`: every produced vector picks
/// one element from each list, in lexicographic index order.
///
/// If any list is empty there are no choice functions.  If `lists` itself is
/// empty there is exactly one (empty) choice function.
pub struct ChoiceFunctions<'a, T> {
    lists: &'a [Vec<T>],
    indices: Vec<usize>,
    done: bool,
}

impl<'a, T> ChoiceFunctions<'a, T> {
    /// Create the iterator.
    pub fn new(lists: &'a [Vec<T>]) -> Self {
        let done = lists.iter().any(Vec::is_empty);
        ChoiceFunctions {
            lists,
            indices: vec![0; lists.len()],
            done,
        }
    }

    /// The number of choice functions (product of the list lengths).
    pub fn count_total(lists: &[Vec<T>]) -> u128 {
        lists.iter().map(|l| l.len() as u128).product()
    }
}

impl<'a, T> Iterator for ChoiceFunctions<'a, T> {
    type Item = Vec<&'a T>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let item: Vec<&T> = self
            .indices
            .iter()
            .zip(self.lists.iter())
            .map(|(&i, l)| &l[i])
            .collect();
        // advance odometer
        let mut pos = self.lists.len();
        loop {
            if pos == 0 {
                self.done = true;
                break;
            }
            pos -= 1;
            self.indices[pos] += 1;
            if self.indices[pos] < self.lists[pos].len() {
                break;
            }
            self.indices[pos] = 0;
        }
        Some(item)
    }
}

fn orset_elements(v: &Value) -> Result<Vec<Value>, ValueError> {
    match v {
        Value::OrSet(items) => Ok(items.clone()),
        other => Err(ValueError::Shape(format!(
            "alpha expects a collection of or-sets, found element {other}"
        ))),
    }
}

/// The plain `alpha : {<t>} -> <{t}>` of Section 2.
///
/// * `alpha({})` is `<{}>` — there is exactly one (empty) choice;
/// * if any member or-set is empty the result is the empty or-set `< >`
///   (conceptual inconsistency), matching the `alpha([<1,2>, <>, <3>])`
///   example of the introduction.
pub fn alpha_set(v: &Value) -> Result<Value, ValueError> {
    let items = match v {
        Value::Set(items) => items,
        other => {
            return Err(ValueError::Shape(format!(
                "alpha expects a set of or-sets, found {other}"
            )))
        }
    };
    let lists: Vec<Vec<Value>> = items.iter().map(orset_elements).collect::<Result<_, _>>()?;
    let mut out: Vec<Value> = Vec::new();
    for choice in ChoiceFunctions::new(&lists) {
        out.push(Value::set(choice.into_iter().cloned()));
    }
    Ok(Value::orset(out))
}

/// The duplicate-preserving `alpha_d : [|<t>|] -> <[|t|]>` of Section 4.
///
/// Duplicated or-sets in the input each contribute their own choice, so
/// `alpha_d([|<1,2>, <1,2>|]) = <[|1,1|], [|1,2|], [|2,2|]>`.
pub fn alpha_bag(v: &Value) -> Result<Value, ValueError> {
    let items = match v {
        Value::Bag(items) => items,
        other => {
            return Err(ValueError::Shape(format!(
                "alpha_d expects a bag of or-sets, found {other}"
            )))
        }
    };
    let lists: Vec<Vec<Value>> = items.iter().map(orset_elements).collect::<Result<_, _>>()?;
    let mut out: Vec<Value> = Vec::new();
    for choice in ChoiceFunctions::new(&lists) {
        out.push(Value::bag(choice.into_iter().cloned()));
    }
    Ok(Value::orset(out))
}

/// [`alpha_set`] with hash-consing: the combined sets share the structure of
/// the alternatives they pick (interned once in `arena`), and the result
/// or-set is deduplicated by interned id instead of by deep comparison.
///
/// The output is pointwise equal to [`alpha_set`]; only the cost profile
/// differs.  Returns the interned id of the resulting or-set — use
/// [`Interner::value`] to materialize it.
pub fn alpha_set_interned(arena: &mut Interner, v: &Value) -> Result<InternId, ValueError> {
    let items = match v {
        Value::Set(items) => items,
        other => {
            return Err(ValueError::Shape(format!(
                "alpha expects a set of or-sets, found {other}"
            )))
        }
    };
    // Intern every alternative of every or-set once, up front.
    let lists: Vec<Vec<InternId>> = items
        .iter()
        .map(|o| {
            let elems = orset_elements(o)?;
            Ok(elems.iter().map(|x| arena.intern(x)).collect())
        })
        .collect::<Result<_, ValueError>>()?;
    let mut worlds: Vec<InternId> = Vec::new();
    for choice in ChoiceFunctions::new(&lists) {
        let ids: Vec<InternId> = choice.into_iter().copied().collect();
        worlds.push(arena.set(ids));
    }
    Ok(arena.orset(worlds))
}

/// The antichain-semantics `alpha_a : [[{<t>}]]_a -> [[<{t}>]]_a` of
/// Theorem 3.3:
///
/// ```text
/// alpha_a(A) = min_{f ∈ F_A} ( max f(A) )
/// ```
///
/// where `f` ranges over choice functions, `max` is taken with respect to the
/// element order, and `min` with respect to the Hoare order on the resulting
/// sets.
pub fn alpha_antichain(base: BaseOrder, v: &Value) -> Result<Value, ValueError> {
    let items = match v {
        Value::Set(items) => items,
        other => {
            return Err(ValueError::Shape(format!(
                "alpha_a expects a set of or-sets, found {other}"
            )))
        }
    };
    let lists: Vec<Vec<Value>> = items.iter().map(orset_elements).collect::<Result<_, _>>()?;
    // Candidate world-sets repeat heavily (choice functions that differ only
    // in dominated elements collapse under max); dedup them by interned id
    // before the quadratic minimality pass.
    let mut arena = Interner::new();
    let mut candidates: Vec<Value> = Vec::new();
    for choice in ChoiceFunctions::new(&lists) {
        let chosen: Vec<Value> = choice.into_iter().cloned().collect();
        candidates.push(Value::set(set_max(base, &chosen)));
    }
    Ok(Value::orset(orset_min_interned(
        base,
        &mut arena,
        &candidates,
    )))
}

/// The inverse isomorphism `beta_a : [[<{t}>]]_a -> [[{<t>}]]_a` of
/// Theorem 3.3:
///
/// ```text
/// beta_a(A) = max_{f ∈ F_A} ( min f(A) )
/// ```
///
/// where `f` now chooses one element from every *set* in the or-set, `min`
/// is taken with respect to the element order, and `max` with respect to the
/// Smyth order on the resulting or-sets.
pub fn beta_antichain(base: BaseOrder, v: &Value) -> Result<Value, ValueError> {
    let items = match v {
        Value::OrSet(items) => items,
        other => {
            return Err(ValueError::Shape(format!(
                "beta_a expects an or-set of sets, found {other}"
            )))
        }
    };
    let lists: Vec<Vec<Value>> = items
        .iter()
        .map(|x| match x {
            Value::Set(inner) => Ok(inner.clone()),
            other => Err(ValueError::Shape(format!(
                "beta_a expects an or-set of sets, found element {other}"
            ))),
        })
        .collect::<Result<_, _>>()?;
    let mut arena = Interner::new();
    let mut candidates: Vec<Value> = Vec::new();
    for choice in ChoiceFunctions::new(&lists) {
        let chosen: Vec<Value> = choice.into_iter().cloned().collect();
        candidates.push(Value::orset(orset_min(base, &chosen)));
    }
    Ok(Value::set(set_max_interned(base, &mut arena, &candidates)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_alpha_of_two_orsets() {
        // alpha [ <2,3>, <4,5,3> ] = < {2,4},{2,5},{2,3},{3,4},{3,5},{3} >
        let v = Value::set([Value::int_orset([2, 3]), Value::int_orset([4, 5, 3])]);
        let out = alpha_set(&v).unwrap();
        let expected = Value::orset([
            Value::int_set([2, 4]),
            Value::int_set([2, 5]),
            Value::int_set([2, 3]),
            Value::int_set([3, 4]),
            Value::int_set([3, 5]),
            Value::int_set([3]),
        ]);
        assert_eq!(out, expected);
    }

    #[test]
    fn paper_example_alpha_with_empty_orset_is_inconsistent() {
        // alpha [ <1,2>, <>, <3> ] = <>
        let v = Value::set([
            Value::int_orset([1, 2]),
            Value::empty_orset(),
            Value::int_orset([3]),
        ]);
        assert_eq!(alpha_set(&v).unwrap(), Value::empty_orset());
    }

    #[test]
    fn alpha_of_empty_set_is_singleton_empty_set() {
        let v = Value::empty_set();
        assert_eq!(alpha_set(&v).unwrap(), Value::orset([Value::empty_set()]));
    }

    #[test]
    fn alpha_rejects_non_orset_elements() {
        let v = Value::set([Value::Int(1)]);
        assert!(alpha_set(&v).is_err());
        assert!(alpha_set(&Value::Int(1)).is_err());
    }

    #[test]
    fn alpha_bag_keeps_duplicates() {
        // alpha_d [| <1,2>, <1,2> |] = < [|1,1|], [|1,2|], [|2,2|] >
        let v = Value::bag([Value::int_orset([1, 2]), Value::int_orset([1, 2])]);
        let out = alpha_bag(&v).unwrap();
        let expected = Value::orset([
            Value::bag([Value::Int(1), Value::Int(1)]),
            Value::bag([Value::Int(1), Value::Int(2)]),
            Value::bag([Value::Int(2), Value::Int(2)]),
        ]);
        assert_eq!(out, expected);
    }

    #[test]
    fn set_semantics_loses_choices_that_bag_semantics_keeps() {
        // With plain sets, {<a,b>, <a,b>} collapses to {<a,b>} and alpha can
        // no longer produce {a, b}; this is exactly the subtlety motivating
        // multisets in Section 4.
        let set_version = Value::set([Value::int_orset([1, 2]), Value::int_orset([1, 2])]);
        let out = alpha_set(&set_version).unwrap();
        assert_eq!(
            out,
            Value::orset([Value::int_set([1]), Value::int_set([2])])
        );
        assert!(!out.elements().unwrap().contains(&Value::int_set([1, 2])));
    }

    #[test]
    fn alpha_blowup_is_two_to_the_n() {
        // n two-element or-sets, all elements distinct: 2^n result sets
        let n = 8;
        let orsets: Vec<Value> = (0..n)
            .map(|i| Value::int_orset([2 * i as i64, 2 * i as i64 + 1]))
            .collect();
        let v = Value::set(orsets);
        let out = alpha_set(&v).unwrap();
        assert_eq!(out.elements().unwrap().len(), 1 << n);
    }

    #[test]
    fn interned_alpha_matches_plain_alpha() {
        use crate::intern::Interner;
        let mut arena = Interner::new();
        let cases = [
            Value::set([Value::int_orset([2, 3]), Value::int_orset([4, 5, 3])]),
            Value::set([Value::int_orset([1, 2]), Value::int_orset([1, 2])]),
            Value::empty_set(),
            Value::set([
                Value::int_orset([1, 2]),
                Value::empty_orset(),
                Value::int_orset([3]),
            ]),
        ];
        for v in &cases {
            let plain = alpha_set(v).unwrap();
            let interned = alpha_set_interned(&mut arena, v).unwrap();
            assert_eq!(arena.value(interned), plain, "disagreement on {v}");
        }
        // and the error paths agree
        assert!(alpha_set_interned(&mut arena, &Value::Int(1)).is_err());
        assert!(alpha_set_interned(&mut arena, &Value::set([Value::Int(1)])).is_err());
    }

    #[test]
    fn interned_alpha_shares_structure_across_worlds() {
        use crate::intern::Interner;
        let mut arena = Interner::new();
        // 2^8 worlds over only 16 distinct leaves: the arena stays far
        // smaller than the materialized expansion.
        let v = Value::set((0..8).map(|i| Value::int_orset([2 * i as i64, 2 * i as i64 + 1])));
        let id = alpha_set_interned(&mut arena, &v).unwrap();
        let out = arena.value(id);
        assert_eq!(out.elements().unwrap().len(), 256);
        // 16 leaves + 256 world sets + 1 or-set node (plus nothing else)
        assert!(arena.len() <= 16 + 256 + 1, "arena: {}", arena.len());
    }

    #[test]
    fn choice_function_count() {
        let lists = vec![vec![1, 2], vec![3, 4, 5], vec![6]];
        assert_eq!(ChoiceFunctions::count_total(&lists), 6);
        assert_eq!(ChoiceFunctions::new(&lists).count(), 6);
    }

    #[test]
    fn alpha_antichain_matches_plain_alpha_on_discrete_base() {
        let v = Value::set([Value::int_orset([2, 3]), Value::int_orset([4, 5, 3])]);
        let plain = alpha_set(&v).unwrap();
        let anti = alpha_antichain(BaseOrder::Discrete, &v).unwrap();
        // Every antichain-result set also appears in the plain result, and
        // supersets of {3} (namely {2,3}, {3,4}, {3,5}) are pruned because
        // {3} lies Hoare-below them.
        let anti_items = anti.elements().unwrap();
        for s in anti_items {
            assert!(plain.elements().unwrap().contains(s));
        }
        assert_eq!(
            anti,
            Value::orset([
                Value::int_set([2, 4]),
                Value::int_set([2, 5]),
                Value::int_set([3]),
            ])
        );
    }

    #[test]
    fn alpha_and_beta_antichain_are_mutually_inverse_on_an_example() {
        let base = BaseOrder::FlatWithNull;
        // an antichain of antichains: [ <1,2>, <3> ]
        let v = Value::set([Value::int_orset([1, 2]), Value::int_orset([3])]);
        let a = alpha_antichain(base, &v).unwrap();
        let back = beta_antichain(base, &a).unwrap();
        assert_eq!(back, v);
    }
}
