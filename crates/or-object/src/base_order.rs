//! Orders on base values.
//!
//! Section 3 of the paper assumes that "orders on values of base types are
//! given" and builds the order on complex objects on top of them.  Three
//! concrete base orders are provided:
//!
//! * [`BaseOrder::Discrete`] — values of base types are totally unordered
//!   (the paper notes this choice recovers databases *without* partial
//!   information);
//! * [`BaseOrder::FlatWithNull`] — a flat domain: a distinguished bottom
//!   element ([`Value::Null`]) sits below every other value of the base type
//!   and all other values are pairwise incomparable (Codd tables);
//! * [`BaseOrder::NumericLeq`] — integers ordered by `<=` (booleans by
//!   `false <= true`), all other base values as in the flat domain.  This
//!   richer poset is useful for exercising the order-theoretic results on
//!   nontrivial chains.

use crate::value::Value;

/// A partial order on base values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BaseOrder {
    /// Every base value is comparable only to itself.
    Discrete,
    /// Flat domains: `Null` is below everything of the same base type,
    /// distinct non-null values are incomparable.
    #[default]
    FlatWithNull,
    /// Integers by `<=`, booleans by implication, `Null` below everything,
    /// other base values incomparable unless equal.
    NumericLeq,
}

impl BaseOrder {
    /// Is `x ⊑ y` for base values `x`, `y`?
    ///
    /// Values of different base types are never comparable (except that
    /// `Null` — which is untyped in our representation — is below every base
    /// value under the non-discrete orders).
    pub fn leq(&self, x: &Value, y: &Value) -> bool {
        debug_assert!(x.is_base(), "base order applied to non-base value {x}");
        debug_assert!(y.is_base(), "base order applied to non-base value {y}");
        if x == y {
            return true;
        }
        match self {
            BaseOrder::Discrete => false,
            BaseOrder::FlatWithNull => matches!(x, Value::Null),
            BaseOrder::NumericLeq => match (x, y) {
                (Value::Null, _) => true,
                (Value::Int(a), Value::Int(b)) => a <= b,
                (Value::Bool(a), Value::Bool(b)) => !a || *b,
                _ => false,
            },
        }
    }

    /// Strict version of [`BaseOrder::leq`].
    pub fn lt(&self, x: &Value, y: &Value) -> bool {
        x != y && self.leq(x, y)
    }

    /// Are `x` and `y` comparable?
    pub fn comparable(&self, x: &Value, y: &Value) -> bool {
        self.leq(x, y) || self.leq(y, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discrete_only_relates_equal_values() {
        let o = BaseOrder::Discrete;
        assert!(o.leq(&Value::Int(3), &Value::Int(3)));
        assert!(!o.leq(&Value::Int(3), &Value::Int(4)));
        assert!(!o.leq(&Value::Null, &Value::Int(4)));
    }

    #[test]
    fn flat_with_null_has_bottom() {
        let o = BaseOrder::FlatWithNull;
        assert!(o.leq(&Value::Null, &Value::str("Joe")));
        assert!(o.leq(&Value::Null, &Value::Int(1)));
        assert!(!o.leq(&Value::str("Joe"), &Value::str("Mary")));
        assert!(!o.leq(&Value::Int(1), &Value::Int(2)));
        assert!(o.lt(&Value::Null, &Value::Int(1)));
        assert!(!o.lt(&Value::Int(1), &Value::Int(1)));
    }

    #[test]
    fn numeric_order_relates_integers_and_booleans() {
        let o = BaseOrder::NumericLeq;
        assert!(o.leq(&Value::Int(1), &Value::Int(2)));
        assert!(!o.leq(&Value::Int(2), &Value::Int(1)));
        assert!(o.leq(&Value::Bool(false), &Value::Bool(true)));
        assert!(!o.leq(&Value::Bool(true), &Value::Bool(false)));
        assert!(o.leq(&Value::Null, &Value::Int(-5)));
        assert!(!o.leq(&Value::Int(1), &Value::Bool(true)));
    }

    #[test]
    fn comparability_is_symmetric_in_the_flat_domain() {
        let o = BaseOrder::FlatWithNull;
        assert!(o.comparable(&Value::Null, &Value::Int(2)));
        assert!(o.comparable(&Value::Int(2), &Value::Null));
        assert!(!o.comparable(&Value::Int(2), &Value::Int(3)));
    }
}
