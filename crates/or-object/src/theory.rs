//! Modal-logic theories of complex objects (Proposition 3.4).
//!
//! Following Winskel and Rounds, the paper assigns to every object `x` a
//! theory `Th(x)` in a language with disjunction `∨`, a pairing connective,
//! and the modalities `□` ("true of every member of the set") and `◇`
//! ("true of at least one member of the or-set"):
//!
//! * `Th(x₁, x₂)` contains `φ₁ ⊗ φ₂` whenever `φᵢ ∈ Th(xᵢ)`;
//! * `Th({x₁,…,xₙ})` contains `□φ` whenever `φ ∈ Th(xᵢ)` for *all* `i`;
//! * `Th(<x₁,…,xₙ>)` contains `◇φ` whenever `φ ∈ Th(xᵢ)` for *some* `i`;
//! * together with any `φ ∈ Th(x)`, every disjunction `φ ∨ ψ` is in `Th(x)`.
//!
//! At base types we take the atomic formulae to be `is(c)` for constants `c`,
//! with `is(c) ∈ Th(x)` iff `x ⊑ c` in the base order; this satisfies the
//! paper's two requirements (`x ⊏ y ⇒ Th(x) ⊃ Th(y)`, and distinct values
//! have distinct theories) for all three provided base orders.
//!
//! Proposition 3.4: for objects `x`, `y` of the same type,
//! `x ⊑ y  iff  Th(x) ⊇ Th(y)`.
//!
//! Theories are infinite, so they are represented intensionally: the
//! membership test [`entails`] decides `φ ∈ Th(x)`, and
//! [`separating_formula`] constructs — following the proof of the
//! proposition — a witness `φ ∈ Th(y) \ Th(x)` whenever `x ⋢ y`.
//!
//! The only caveat concerns the *empty or-set*:
//! with the minimal-theory reading, `Th(< >)` is empty, so the right-to-left
//! direction of Proposition 3.4 can fail on objects containing empty or-sets.
//! The paper regards such objects as conceptually inconsistent; all results
//! here are stated and tested for objects free of empty or-sets.

use std::fmt;

use crate::base_order::BaseOrder;
use crate::order::object_leq;
use crate::value::Value;

/// A modal formula over base constants.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Formula {
    /// `is(c)`: an atomic assertion about a base value.
    Is(Value),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// The pairing connective: a statement about each component of a pair.
    Both(Box<Formula>, Box<Formula>),
    /// `□φ`: `φ` holds of every member of the set.
    Box_(Box<Formula>),
    /// `◇φ`: `φ` holds of at least one member of the or-set.
    Diamond(Box<Formula>),
}

impl Formula {
    /// Atomic formula `is(c)`.
    pub fn is(c: Value) -> Formula {
        Formula::Is(c)
    }

    /// Disjunction of two formulae.
    pub fn or(a: Formula, b: Formula) -> Formula {
        Formula::Or(Box::new(a), Box::new(b))
    }

    /// Disjunction of a non-empty list of formulae (right-nested).
    pub fn or_all(mut items: Vec<Formula>) -> Option<Formula> {
        let last = items.pop()?;
        Some(
            items
                .into_iter()
                .rev()
                .fold(last, |acc, f| Formula::Or(Box::new(f), Box::new(acc))),
        )
    }

    /// Pairing connective.
    pub fn both(a: Formula, b: Formula) -> Formula {
        Formula::Both(Box::new(a), Box::new(b))
    }

    /// `□φ`.
    pub fn box_(f: Formula) -> Formula {
        Formula::Box_(Box::new(f))
    }

    /// `◇φ`.
    pub fn diamond(f: Formula) -> Formula {
        Formula::Diamond(Box::new(f))
    }

    /// Number of connectives and atoms in the formula.
    pub fn size(&self) -> usize {
        match self {
            Formula::Is(_) => 1,
            Formula::Or(a, b) | Formula::Both(a, b) => 1 + a.size() + b.size(),
            Formula::Box_(f) | Formula::Diamond(f) => 1 + f.size(),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Is(c) => write!(f, "is({c})"),
            Formula::Or(a, b) => write!(f, "({a} \\/ {b})"),
            Formula::Both(a, b) => write!(f, "({a}, {b})"),
            Formula::Box_(inner) => write!(f, "[]{inner}"),
            Formula::Diamond(inner) => write!(f, "<>{inner}"),
        }
    }
}

/// Decide `φ ∈ Th(x)` for the theory construction described in the module
/// documentation.  A formula whose shape does not match the shape of `x`
/// (e.g. a `□` formula applied to a pair) is not in the theory.
pub fn entails(base: BaseOrder, x: &Value, phi: &Formula) -> bool {
    match phi {
        Formula::Or(a, b) => entails(base, x, a) || entails(base, x, b),
        Formula::Is(c) => x.is_base() && c.is_base() && base.leq(x, c),
        Formula::Both(a, b) => match x {
            Value::Pair(x1, x2) => entails(base, x1, a) && entails(base, x2, b),
            _ => false,
        },
        Formula::Box_(inner) => match x {
            Value::Set(items) | Value::Bag(items) => {
                items.iter().all(|xi| entails(base, xi, inner))
            }
            _ => false,
        },
        Formula::Diamond(inner) => match x {
            Value::OrSet(items) => items.iter().any(|xi| entails(base, xi, inner)),
            _ => false,
        },
    }
}

/// A canonical formula that every object (without empty or-sets) satisfies:
/// `is(x)` at base values, the pairing of canonical formulae at pairs,
/// `□(⋁ canonical(xᵢ))` at sets (with `□ is(unit)` for the empty set, which
/// holds vacuously) and `◇ canonical(x₁)` at or-sets.
pub fn canonical_formula(x: &Value) -> Option<Formula> {
    match x {
        v if v.is_base() => Some(Formula::is(v.clone())),
        Value::Pair(a, b) => Some(Formula::both(canonical_formula(a)?, canonical_formula(b)?)),
        Value::Set(items) | Value::Bag(items) => {
            if items.is_empty() {
                return Some(Formula::box_(Formula::is(Value::Unit)));
            }
            let each: Option<Vec<Formula>> = items.iter().map(canonical_formula).collect();
            Some(Formula::box_(Formula::or_all(each?)?))
        }
        Value::OrSet(items) => {
            let first = items.first()?;
            Some(Formula::diamond(canonical_formula(first)?))
        }
        _ => unreachable!("all shapes covered"),
    }
}

/// Construct a formula `φ ∈ Th(y) \ Th(x)` whenever `x ⋢ y`, for objects of
/// the same type.  Returns `None` when `x ⊑ y` (no separating formula exists
/// by Proposition 3.4) or when the construction cannot produce a witness
/// (this can happen for objects containing empty or-sets, and — a genuine
/// subtlety of the ∨-only language, measured by experiment E10 — for or-sets
/// whose elements themselves contain or-sets).
///
/// Whenever a formula is returned it is *sound*: it is entailed by `y` and
/// not entailed by `x` (this is asserted in debug builds and re-checked by
/// the property tests).
pub fn separating_formula(base: BaseOrder, x: &Value, y: &Value) -> Option<Formula> {
    if object_leq(base, x, y) {
        return None;
    }
    let avoid = [x];
    let phi = against(base, y, &avoid)?;
    debug_assert!(entails(base, y, &phi), "separating formula must hold at y");
    debug_assert!(!entails(base, x, &phi), "separating formula must fail at x");
    Some(phi)
}

/// Construct a formula `φ ∈ Th(y)` with `φ ∉ Th(a)` for every `a ∈ avoid`.
///
/// Precondition: every `a ∈ avoid` satisfies `a ⋢ y` (callers guarantee it;
/// the function re-checks and returns `None` otherwise, because
/// `a ⊑ y ⇒ Th(a) ⊇ Th(y)` makes the task impossible).
fn against(base: BaseOrder, y: &Value, avoid: &[&Value]) -> Option<Formula> {
    if avoid.iter().any(|a| object_leq(base, a, y)) {
        return None;
    }
    // Objects of a different shape than `y` falsify every formula built from
    // `y`'s outermost constructor, so only same-shape objects need handling.
    let same_shape: Vec<&Value> = avoid
        .iter()
        .copied()
        .filter(|a| same_constructor(a, y))
        .collect();
    if same_shape.is_empty() {
        return canonical_formula(y);
    }
    match y {
        v if v.is_base() => Some(Formula::is(v.clone())),
        Value::Pair(y1, y2) => {
            let mut left_avoid: Vec<&Value> = Vec::new();
            let mut right_avoid: Vec<&Value> = Vec::new();
            for a in &same_shape {
                let (a1, a2) = a.as_pair().expect("same shape");
                if !object_leq(base, a1, y1) {
                    left_avoid.push(a1);
                } else {
                    // a ⋢ y and a1 ⊑ y1, so the second component must fail
                    right_avoid.push(a2);
                }
            }
            let psi1 = against(base, y1, &left_avoid)?;
            let psi2 = against(base, y2, &right_avoid)?;
            Some(Formula::both(psi1, psi2))
        }
        Value::Set(ys) | Value::Bag(ys) => {
            // For every avoided set pick a witness element with nothing above
            // it in `ys`; the formula must fail at all these witnesses.
            let mut witnesses: Vec<&Value> = Vec::new();
            for a in &same_shape {
                let elems = a.elements().expect("same shape");
                let w = elems
                    .iter()
                    .find(|e| !ys.iter().any(|yj| object_leq(base, e, yj)))?;
                witnesses.push(w);
            }
            if ys.is_empty() {
                // Th({}) contains every box formula; pick a body refuted by
                // the shape of the witnesses.
                let body = refuting_for_shape(witnesses[0]);
                if witnesses.iter().any(|w| entails(base, w, &body)) {
                    return None;
                }
                return Some(Formula::box_(body));
            }
            let parts: Vec<Formula> = ys
                .iter()
                .map(|yj| against(base, yj, &witnesses))
                .collect::<Option<_>>()?;
            Some(Formula::box_(Formula::or_all(parts)?))
        }
        Value::OrSet(ys) => {
            if ys.is_empty() {
                // Th(< >) is empty under the minimal reading: no witness.
                return None;
            }
            // Gather every element of every avoided or-set; a candidate
            // member y_j of `ys` is viable if none of these elements lies
            // below it (otherwise that element's theory would contain any
            // formula of Th(y_j)).
            let all_elems: Vec<&Value> = same_shape
                .iter()
                .flat_map(|a| a.elements().expect("same shape").iter())
                .collect();
            for yj in ys {
                let viable = !all_elems.iter().any(|e| object_leq(base, e, yj));
                if !viable {
                    continue;
                }
                if let Some(psi) = against(base, yj, &all_elems) {
                    return Some(Formula::diamond(psi));
                }
            }
            None
        }
        _ => unreachable!("all shapes covered"),
    }
}

/// Do two values share the same outermost constructor (base/pair/set/or-set/
/// bag)?  Base constants of different base types still count as "same shape"
/// because the `is(·)` atoms compare them through the base order, which
/// already makes them incomparable.
fn same_constructor(a: &Value, b: &Value) -> bool {
    match (a, b) {
        _ if a.is_base() && b.is_base() => true,
        (Value::Pair(..), Value::Pair(..)) => true,
        (Value::Set(_), Value::Set(_)) => true,
        (Value::OrSet(_), Value::OrSet(_)) => true,
        (Value::Bag(_), Value::Bag(_)) => true,
        _ => false,
    }
}

/// A formula that no value of the same shape as `v` entails (used when the
/// comparison target is the empty set, whose theory contains every box
/// formula).
fn refuting_for_shape(v: &Value) -> Formula {
    match v {
        x if x.is_base() => Formula::both(Formula::is(Value::Unit), Formula::is(Value::Unit)),
        Value::Pair(..) => Formula::is(Value::Unit),
        Value::Set(_) | Value::Bag(_) => Formula::diamond(Formula::is(Value::Unit)),
        Value::OrSet(_) => Formula::box_(Formula::is(Value::Unit)),
        _ => unreachable!("all shapes covered"),
    }
}

/// Check the left-to-right direction of Proposition 3.4 on a specific
/// formula: if `x ⊑ y` then `φ ∈ Th(y)` implies `φ ∈ Th(x)`.
pub fn monotone_on(base: BaseOrder, x: &Value, y: &Value, phi: &Formula) -> bool {
    !object_leq(base, x, y) || !entails(base, y, phi) || entails(base, x, phi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entailment_at_base_values_follows_the_base_order() {
        let base = BaseOrder::FlatWithNull;
        assert!(entails(base, &Value::Null, &Formula::is(Value::Int(3))));
        assert!(entails(base, &Value::Int(3), &Formula::is(Value::Int(3))));
        assert!(!entails(base, &Value::Int(4), &Formula::is(Value::Int(3))));
    }

    #[test]
    fn box_means_all_elements() {
        let base = BaseOrder::NumericLeq;
        let s = Value::int_set([1, 2, 3]);
        assert!(entails(
            base,
            &s,
            &Formula::box_(Formula::is(Value::Int(5)))
        ));
        assert!(!entails(
            base,
            &s,
            &Formula::box_(Formula::is(Value::Int(2)))
        ));
        // empty set satisfies every box formula
        assert!(entails(
            base,
            &Value::empty_set(),
            &Formula::box_(Formula::is(Value::Int(0)))
        ));
    }

    #[test]
    fn diamond_means_some_element() {
        let base = BaseOrder::NumericLeq;
        let o = Value::int_orset([1, 5]);
        assert!(entails(
            base,
            &o,
            &Formula::diamond(Formula::is(Value::Int(1)))
        ));
        assert!(!entails(
            base,
            &o,
            &Formula::diamond(Formula::is(Value::Int(0)))
        ));
        // empty or-set satisfies no diamond formula
        assert!(!entails(
            base,
            &Value::empty_orset(),
            &Formula::diamond(Formula::is(Value::Int(1)))
        ));
    }

    #[test]
    fn disjunction_closure() {
        let base = BaseOrder::FlatWithNull;
        let v = Value::Int(3);
        let phi = Formula::or(Formula::is(Value::Int(3)), Formula::is(Value::Int(9)));
        assert!(entails(base, &v, &phi));
        let psi = Formula::or(Formula::is(Value::Int(7)), Formula::is(Value::Int(9)));
        assert!(!entails(base, &v, &psi));
    }

    #[test]
    fn canonical_formula_is_always_entailed() {
        let base = BaseOrder::FlatWithNull;
        let samples = [
            Value::Int(3),
            Value::pair(Value::Int(1), Value::str("x")),
            Value::int_set([1, 2, 3]),
            Value::int_orset([4, 5]),
            Value::set([Value::int_orset([1, 2]), Value::int_orset([3])]),
            Value::empty_set(),
        ];
        for v in &samples {
            let phi = canonical_formula(v).unwrap();
            assert!(entails(base, v, &phi), "canonical formula must hold at {v}");
        }
    }

    #[test]
    fn separating_formula_exists_exactly_when_not_below() {
        let base = BaseOrder::FlatWithNull;
        let pairs = [
            (Value::int_set([1]), Value::int_set([1, 2])),
            (Value::int_set([1, 3]), Value::int_set([1, 2])),
            (Value::int_orset([1, 2]), Value::int_orset([1])),
            (Value::int_orset([1]), Value::int_orset([1, 2])),
            (
                Value::pair(Value::Null, Value::Int(2)),
                Value::pair(Value::Int(1), Value::Int(2)),
            ),
            (
                Value::pair(Value::Int(1), Value::Int(2)),
                Value::pair(Value::Null, Value::Int(2)),
            ),
        ];
        for (x, y) in &pairs {
            let leq = object_leq(base, x, y);
            let w = separating_formula(base, x, y);
            assert_eq!(w.is_none(), leq, "witness existence for {x} vs {y}");
            if let Some(phi) = w {
                assert!(entails(base, y, &phi), "witness must hold at y={y}: {phi}");
                assert!(!entails(base, x, &phi), "witness must fail at x={x}: {phi}");
            }
        }
    }

    #[test]
    fn proposition_3_4_left_to_right_on_samples() {
        // x ⊑ y implies Th(x) ⊇ Th(y), spot-checked on generated formulae.
        let base = BaseOrder::FlatWithNull;
        let x = Value::set([Value::pair(Value::Null, Value::str("515"))]);
        let y = Value::set([
            Value::pair(Value::str("Joe"), Value::str("515")),
            Value::pair(Value::str("Bill"), Value::str("212")),
        ]);
        assert!(object_leq(base, &x, &y));
        let formulas = [
            canonical_formula(&y).unwrap(),
            Formula::box_(Formula::or(
                Formula::both(
                    Formula::is(Value::str("Joe")),
                    Formula::is(Value::str("515")),
                ),
                Formula::both(
                    Formula::is(Value::str("Bill")),
                    Formula::is(Value::str("212")),
                ),
            )),
        ];
        for phi in &formulas {
            assert!(monotone_on(base, &x, &y, phi));
        }
    }

    #[test]
    fn separating_formula_on_nested_objects() {
        let base = BaseOrder::FlatWithNull;
        let x = Value::set([Value::int_orset([1, 2]), Value::int_orset([5])]);
        let y = Value::set([Value::int_orset([2]), Value::int_orset([7])]);
        // x ⋢ y because <5> has nothing above it in y
        assert!(!object_leq(base, &x, &y));
        let phi = separating_formula(base, &x, &y).unwrap();
        assert!(entails(base, &y, &phi));
        assert!(!entails(base, &x, &phi));
    }
}
