//! # or-object — complex objects with or-sets
//!
//! The object-model substrate for the reproduction of
//! *Semantic Representations and Query Languages for Or-Sets*
//! (Libkin & Wong, PODS 1993 / JCSS 1996).
//!
//! An **or-set** `<x₁, …, xₙ>` is structurally a collection of alternatives
//! but conceptually denotes *one* of its members.  This crate provides:
//!
//! * [`types::Type`] / [`value::Value`] — the object types and complex
//!   objects of the paper (base types, products, sets `{·}`, or-sets `<·>`,
//!   and the internal multisets of Section 4), with canonical
//!   representations and the `size` measure of Section 6;
//! * [`base_order::BaseOrder`] and [`order`] — the partial-information
//!   orders of Section 3: base orders, the Hoare / Smyth / Plotkin orders on
//!   finite sets, and the induced structural order on objects;
//! * [`antichain`] — the antichain semantics (`max` for sets, `min` for
//!   or-sets);
//! * [`alpha`] — the interaction operator `alpha : {<t>} → <{t}>`, its
//!   duplicate-preserving variant `alpha_d`, and the antichain isomorphisms
//!   `alpha_a` / `beta_a` of Theorem 3.3;
//! * [`intern`] — a hash-consing arena so the (worst-case exponentially
//!   many) possible worlds produced by α-expansion share structure and
//!   compare/dedup in O(1) by interned id;
//! * [`snapshot`] — frozen, shareable database snapshots (named relations
//!   interned against an `Arc`-frozen arena) with copy-on-write republish
//!   and amortized compaction — the unit concurrent readers share;
//! * [`steps`] — the elementary information-improvement steps whose closures
//!   characterize the Hoare and Smyth orders (Propositions 3.1 / 3.2);
//! * [`theory`] — modal-logic theories of objects and the order
//!   characterization of Proposition 3.4;
//! * [`generate`] — deterministic random generators for tests and benchmark
//!   workloads.
//!
//! The query languages or-NRA and or-NRA⁺ themselves live in the `or-nra`
//! crate, which builds on this one.
//!
//! ## Quick example
//!
//! ```
//! use or_object::prelude::*;
//!
//! // A design component that can be built from module 4 or module 7.
//! let component = Value::pair(Value::str("A"), Value::int_orset([4, 7]));
//! assert_eq!(component.to_string(), "(\"A\", <4, 7>)");
//!
//! // alpha combines a set of or-sets in all possible ways.
//! let choices = Value::set([Value::int_orset([1, 2]), Value::int_orset([3])]);
//! let combined = alpha::alpha_set(&choices).unwrap();
//! assert_eq!(combined, Value::orset([
//!     Value::int_set([1, 3]),
//!     Value::int_set([2, 3]),
//! ]));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod alpha;
pub mod antichain;
pub mod base_order;
pub mod generate;
pub mod intern;
pub mod order;
pub mod snapshot;
pub mod steps;
pub mod theory;
pub mod types;
pub mod value;

/// Convenient re-exports of the most frequently used items.
pub mod prelude {
    pub use crate::alpha;
    pub use crate::antichain::{is_antichain_object, to_antichain};
    pub use crate::base_order::BaseOrder;
    pub use crate::generate::{GenConfig, Generator};
    pub use crate::intern::{InternId, Interner};
    pub use crate::order::{object_leq, object_lt};
    pub use crate::snapshot::{Published, Snapshot};
    pub use crate::theory::{entails, separating_formula, Formula};
    pub use crate::types::Type;
    pub use crate::value::{Value, ValueError};
}

pub use base_order::BaseOrder;
pub use types::Type;
pub use value::{Value, ValueError};
