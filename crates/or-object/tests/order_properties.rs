//! Property-based tests for the order-theoretic core of `or-object`:
//! the Hoare/Smyth/Plotkin orders, the antichain operations, and `alpha`.

use proptest::prelude::*;

use or_object::alpha::{alpha_bag, alpha_set, ChoiceFunctions};
use or_object::antichain::{is_antichain, max_elems, min_elems};
use or_object::order::{hoare, plotkin, smyth};
use or_object::Value;

/// Small integer sets, as plain vectors (the element order used below is the
/// divisibility order, which has interesting chains and antichains).
fn small_sets() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(1u8..=12, 0..6).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

fn divides(a: &u8, b: &u8) -> bool {
    // `u8::is_multiple_of` needs Rust 1.87; spelled out for the 1.75 MSRV
    if *a == 0 {
        *b == 0
    } else {
        b % a == 0
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Hoare and Smyth are preorders: reflexive and transitive.
    #[test]
    fn hoare_and_smyth_are_preorders(a in small_sets(), b in small_sets(), c in small_sets()) {
        prop_assert!(hoare(&a, &a, divides));
        prop_assert!(smyth(&a, &a, divides));
        if hoare(&a, &b, divides) && hoare(&b, &c, divides) {
            prop_assert!(hoare(&a, &c, divides));
        }
        if smyth(&a, &b, divides) && smyth(&b, &c, divides) {
            prop_assert!(smyth(&a, &c, divides));
        }
    }

    /// The Plotkin order is exactly the conjunction of the other two.
    #[test]
    fn plotkin_is_the_conjunction(a in small_sets(), b in small_sets()) {
        prop_assert_eq!(
            plotkin(&a, &b, divides),
            hoare(&a, &b, divides) && smyth(&a, &b, divides)
        );
    }

    /// Taking maximal (minimal) elements yields an antichain that is
    /// Hoare- (Smyth-) equivalent to the original set.
    #[test]
    fn max_and_min_produce_equivalent_antichains(a in small_sets()) {
        let maxes = max_elems(&a, divides);
        prop_assert!(is_antichain(&maxes, divides));
        prop_assert!(hoare(&a, &maxes, divides) && hoare(&maxes, &a, divides));

        let mins = min_elems(&a, divides);
        prop_assert!(is_antichain(&mins, divides));
        prop_assert!(smyth(&a, &mins, divides) && smyth(&mins, &a, divides));
    }

    /// Adding an element never decreases a set in the Hoare order, and
    /// removing one never decreases an or-set in the Smyth order.
    #[test]
    fn information_steps_go_up(a in small_sets(), x in 1u8..=12) {
        let mut bigger = a.clone();
        if !bigger.contains(&x) {
            bigger.push(x);
        }
        prop_assert!(hoare(&a, &bigger, divides));
        if a.len() > 1 {
            let smaller: Vec<u8> = a[1..].to_vec();
            prop_assert!(smyth(&a, &smaller, divides));
        }
    }

    /// The empty or-set is Smyth-comparable only with itself.
    #[test]
    fn empty_orset_is_isolated(a in small_sets()) {
        let empty: Vec<u8> = Vec::new();
        prop_assert_eq!(smyth(&a, &empty, divides), a.is_empty());
        prop_assert_eq!(smyth(&empty, &a, divides), a.is_empty());
    }

    /// `alpha` produces exactly one set per choice function (before
    /// set-level deduplication), and every produced set picks one element
    /// from each member or-set.
    #[test]
    fn alpha_outputs_are_choice_images(
        orsets in proptest::collection::vec(proptest::collection::vec(0i64..6, 1..4), 0..4)
    ) {
        let input = Value::set(orsets.iter().map(|o| Value::int_orset(o.iter().copied())));
        let out = alpha_set(&input).unwrap();
        let member_orsets: Vec<Vec<Value>> = input
            .elements()
            .unwrap()
            .iter()
            .map(|o| o.elements().unwrap().to_vec())
            .collect();
        let total = ChoiceFunctions::count_total(&member_orsets);
        let produced = out.elements().unwrap().len() as u128;
        prop_assert!(produced <= total.max(1));
        for set in out.elements().unwrap() {
            // every member or-set is hit by the choice
            for orset in &member_orsets {
                prop_assert!(orset.iter().any(|x| set.elements().unwrap().contains(x)));
            }
            // and nothing outside the union of the member or-sets appears
            for x in set.elements().unwrap() {
                prop_assert!(member_orsets.iter().any(|o| o.contains(x)));
            }
        }
    }

    /// `alpha_d` on the bag form never produces fewer combinations than
    /// `alpha` on the set form (duplicates can only add choices).
    #[test]
    fn bag_alpha_refines_set_alpha(
        orsets in proptest::collection::vec(proptest::collection::vec(0i64..4, 1..3), 1..4)
    ) {
        let as_set = Value::set(orsets.iter().map(|o| Value::int_orset(o.iter().copied())));
        let as_bag = Value::bag(orsets.iter().map(|o| Value::int_orset(o.iter().copied())));
        let via_set = alpha_set(&as_set).unwrap();
        let via_bag = alpha_bag(&as_bag).unwrap();
        prop_assert!(via_set.elements().unwrap().len() <= via_bag.elements().unwrap().len());
    }

    /// Canonical values: building a set twice from shuffled input gives the
    /// same object, and `size` is permutation-invariant.
    #[test]
    fn value_canonicalization(mut items in proptest::collection::vec(-9i64..9, 0..8)) {
        let a = Value::int_set(items.clone());
        items.reverse();
        let b = Value::int_set(items.clone());
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.size(), b.size());
        let o1 = Value::int_orset(items.clone());
        let half = items.len() / 2;
        items.rotate_left(half);
        let o2 = Value::int_orset(items);
        prop_assert_eq!(o1, o2);
    }
}
