//! E10 (Proposition 3.4): deciding `x ⊑ y` directly vs through the modal
//! theory (separating-formula search + entailment checks).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use or_object::generate::{GenConfig, Generator};
use or_object::order::object_leq;
use or_object::theory::{canonical_formula, entails, separating_formula};
use or_object::{BaseOrder, Type};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_theory_order");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    let base = BaseOrder::FlatWithNull;
    let ty = Type::set(Type::orset(Type::prod(Type::Int, Type::Bool)));
    let config = GenConfig {
        max_depth: 3,
        max_width: 3,
        int_range: 4,
        ..GenConfig::default()
    };
    let mut gen = Generator::new(7, config);
    let pairs: Vec<_> = (0..20)
        .map(|_| (gen.object_of(&ty), gen.object_of(&ty)))
        .collect();
    group.bench_function("direct_order", |b| {
        b.iter(|| pairs.iter().filter(|(x, y)| object_leq(base, x, y)).count())
    });
    group.bench_function("separating_formula_search", |b| {
        b.iter(|| {
            pairs
                .iter()
                .filter(|(x, y)| separating_formula(base, x, y).is_none())
                .count()
        })
    });
    group.bench_function("entailment_of_canonical_formulae", |b| {
        b.iter(|| {
            pairs
                .iter()
                .filter(|(x, y)| match canonical_formula(y) {
                    Some(phi) => entails(base, x, &phi),
                    None => false,
                })
                .count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
