//! E4 (Theorems 6.3/6.5): size of normal forms — measuring the full cost
//! report (normalization plus the closed-form bounds) on the witness family
//! and on design-template workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use or_db::Workload;
use or_nra::cost;
use or_object::generate::Generator;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e04_size_bound");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    for k in [3usize, 5, 7] {
        let witness = Generator::tightness_witness(k);
        group.bench_with_input(
            BenchmarkId::new("measure_witness", 3 * k),
            &witness,
            |b, v| b.iter(|| cost::measure(v)),
        );
    }
    for components in [3usize, 5, 7] {
        let template = Workload::new(17).design_object(components, 3);
        group.bench_with_input(
            BenchmarkId::new("measure_design_template", components),
            &template,
            |b, v| b.iter(|| cost::measure(v)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
