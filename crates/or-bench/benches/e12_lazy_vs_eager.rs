//! E12 (Section 7 future work): lazy vs eager normalization for existential
//! queries — early exit on satisfiable instances, full scans otherwise, on
//! both CNF encodings and design-template budget queries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use or_db::Workload;
use or_logic::cnf::CnfGenerator;
use or_logic::encode;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_lazy_vs_eager");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(500));
    let sat = CnfGenerator::new(404).planted_satisfiable(6, 8, 3);
    let unsat = CnfGenerator::new(405).unsatisfiable(6, 8, 3);
    group.bench_function("lazy_on_satisfiable", |b| {
        b.iter(|| encode::sat_by_lazy_normalization(&sat).unwrap().satisfiable)
    });
    group.bench_function("eager_on_satisfiable", |b| {
        b.iter(|| encode::sat_by_eager_normalization(&sat).unwrap())
    });
    group.bench_function("lazy_on_unsatisfiable", |b| {
        b.iter(|| {
            encode::sat_by_lazy_normalization(&unsat)
                .unwrap()
                .satisfiable
        })
    });
    group.bench_function("eager_on_unsatisfiable", |b| {
        b.iter(|| encode::sat_by_eager_normalization(&unsat).unwrap())
    });

    let template = Workload::new(9).uniform_design_template(8, 3);
    group.bench_function("design_budget_lazy_hit", |b| {
        b.iter(|| {
            template
                .exists_design_within_budget(8 * 90)
                .unwrap()
                .0
                .is_some()
        })
    });
    group.bench_function("design_budget_lazy_miss", |b| {
        b.iter(|| {
            template
                .exists_design_within_budget(8 * 9)
                .unwrap()
                .0
                .is_some()
        })
    });
    group.bench_function("design_enumerate_all", |b| {
        b.iter(|| template.completed_designs().len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
