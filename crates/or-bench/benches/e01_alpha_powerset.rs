//! E1 (Proposition 2.1): `powerset` defined from `alpha` vs the native
//! `powerset` baseline — both exponential, same outputs, comparable cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use or_nra::derived::powerset_via_alpha;
use or_nra::morphism::Morphism;
use or_nra::prelude::eval;
use or_object::Value;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e01_alpha_powerset");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    let via_alpha = powerset_via_alpha();
    for n in [4usize, 6, 8, 10] {
        let input = Value::int_set(0..n as i64);
        group.bench_with_input(BenchmarkId::new("powerset_via_alpha", n), &input, |b, v| {
            b.iter(|| eval(&via_alpha, v).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("native_powerset", n), &input, |b, v| {
            b.iter(|| eval(&Morphism::Powerset, v).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
