//! E8 (Propositions 3.1/3.2): direct order tests vs the closure of the
//! elementary information-improvement steps.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use or_object::order::{hoare, smyth};
use or_object::steps::{reachable, ClosureConfig, StepKind};

fn zigzag(a: &u8, b: &u8) -> bool {
    a == b || matches!((a, b), (0, 2) | (0, 3) | (1, 3) | (1, 4))
}

fn subsets() -> Vec<Vec<u8>> {
    (0u32..32)
        .map(|mask| (0u8..5).filter(|i| mask & (1 << i) != 0).collect())
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e08_order_closure");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    let all = subsets();
    group.bench_function("hoare_direct_all_pairs", |b| {
        b.iter(|| {
            all.iter()
                .flat_map(|x| all.iter().map(move |y| hoare(x, y, zigzag)))
                .filter(|&r| r)
                .count()
        })
    });
    group.bench_function("smyth_direct_all_pairs", |b| {
        b.iter(|| {
            all.iter()
                .flat_map(|x| all.iter().map(move |y| smyth(x, y, zigzag)))
                .filter(|&r| r)
                .count()
        })
    });
    group.bench_function("hoare_closure_sample", |b| {
        b.iter(|| {
            reachable(
                &[0u8],
                &[2, 3, 4],
                zigzag,
                StepKind::Set,
                ClosureConfig::default(),
            )
        })
    });
    group.bench_function("smyth_closure_sample", |b| {
        b.iter(|| {
            reachable(
                &[0u8, 1, 4],
                &[2, 4],
                zigzag,
                StepKind::OrSet,
                ClosureConfig::default(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
