//! E7 (Section 6): existential queries over normal forms are SAT — eager
//! normalization vs lazy enumeration vs the DPLL baseline on random 3-CNF.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use or_logic::cnf::CnfGenerator;
use or_logic::encode;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e07_sat_existential");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(500));
    for vars in [4u32, 6, 8] {
        let clauses = ((vars as usize * 3) / 2).min(9);
        let cnf = CnfGenerator::new(101 + u64::from(vars)).random_kcnf(vars, clauses, 3);
        group.bench_with_input(BenchmarkId::new("eager_normalize", vars), &cnf, |b, f| {
            b.iter(|| encode::sat_by_eager_normalization(f).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("lazy_normalize", vars), &cnf, |b, f| {
            b.iter(|| encode::sat_by_lazy_normalization(f).unwrap().satisfiable)
        });
        group.bench_with_input(BenchmarkId::new("dpll", vars), &cnf, |b, f| {
            b.iter(|| encode::sat_by_dpll(f))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
