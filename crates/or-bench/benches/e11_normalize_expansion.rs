//! E11 (Corollary 4.3): the `normalize` primitive vs its expansion into plain
//! or-NRA (tagging, mirrored rewriting, untagging).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use or_nra::expand::{expand_normalize, expand_normalize_innermost};
use or_nra::normalize::normalize_value_typed;
use or_nra::prelude::eval;
use or_object::{Type, Value};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_normalize_expansion");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    let ty = Type::prod(Type::set(Type::orset(Type::Int)), Type::orset(Type::Int));
    let v = Value::pair(
        Value::set((0..5).map(|i| Value::int_orset([2 * i, 2 * i + 1]))),
        Value::int_orset([100, 200, 300]),
    );
    let outermost = expand_normalize(&ty).unwrap();
    let innermost = expand_normalize_innermost(&ty).unwrap();
    group.bench_function("primitive_normalize", |b| {
        b.iter(|| normalize_value_typed(&v, &ty))
    });
    group.bench_function("expanded_outermost", |b| {
        b.iter(|| eval(&outermost, &v).unwrap())
    });
    group.bench_function("expanded_innermost", |b| {
        b.iter(|| eval(&innermost, &v).unwrap())
    });
    group.bench_function("build_expansion", |b| {
        b.iter(|| expand_normalize(&ty).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
