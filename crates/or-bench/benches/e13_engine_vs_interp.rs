//! E13: the streaming parallel physical engine (`or-engine`) against the
//! tree-walking interpreter, on the partitioned-scan and per-row
//! α-expansion workloads.  This is the headline perf artifact of the engine
//! PR: the same or-NRA⁺ query, lowered once, executed three ways.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use or_bench::experiments::{
    alternatives_relation, e13_expand_query, e13_planned_query, e13_scan_query, fanout_relation,
    priced_relation,
};
use or_engine::{run_plan, run_plan_optimized, ExecConfig};
use or_nra::optimize::lower;
use or_nra::prelude::eval;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_engine_vs_interp");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(500));

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let seq = ExecConfig::default();
    let par = ExecConfig::default().with_workers(workers);

    // -- partitioned scan: filter + project over (id, cost) records --------
    let scan_query = e13_scan_query();
    let scan_plan = lower(&scan_query).expect("scan query is lowerable");
    for rows in [2_000usize, 10_000] {
        let relation = priced_relation(rows);
        let value = relation.to_value();
        group.bench_with_input(BenchmarkId::new("scan/interp", rows), &rows, |b, _| {
            b.iter(|| eval(&scan_query, &value).expect("interpreter"))
        });
        group.bench_with_input(BenchmarkId::new("scan/engine_seq", rows), &rows, |b, _| {
            b.iter(|| run_plan(&scan_plan, &[&relation], seq).expect("engine"))
        });
        group.bench_with_input(BenchmarkId::new("scan/engine_par", rows), &rows, |b, _| {
            b.iter(|| run_plan(&scan_plan, &[&relation], par).expect("engine"))
        });
    }

    // -- per-row α-expansion ------------------------------------------------
    let expand_query = e13_expand_query();
    let expand_plan = lower(&expand_query).expect("expand query is lowerable");
    let relation = alternatives_relation(500);
    let value = relation.to_value();
    group.bench_function("expand/interp", |b| {
        b.iter(|| eval(&expand_query, &value).expect("interpreter"))
    });
    group.bench_function("expand/engine_seq", |b| {
        b.iter(|| run_plan(&expand_plan, &[&relation], seq).expect("engine"))
    });
    group.bench_function("expand/engine_par", |b| {
        b.iter(|| run_plan(&expand_plan, &[&relation], par).expect("engine"))
    });

    // -- high-fanout α-expansion (32 worlds per row) ------------------------
    let fanout = fanout_relation(200);
    let fanout_value = fanout.to_value();
    group.bench_function("expand_fanout8/interp", |b| {
        b.iter(|| eval(&expand_query, &fanout_value).expect("interpreter"))
    });
    group.bench_function("expand_fanout8/engine_seq", |b| {
        b.iter(|| run_plan(&expand_plan, &[&fanout], seq).expect("engine"))
    });
    group.bench_function("expand_fanout8/engine_par", |b| {
        b.iter(|| run_plan(&expand_plan, &[&fanout], par).expect("engine"))
    });

    // -- expand-then-filter, with and without the expand planner ------------
    let planned_query = e13_planned_query(50);
    let planned_plan = lower(&planned_query).expect("planned query is lowerable");
    group.bench_function("expand_planned/interp", |b| {
        b.iter(|| eval(&planned_query, &fanout_value).expect("interpreter"))
    });
    group.bench_function("expand_planned/engine_unplanned", |b| {
        b.iter(|| run_plan(&planned_plan, &[&fanout], seq).expect("engine"))
    });
    group.bench_function("expand_planned/engine_planned", |b| {
        b.iter(|| run_plan_optimized(&planned_plan, &[&fanout], par).expect("engine"))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
