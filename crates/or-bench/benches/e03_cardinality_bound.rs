//! E3 (Theorem 6.2): normalization of the tightness-witness family — the
//! cardinality of the normal form grows exactly as `3^{n/3}`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use or_nra::normalize::{normalize_value, possibility_count};
use or_object::generate::Generator;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e03_cardinality_bound");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    for k in [3usize, 5, 7, 8] {
        let witness = Generator::tightness_witness(k);
        group.bench_with_input(
            BenchmarkId::new("normalize_witness", 3 * k),
            &witness,
            |b, v| b.iter(|| normalize_value(v)),
        );
        group.bench_with_input(
            BenchmarkId::new("possibility_count", 3 * k),
            &witness,
            |b, v| b.iter(|| possibility_count(v)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
