//! E15: concurrent session replay — N client threads replay the e14
//! statements against ONE shared, frozen session snapshot (the or-server
//! serving story as a library benchmark).  Per-query engine workers are
//! pinned to 1 so the client count is the only parallelism axis; the
//! interesting comparison is how per-fan-out wall time moves as clients
//! share the frozen arena.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

use or_bench::experiments::{e15_core, e15_fanout};
use or_engine::ExecConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_concurrent_replay");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(500));

    let scale = 4_000usize;
    let core = Arc::new(e15_core(scale));
    let config = ExecConfig::default().with_pinned_workers(1);

    for clients in [1usize, 2, 4, 8] {
        let core = Arc::clone(&core);
        group.bench_function(format!("replay/clients_{clients}"), move |b| {
            b.iter(|| e15_fanout(&core, clients, config))
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
