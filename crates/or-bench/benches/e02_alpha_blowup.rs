//! E2 (Section 2): one `alpha` application over `n` two-element or-sets
//! produces `2^n` sets; running time follows the output size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use or_object::alpha::alpha_set;
use or_object::generate::Generator;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e02_alpha_blowup");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    for n in [4usize, 8, 12, 14] {
        let input = Generator::alpha_blowup_witness(n);
        group.bench_with_input(BenchmarkId::new("alpha", n), &input, |b, v| {
            b.iter(|| alpha_set(v).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
