//! E9 (Theorem 3.3): the antichain isomorphisms `alpha_a` / `beta_a` — cost
//! of the round trip on antichain objects of growing width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use or_object::alpha::{alpha_antichain, beta_antichain};
use or_object::antichain::to_antichain;
use or_object::generate::{GenConfig, Generator};
use or_object::{BaseOrder, Type};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e09_iso_roundtrip");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    let base = BaseOrder::FlatWithNull;
    let ty = Type::set(Type::orset(Type::Int));
    for width in [2usize, 3, 4] {
        let config = GenConfig {
            max_depth: 2,
            max_width: width,
            int_range: 30,
            ..GenConfig::default()
        };
        let mut gen = Generator::new(55, config);
        let v = to_antichain(base, &gen.object_of(&ty));
        group.bench_with_input(
            BenchmarkId::new("alpha_a_then_beta_a", width),
            &v,
            |b, x| {
                b.iter(|| {
                    let a = alpha_antichain(base, x).unwrap();
                    beta_antichain(base, &a).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
