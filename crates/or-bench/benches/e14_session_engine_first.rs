//! E14: an OrQL session script replayed under the session's three execution
//! modes — the tree-walking interpreter, the engine-first mode (the engine
//! serves every plannable statement), and the engine-checked differential
//! mode (engine + interpreter cross-check).  This is the user-facing
//! counterpart of E13: the same statements a REPL user types, timed
//! end-to-end through parse, type-check and execution.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use or_bench::experiments::{e14_replay, e14_session, hardware_workers};
use or_engine::ExecConfig;
use or_lang::session::ExecMode;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_session_engine_first");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(500));

    let scale = 4_000usize;
    let par = ExecConfig::default().with_workers(hardware_workers());

    let mut interp = e14_session(ExecMode::Interp, ExecConfig::default(), scale);
    group.bench_function("session/interp", |b| b.iter(|| e14_replay(&mut interp)));

    let mut engine_seq = e14_session(ExecMode::Engine, ExecConfig::default(), scale);
    group.bench_function("session/engine_seq", |b| {
        b.iter(|| e14_replay(&mut engine_seq))
    });

    let mut engine_par = e14_session(ExecMode::Engine, par, scale);
    group.bench_function("session/engine_par", |b| {
        b.iter(|| e14_replay(&mut engine_par))
    });

    let mut checked = e14_session(ExecMode::EngineChecked, par, scale);
    group.bench_function("session/engine_checked", |b| {
        b.iter(|| e14_replay(&mut checked))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
