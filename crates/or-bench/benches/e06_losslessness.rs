//! E6 (Theorem 5.1, Figure 2): the cost of querying through `preserve(f)`
//! after normalizing once, versus normalizing the query result.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use or_nra::morphism::Morphism as M;
use or_nra::prelude::eval;
use or_nra::preserve::{losslessness_sides, preserve};
use or_object::Value;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e06_losslessness");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    // f = ormap(plus) over an or-set of pairs — within the Theorem 5.1 class
    let f = M::ormap(M::Prim(or_nra::Prim::Plus));
    let x = Value::orset((0..40).map(|i| Value::pair(Value::Int(i), Value::Int(i + 1))));
    group.bench_function("both_sides_of_the_equation", |b| {
        b.iter(|| losslessness_sides(&f, &x).unwrap())
    });
    let pf = preserve(&f);
    let normalized = eval(&M::OrEta.then(M::Normalize), &x).unwrap();
    group.bench_function("preserve_f_on_normal_form", |b| {
        b.iter(|| eval(&pf, &normalized).unwrap())
    });
    group.bench_function("f_then_normalize", |b| {
        b.iter(|| {
            eval(
                &M::compose(M::Normalize, M::compose(M::OrEta, f.clone())),
                &x,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
