//! E5 (Theorem 4.2): coherence — different rewrite strategies reach the same
//! normal form at different costs; the direct recursive implementation is the
//! reference point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use or_nra::normalize::{normalize_value_typed, normalize_with_strategy, RewriteStrategy};
use or_object::{Type, Value};

fn workload() -> (Value, Type) {
    // the Section 4 example scaled up: a set of or-sets paired with an or-set
    let v = Value::pair(
        Value::set((0..5).map(|i| Value::int_orset([3 * i, 3 * i + 1, 3 * i + 2]))),
        Value::int_orset([100, 200]),
    );
    let t = Type::prod(Type::set(Type::orset(Type::Int)), Type::orset(Type::Int));
    (v, t)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e05_coherence_strategies");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(100))
        .measurement_time(Duration::from_millis(400));
    let (v, t) = workload();
    group.bench_function("direct_recursive", |b| {
        b.iter(|| normalize_value_typed(&v, &t))
    });
    for strategy in RewriteStrategy::portfolio() {
        group.bench_with_input(
            BenchmarkId::new("strategy", format!("{strategy:?}")),
            &strategy,
            |b, s| b.iter(|| normalize_with_strategy(&v, &t, *s).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
