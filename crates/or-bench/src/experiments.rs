//! The experiment suite: one function per experiment (E1–E12 reproduce the
//! paper's claims; E13 measures the physical engine against the
//! interpreter; E14 replays an OrQL session script under the session's
//! three execution modes).
//!
//! Each function runs the workload at moderate, laptop-friendly sizes and
//! returns a [`Table`] of the quantities the paper's corresponding claim is
//! about.  The Criterion benches in `benches/` time the same code paths; the
//! `experiments` binary prints these tables.

use std::time::Instant;

use or_db::Workload;
use or_logic::cnf::CnfGenerator;
use or_logic::encode;
use or_nra::coherence::check_coherence;
use or_nra::cost;
use or_nra::derived::powerset_via_alpha;
use or_nra::expand::{expand_normalize, expand_normalize_innermost};
use or_nra::lazy::LazyNormalizer;
use or_nra::morphism::Morphism as M;
use or_nra::normalize::{normalize_value_typed, possibility_count, RewriteStrategy};
use or_nra::prelude::eval;
use or_nra::preserve::{is_lossless_on, lossless_preconditions, preserve};
use or_object::alpha::{alpha_antichain, alpha_set, beta_antichain};
use or_object::antichain::to_antichain;
use or_object::generate::{GenConfig, Generator};
use or_object::order::{hoare, object_leq, smyth};
use or_object::steps::{reachable, ClosureConfig, StepKind};
use or_object::theory::{entails, separating_formula};
use or_object::{BaseOrder, Type, Value};

use crate::table::Table;

fn ms(start: Instant) -> String {
    format!("{:.3}", start.elapsed().as_secs_f64() * 1e3)
}

/// E1 (Proposition 2.1): `powerset` defined from `alpha` coincides with the
/// native `powerset` baseline and both are exponential in the input size.
pub fn e01_alpha_powerset(max_n: usize) -> Table {
    let mut table = Table::new(
        "E1 (Prop 2.1): powerset via alpha vs native powerset",
        &[
            "n",
            "|powerset|",
            "via alpha",
            "native",
            "equal",
            "alpha ms",
            "native ms",
        ],
    );
    let via = powerset_via_alpha();
    for n in (2..=max_n).step_by(2) {
        let input = Value::int_set(0..n as i64);
        let t0 = Instant::now();
        let a = eval(&via, &input).expect("powerset via alpha");
        let alpha_ms = ms(t0);
        let t1 = Instant::now();
        let b = eval(&M::Powerset, &input).expect("native powerset");
        let native_ms = ms(t1);
        table.push_row(vec![
            n.to_string(),
            (1u64 << n).to_string(),
            a.elements().map_or(0, <[Value]>::len).to_string(),
            b.elements().map_or(0, <[Value]>::len).to_string(),
            (a == b).to_string(),
            alpha_ms,
            native_ms,
        ]);
    }
    table
}

/// E2 (Section 2): one application of `alpha` to `n` two-element or-sets
/// produces `2^n` sets.
pub fn e02_alpha_blowup(max_n: usize) -> Table {
    let mut table = Table::new(
        "E2 (Sec. 2): exponential blow-up of a single alpha application",
        &["n or-sets", "input size", "|alpha(x)|", "2^n", "ms"],
    );
    for n in (2..=max_n).step_by(2) {
        let x = Generator::alpha_blowup_witness(n);
        let t0 = Instant::now();
        let out = alpha_set(&x).expect("alpha");
        let elapsed = ms(t0);
        table.push_row(vec![
            n.to_string(),
            x.size().to_string(),
            out.elements().map_or(0, <[Value]>::len).to_string(),
            (1u128 << n).to_string(),
            elapsed,
        ]);
    }
    table
}

/// E3 (Theorem 6.2): the cardinality of the normal form is bounded by
/// `3^{n/3}`, with equality on the witness family.
pub fn e03_cardinality_bound(max_k: usize, random_objects: usize) -> Table {
    let mut table = Table::new(
        "E3 (Thm 6.2): cardinality of normal forms vs 3^(n/3)",
        &[
            "object",
            "size n",
            "m(x)",
            "3^(n/3)",
            "within bound",
            "tight",
        ],
    );
    for k in 1..=max_k {
        let x = Generator::tightness_witness(k);
        let report = cost::measure(&x);
        table.push_row(vec![
            format!("witness k={k}"),
            report.input_size.to_string(),
            report.cardinality.to_string(),
            format!("{:.1}", report.cardinality_bound),
            report.within_bounds.to_string(),
            (report.cardinality as f64 == report.cardinality_bound).to_string(),
        ]);
    }
    let config = GenConfig {
        max_depth: 4,
        max_width: 3,
        ..GenConfig::default()
    };
    let mut gen = Generator::new(31, config);
    let mut taken = 0;
    while taken < random_objects {
        let (_, x) = gen.typed_or_object();
        if x.contains_empty_collection() {
            continue;
        }
        taken += 1;
        let report = cost::measure(&x);
        table.push_row(vec![
            format!("random #{taken}"),
            report.input_size.to_string(),
            report.cardinality.to_string(),
            format!("{:.1}", report.cardinality_bound),
            report.within_bounds.to_string(),
            (report.cardinality as f64 == report.cardinality_bound).to_string(),
        ]);
    }
    table
}

/// E4 (Theorems 6.3/6.5): the size of the normal form is bounded by
/// `(n/2)·3^{n/3}` and the witness family attains `(n/3)·3^{n/3}`.
pub fn e04_size_bound(max_k: usize) -> Table {
    let mut table = Table::new(
        "E4 (Thm 6.3/6.5): size of normal forms vs (n/2)*3^(n/3) and (n/3)*3^(n/3)",
        &[
            "object",
            "size n",
            "size nf(x)",
            "(n/2)*3^(n/3)",
            "(n/3)*3^(n/3)",
            "attains tight",
        ],
    );
    for k in 2..=max_k {
        let x = Generator::tightness_witness(k);
        let report = cost::measure(&x);
        let tight = cost::tight_size_bound(report.input_size);
        table.push_row(vec![
            format!("witness k={k}"),
            report.input_size.to_string(),
            report.normal_form_size.to_string(),
            format!("{:.1}", report.size_bound),
            format!("{:.1}", tight),
            (report.normal_form_size as f64 == tight).to_string(),
        ]);
    }
    let mut workload = Workload::new(17);
    for components in [2usize, 3, 4] {
        let x = workload.design_object(components, 3);
        let report = cost::measure(&x);
        let tight = cost::tight_size_bound(report.input_size);
        table.push_row(vec![
            format!("design template ({components} components)"),
            report.input_size.to_string(),
            report.normal_form_size.to_string(),
            format!("{:.1}", report.size_bound),
            format!("{:.1}", tight),
            (report.normal_form_size as f64 == tight).to_string(),
        ]);
    }
    table
}

/// E5 (Theorem 4.2): every rewriting strategy yields the same normal form;
/// strategies differ only in the number of steps and the time taken.
pub fn e05_coherence(objects: usize) -> Table {
    let mut table = Table::new(
        "E5 (Thm 4.2): coherence of normalization across rewrite strategies",
        &[
            "object",
            "size",
            "strategy",
            "rewrite steps",
            "ms",
            "agrees",
        ],
    );
    let config = GenConfig {
        max_depth: 4,
        max_width: 2,
        ..GenConfig::default()
    };
    let mut gen = Generator::new(2024, config);
    for i in 0..objects {
        let (ty, v) = gen.typed_or_object();
        let report = check_coherence(&v, &ty, &RewriteStrategy::portfolio())
            .expect("normalization succeeds");
        for run in &report.runs {
            let t0 = Instant::now();
            let _ = or_nra::normalize::normalize_with_strategy(&v, &ty, run.strategy);
            table.push_row(vec![
                format!("random #{i}"),
                v.size().to_string(),
                format!("{:?}", run.strategy),
                run.trace.steps.len().to_string(),
                ms(t0),
                report.coherent.to_string(),
            ]);
        }
    }
    table
}

/// E6 (Theorem 5.1 / Proposition 5.2, Figure 2): losslessness of
/// normalization for morphisms within the preconditions, and the behaviour of
/// the construction outside them.
pub fn e06_losslessness() -> Table {
    let mut table = Table::new(
        "E6 (Thm 5.1): losslessness of normalization per morphism",
        &[
            "morphism",
            "input type",
            "preconditions",
            "lossless on samples",
            "preserve size",
        ],
    );
    let or_int = Type::orset(Type::Int);
    let cases: Vec<(&str, M, Type, Vec<Value>)> = vec![
        (
            "pi1",
            M::Proj1,
            Type::prod(or_int.clone(), Type::set(Type::Int)),
            vec![Value::pair(Value::int_orset([1, 2]), Value::int_set([5]))],
        ),
        (
            "ormap(plus)",
            M::ormap(M::Prim(or_nra::Prim::Plus)),
            Type::orset(Type::prod(Type::Int, Type::Int)),
            vec![Value::orset([
                Value::pair(Value::Int(1), Value::Int(2)),
                Value::pair(Value::Int(3), Value::Int(4)),
            ])],
        ),
        (
            "or_union",
            M::OrUnion,
            Type::prod(or_int.clone(), or_int.clone()),
            vec![Value::pair(Value::int_orset([1, 2]), Value::int_orset([3]))],
        ),
        (
            "alpha",
            M::Alpha,
            Type::set(or_int.clone()),
            vec![Value::set([
                Value::int_orset([1, 2]),
                Value::int_orset([3]),
            ])],
        ),
        (
            "eq at or-set type (excluded)",
            M::Eq,
            Type::prod(Type::orset(or_int.clone()), Type::orset(or_int.clone())),
            vec![Value::pair(
                Value::orset([Value::int_orset([1, 2])]),
                Value::orset([Value::int_orset([1]), Value::int_orset([2])]),
            )],
        ),
        (
            "rho2 at or-set type (analog only)",
            M::Rho2,
            Type::prod(or_int, Type::set(Type::Int)),
            vec![Value::pair(
                Value::int_orset([1, 2]),
                Value::int_set([3, 4]),
            )],
        ),
    ];
    for (name, f, input_ty, samples) in cases {
        let (_, violations) = lossless_preconditions(&f, &input_ty).expect("type checks");
        let lossless = samples
            .iter()
            .all(|x| is_lossless_on(&f, x).unwrap_or(false));
        table.push_row(vec![
            name.to_string(),
            input_ty.to_string(),
            if violations.is_empty() {
                "satisfied".to_string()
            } else {
                format!("{} violation(s)", violations.len())
            },
            lossless.to_string(),
            preserve(&f).size().to_string(),
        ]);
    }
    table
}

/// E7 (Section 6): deciding an existential query over the normal form is SAT;
/// eager normalization vs lazy enumeration vs the DPLL baseline.
pub fn e07_sat(max_vars: u32) -> Table {
    let mut table = Table::new(
        "E7 (Sec. 6): CNF satisfiability as an existential query over normal forms",
        &[
            "vars",
            "clauses",
            "denotations",
            "sat",
            "eager ms",
            "lazy ms",
            "lazy inspected",
            "dpll ms",
            "agree",
        ],
    );
    let mut gen = CnfGenerator::new(101);
    for vars in (4..=max_vars).step_by(2) {
        let clauses = (vars as usize * 3) / 2;
        let cnf = gen.random_kcnf(vars, clauses.min(9), 3);
        let encoded = encode::encode_cnf(&cnf);
        let denotations = or_nra::normalize::denotation_count(&encoded);
        let t0 = Instant::now();
        let eager = encode::sat_by_eager_normalization(&cnf).expect("eager");
        let eager_ms = ms(t0);
        let t1 = Instant::now();
        let lazy = encode::sat_by_lazy_normalization(&cnf).expect("lazy");
        let lazy_ms = ms(t1);
        let t2 = Instant::now();
        let dpll = encode::sat_by_dpll(&cnf);
        let dpll_ms = ms(t2);
        table.push_row(vec![
            vars.to_string(),
            cnf.clauses.len().to_string(),
            denotations.to_string(),
            dpll.to_string(),
            eager_ms,
            lazy_ms,
            lazy.inspected.to_string(),
            dpll_ms,
            (eager == dpll && lazy.satisfiable == dpll).to_string(),
        ]);
    }
    table
}

/// E8 (Propositions 3.1/3.2): the Hoare and Smyth orders coincide with the
/// closures of the elementary information-improvement steps.
pub fn e08_order_closure() -> Table {
    let mut table = Table::new(
        "E8 (Prop 3.1/3.2): order = closure of elementary steps",
        &[
            "relation",
            "antichain variant",
            "pairs checked",
            "agreements",
            "ms",
        ],
    );
    // the zig-zag poset 0<2, 0<3, 1<3, 1<4 over 5 points
    let leq = |a: &u8, b: &u8| a == b || matches!((a, b), (0, 2) | (0, 3) | (1, 3) | (1, 4));
    let subsets: Vec<Vec<u8>> = (0u32..32)
        .map(|mask| (0u8..5).filter(|i| mask & (1 << i) != 0).collect())
        .collect();
    for (kind, name) in [(StepKind::Set, "Hoare"), (StepKind::OrSet, "Smyth")] {
        for antichain in [false, true] {
            let cfg = ClosureConfig {
                antichain,
                ..ClosureConfig::default()
            };
            let candidates: Vec<&Vec<u8>> = if antichain {
                subsets
                    .iter()
                    .filter(|s| {
                        s.iter()
                            .all(|x| s.iter().all(|y| x == y || (!leq(x, y) && !leq(y, x))))
                    })
                    .collect()
            } else {
                subsets.iter().collect()
            };
            let t0 = Instant::now();
            let mut checked = 0u64;
            let mut agreements = 0u64;
            for a in &candidates {
                for b in &candidates {
                    let direct = match kind {
                        StepKind::Set => hoare(a, b, leq),
                        StepKind::OrSet => smyth(a, b, leq),
                    };
                    let closure = reachable(a, b, leq, kind, cfg);
                    checked += 1;
                    if direct == closure {
                        agreements += 1;
                    }
                }
            }
            table.push_row(vec![
                name.to_string(),
                antichain.to_string(),
                checked.to_string(),
                agreements.to_string(),
                ms(t0),
            ]);
        }
    }
    table
}

/// E9 (Theorem 3.3): `alpha_a` and `beta_a` are mutually inverse order
/// isomorphisms on the antichain semantics.
pub fn e09_iso_roundtrip(objects: usize) -> Table {
    let mut table = Table::new(
        "E9 (Thm 3.3): alpha_a / beta_a isomorphism round-trips",
        &[
            "base order",
            "objects",
            "round-trips ok",
            "monotone pairs ok",
            "ms",
        ],
    );
    for base in [BaseOrder::FlatWithNull, BaseOrder::NumericLeq] {
        let config = GenConfig {
            max_depth: 2,
            max_width: 3,
            int_range: 4,
            ..GenConfig::default()
        };
        let mut gen = Generator::new(55, config);
        let ty = Type::set(Type::orset(Type::Int));
        let mut samples: Vec<Value> = Vec::new();
        while samples.len() < objects {
            let v = to_antichain(base, &gen.object_of(&ty));
            if !v.contains_empty_orset() {
                samples.push(v);
            }
        }
        let t0 = Instant::now();
        let mut roundtrips = 0usize;
        for v in &samples {
            let a = alpha_antichain(base, v).expect("alpha_a");
            let back = beta_antichain(base, &a).expect("beta_a");
            if back == *v {
                roundtrips += 1;
            }
        }
        let mut monotone = 0usize;
        let mut pairs = 0usize;
        for x in &samples {
            for y in &samples {
                pairs += 1;
                let before = object_leq(base, x, y);
                let after = object_leq(
                    base,
                    &alpha_antichain(base, x).unwrap(),
                    &alpha_antichain(base, y).unwrap(),
                );
                if before == after {
                    monotone += 1;
                }
            }
        }
        table.push_row(vec![
            format!("{base:?}"),
            format!("{roundtrips}/{}", samples.len()),
            format!("{roundtrips}/{}", samples.len()),
            format!("{monotone}/{pairs}"),
            ms(t0),
        ]);
    }
    table
}

/// E10 (Proposition 3.4): the modal theory characterizes the order.
pub fn e10_theory_order(pairs: usize) -> Table {
    let mut table = Table::new(
        "E10 (Prop 3.4): x <= y iff Th(x) includes Th(y)",
        &[
            "object class",
            "pairs",
            "sound witnesses",
            "complete (witness iff not <=)",
            "ms",
        ],
    );
    let base = BaseOrder::FlatWithNull;
    // depth-1 or-sets: the class for which the ∨-only language is complete
    let shallow_ty = Type::set(Type::orset(Type::prod(Type::Int, Type::Bool)));
    let deep_ty = Type::orset(Type::orset(Type::Int));
    for (name, ty) in [
        ("or-sets of or-free elements", shallow_ty),
        ("nested or-sets", deep_ty),
    ] {
        let config = GenConfig {
            max_depth: 3,
            max_width: 2,
            int_range: 3,
            ..GenConfig::default()
        };
        let mut gen = Generator::new(77, config);
        let t0 = Instant::now();
        let mut sound = 0usize;
        let mut complete = 0usize;
        let mut counted = 0usize;
        while counted < pairs {
            let x = gen.object_of(&ty);
            let y = gen.object_of(&ty);
            if x.contains_empty_orset() || y.contains_empty_orset() {
                continue;
            }
            counted += 1;
            let leq = object_leq(base, &x, &y);
            match separating_formula(base, &x, &y) {
                Some(phi) => {
                    if entails(base, &y, &phi) && !entails(base, &x, &phi) {
                        sound += 1;
                    }
                    if !leq {
                        complete += 1;
                    }
                }
                None => {
                    sound += 1;
                    if leq {
                        complete += 1;
                    }
                }
            }
        }
        table.push_row(vec![
            name.to_string(),
            counted.to_string(),
            format!("{sound}/{counted}"),
            format!("{complete}/{counted}"),
            ms(t0),
        ]);
    }
    table
}

/// E11 (Corollary 4.3): the `normalize` primitive agrees with its expansion
/// into plain or-NRA, at an interpretive cost.
pub fn e11_normalize_expansion(objects: usize) -> Table {
    let mut table = Table::new(
        "E11 (Cor 4.3): normalize primitive vs its or-NRA expansion",
        &[
            "type",
            "expansion size",
            "objects",
            "agreements",
            "primitive ms",
            "expansion ms",
        ],
    );
    let types = [
        Type::prod(Type::set(Type::orset(Type::Int)), Type::orset(Type::Int)),
        Type::set(Type::orset(Type::orset(Type::Int))),
        Type::set(Type::prod(Type::Str, Type::orset(Type::Int))),
    ];
    for ty in types {
        let expanded = expand_normalize(&ty).expect("expansion");
        let expanded_inner = expand_normalize_innermost(&ty).expect("expansion");
        let mut gen = Generator::new(
            13,
            GenConfig {
                max_width: 2,
                ..GenConfig::default()
            },
        );
        let samples: Vec<Value> = (0..objects).map(|_| gen.object_of(&ty)).collect();
        let t0 = Instant::now();
        let reference: Vec<Value> = samples
            .iter()
            .map(|v| normalize_value_typed(v, &ty))
            .collect();
        let primitive_ms = ms(t0);
        let t1 = Instant::now();
        let mut agreements = 0usize;
        for (v, expected) in samples.iter().zip(reference.iter()) {
            let a = eval(&expanded, v).expect("expanded normalize");
            let b = eval(&expanded_inner, v).expect("expanded normalize (innermost)");
            if a == *expected && b == *expected {
                agreements += 1;
            }
        }
        let expansion_ms = ms(t1);
        table.push_row(vec![
            ty.to_string(),
            expanded.size().to_string(),
            samples.len().to_string(),
            format!("{agreements}/{}", samples.len()),
            primitive_ms,
            expansion_ms,
        ]);
    }
    table
}

/// E12 (Section 7 future work): lazy vs eager evaluation of existential
/// queries — early exit on satisfiable instances, full scan on unsatisfiable
/// ones.
pub fn e12_lazy_vs_eager() -> Table {
    let mut table = Table::new(
        "E12 (Sec. 7): lazy vs eager normalization for existential queries",
        &[
            "instance",
            "candidates",
            "sat",
            "lazy inspected",
            "lazy ms",
            "eager ms",
        ],
    );
    let mut gen = CnfGenerator::new(404);
    let cases = vec![
        ("planted satisfiable", gen.planted_satisfiable(6, 8, 3)),
        ("random", gen.random_kcnf(6, 8, 3)),
        ("unsatisfiable core", gen.unsatisfiable(6, 8, 3)),
    ];
    for (name, cnf) in cases {
        let encoded = encode::encode_cnf(&cnf);
        let total = LazyNormalizer::new(&encoded).total();
        let t0 = Instant::now();
        let lazy = encode::sat_by_lazy_normalization(&cnf).expect("lazy");
        let lazy_ms = ms(t0);
        let t1 = Instant::now();
        let eager = encode::sat_by_eager_normalization(&cnf).expect("eager");
        let eager_ms = ms(t1);
        assert_eq!(lazy.satisfiable, eager);
        table.push_row(vec![
            name.to_string(),
            total.to_string(),
            eager.to_string(),
            lazy.inspected.to_string(),
            lazy_ms,
            eager_ms,
        ]);
    }
    // design-template variant of the same phenomenon
    let mut workload = Workload::new(9);
    let template = workload.uniform_design_template(8, 3);
    let budget_generous = 8 * 90;
    let budget_impossible = 8 * 9;
    for (name, budget) in [
        ("design budget=generous", budget_generous),
        ("design budget=impossible", budget_impossible),
    ] {
        let t0 = Instant::now();
        let (witness, inspected) = template
            .exists_design_within_budget(budget)
            .expect("budget query");
        let lazy_ms = ms(t0);
        let t1 = Instant::now();
        let all = template.completed_designs();
        let eager_ms = ms(t1);
        table.push_row(vec![
            name.to_string(),
            all.len().to_string(),
            witness.is_some().to_string(),
            inspected.to_string(),
            lazy_ms,
            eager_ms,
        ]);
    }
    table
}

/// E5's companion measurement used by the Criterion bench: possibility count
/// of a design template (a realistic normalization workload).
pub fn design_possibilities(components: usize, alternatives: usize) -> u64 {
    let mut workload = Workload::new(123);
    let template = workload.uniform_design_template(components, alternatives);
    possibility_count(&template.to_value())
}

// ---------------------------------------------------------------------------
// E13: the physical engine vs the interpreter
// ---------------------------------------------------------------------------

/// One measured configuration of the engine-vs-interpreter comparison
/// (serialized into `BENCH_engine.json` by the `experiments` binary).
#[derive(Debug, Clone)]
pub struct EngineBenchRow {
    /// Workload name.
    pub workload: String,
    /// Rows in the driving relation.
    pub rows: usize,
    /// Tree-walking interpreter wall time, milliseconds.
    pub interp_ms: f64,
    /// Engine wall time with one worker, milliseconds.
    pub engine_seq_ms: f64,
    /// Engine wall time with all hardware workers, milliseconds.
    pub engine_par_ms: f64,
    /// Worker threads used by the parallel run.
    pub workers: usize,
    /// Hardware threads of the measuring machine
    /// (`std::thread::available_parallelism`).  Recorded per row so that
    /// parallel-leg numbers are only ever compared across runs on matching
    /// core counts (see [`check_regression`]).
    pub available_parallelism: usize,
    /// Timed repetitions behind each reported number (the median of this
    /// many runs, after one discarded warmup run).
    pub runs: usize,
    /// Did all three executions produce identical results?
    pub equal: bool,
}

impl EngineBenchRow {
    /// Parallel-engine speedup over the interpreter.
    pub fn speedup_vs_interp(&self) -> f64 {
        self.interp_ms / self.engine_par_ms.max(1e-9)
    }

    /// Sequential-engine speedup over the interpreter (the core-count
    /// independent leg).
    pub fn speedup_seq(&self) -> f64 {
        self.interp_ms / self.engine_seq_ms.max(1e-9)
    }

    /// Scaling efficiency of the parallel leg: parallel time over
    /// sequential time (**lower is better**; `1.0` means the parallel leg
    /// broke even, `0.5` means it halved the wall time).  Rows whose
    /// parallel leg fell back to one worker (below
    /// [`or_engine::ExecConfig::min_parallel_rows`]) sit near `1.0` by
    /// construction.
    pub fn par_over_seq(&self) -> f64 {
        self.engine_par_ms / self.engine_seq_ms.max(1e-9)
    }
}

/// The measuring machine's hardware thread count.
pub fn hardware_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Worker threads for the parallel benchmark legs: the `OR_ENGINE_WORKERS`
/// environment variable when set to a positive number (also settable as
/// `experiments -- --workers N`), else [`hardware_workers`].  The override
/// lets BENCH rows exercise the parallel executor even on machines (or CI
/// runners) whose `available_parallelism` reports 1.
pub fn configured_workers() -> usize {
    std::env::var("OR_ENGINE_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(hardware_workers)
}

/// Timed repetitions behind every reported benchmark number: each
/// measurement is the median of this many runs after one discarded warmup.
/// Deliberately **even**: the paired seq/par measurement (`timed_pair`)
/// alternates which leg runs first per round, and an even count gives
/// each leg the first slot in exactly half the rounds — with an odd count
/// one leg is measured in the (observably slower) second position more
/// often than the other, which biases the gated `par_over_seq` ratio.
pub const TIMED_RUNS: usize = 6;

/// Run `f` once as a discarded warmup (allocator, page faults, lazily
/// built caches), then [`TIMED_RUNS`] more times, and report the
/// **median** wall time.  The median is robust against scheduler jitter in
/// both directions — a single descheduled run cannot flake the CI gate the
/// way best-of-N let one lucky run set an unrepeatable baseline.
fn timed<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    let mut out = f(); // warmup, timing discarded
    let mut times = [0.0f64; TIMED_RUNS];
    for slot in times.iter_mut() {
        let start = Instant::now();
        let result = f();
        *slot = start.elapsed().as_secs_f64() * 1e3;
        // drop the previous iteration's result outside the timed window:
        // freeing last round's output is not part of the measured work
        out = result;
    }
    times.sort_unstable_by(|a, b| a.total_cmp(b));
    (out, times[TIMED_RUNS / 2])
}

/// Like [`timed`], but for **paired** legs whose *ratio* is the reported
/// statistic — the sequential vs parallel engine legs.  The two legs'
/// timed runs are interleaved in **ABBA order** (round 0 runs A then B,
/// round 1 runs B then A, …) rather than measured in two separate blocks:
/// machine drift — frequency scaling, a noisy neighbor, a CPU-quota
/// period on a shared box — then lands on both legs and both *positions
/// within a round* equally, instead of systematically penalizing
/// whichever leg ran last.  Each leg reports the median of its own
/// [`TIMED_RUNS`] runs after one discarded warmup apiece.
fn timed_pair<A, B>(mut fa: impl FnMut() -> A, mut fb: impl FnMut() -> B) -> ((A, f64), (B, f64)) {
    let mut out_a = fa(); // warmups, timing discarded
    let mut out_b = fb();
    let mut times_a = [0.0f64; TIMED_RUNS];
    let mut times_b = [0.0f64; TIMED_RUNS];
    {
        // scope the closures' borrows of `out_a`/`out_b` to the loop
        let mut run_a = |slot: &mut f64| {
            let start = Instant::now();
            let a = fa();
            *slot = start.elapsed().as_secs_f64() * 1e3;
            out_a = a; // drop the previous result outside the timed window
        };
        let mut run_b = |slot: &mut f64| {
            let start = Instant::now();
            let b = fb();
            *slot = start.elapsed().as_secs_f64() * 1e3;
            out_b = b;
        };
        for i in 0..TIMED_RUNS {
            if i % 2 == 0 {
                run_a(&mut times_a[i]);
                run_b(&mut times_b[i]);
            } else {
                run_b(&mut times_b[i]);
                run_a(&mut times_a[i]);
            }
        }
    }
    times_a.sort_unstable_by(|a, b| a.total_cmp(b));
    times_b.sort_unstable_by(|a, b| a.total_cmp(b));
    (
        (out_a, times_a[TIMED_RUNS / 2]),
        (out_b, times_b[TIMED_RUNS / 2]),
    )
}

/// The e13 relation of `(id, cost)` records.
pub fn priced_relation(rows: usize) -> or_db::Relation {
    let schema = or_db::Schema::new([
        or_db::Field::new("id", Type::Int),
        or_db::Field::new("cost", Type::Int),
    ])
    .expect("schema is well-formed");
    or_db::Relation::from_records(
        "priced",
        schema,
        (0..rows as i64).map(|i| Value::pair(Value::Int(i), Value::Int((i * 7) % 100))),
    )
    .expect("records match the schema")
}

/// The columnar-filter-project relation of **wide** `(id, sku, cost,
/// weight, rank, score)` records — six int columns, so a row-at-a-time
/// executor materializes three times more fields than the query touches
/// and late materialization has something to win.
pub fn wide_relation(rows: usize) -> or_db::Relation {
    let schema = or_db::Schema::new([
        or_db::Field::new("id", Type::Int),
        or_db::Field::new("sku", Type::Int),
        or_db::Field::new("cost", Type::Int),
        or_db::Field::new("weight", Type::Int),
        or_db::Field::new("rank", Type::Int),
        or_db::Field::new("score", Type::Int),
    ])
    .expect("schema is well-formed");
    or_db::Relation::from_records(
        "wide",
        schema,
        (0..rows as i64).map(|i| {
            Value::pair(
                Value::Int(i),
                Value::pair(
                    Value::Int(i * 31 % 9973),
                    Value::pair(
                        Value::Int((i * 13) % 100),
                        Value::pair(
                            Value::Int(i % 50),
                            Value::pair(Value::Int(i % 10), Value::Int((i * 7) % 1000)),
                        ),
                    ),
                ),
            )
        }),
    )
    .expect("records match the schema")
}

/// The e13 relation of `(id, <alt>, <alt>)` records (or-set fields).
pub fn alternatives_relation(rows: usize) -> or_db::Relation {
    let schema = or_db::Schema::new([
        or_db::Field::new("id", Type::Int),
        or_db::Field::new("cpu", Type::orset(Type::Int)),
        or_db::Field::new("ram", Type::orset(Type::Int)),
    ])
    .expect("schema is well-formed");
    or_db::Relation::from_records(
        "alternatives",
        schema,
        (0..rows as i64).map(|i| {
            Value::pair(
                Value::Int(i),
                Value::pair(
                    Value::int_orset([i % 5, (i + 1) % 5, (i + 2) % 5]),
                    Value::int_orset([i % 3, (i + 1) % 3]),
                ),
            )
        }),
    )
    .expect("records match the schema")
}

/// The e13 high-fanout relation: `(id, (<8 cpu alts>, <4 ram alts>))`
/// records, 32 possible worlds per row.
pub fn fanout_relation(rows: usize) -> or_db::Relation {
    let schema = or_db::Schema::new([
        or_db::Field::new("id", Type::Int),
        or_db::Field::new("cpu", Type::orset(Type::Int)),
        or_db::Field::new("ram", Type::orset(Type::Int)),
    ])
    .expect("schema is well-formed");
    or_db::Relation::from_records(
        "fanout8",
        schema,
        (0..rows as i64).map(|i| {
            Value::pair(
                Value::Int(i),
                Value::pair(
                    Value::int_orset((0..8).map(|k| (i + k) % 11)),
                    Value::int_orset((0..4).map(|k| (i * 3 + k) % 7)),
                ),
            )
        }),
    )
    .expect("records match the schema")
}

/// The e13 filter-and-project query (`cost ≤ 30`, keep ids).
pub fn e13_scan_query() -> M {
    let cheap = M::Proj2
        .then(M::pair(M::Id, M::constant(Value::Int(30))))
        .then(M::Prim(or_nra::Prim::Leq));
    or_nra::derived::select(cheap).then(M::map(M::Proj1))
}

/// The columnar-filter-project query over [`wide_relation`]: keep rows
/// with `cost ≤ 4` (~5% selectivity — `cost` cycles through 0..100) and
/// project `(id, rank)`.  Predicate and projection both stay inside the
/// columnar fragment: one compare-into-selection-mask kernel over the
/// `cost` column, then two gathers — the other four columns are never
/// touched.
pub fn columnar_filter_project_query() -> M {
    let cost = M::Proj2.then(M::Proj2).then(M::Proj1);
    let rank = M::Proj2
        .then(M::Proj2)
        .then(M::Proj2)
        .then(M::Proj2)
        .then(M::Proj1);
    let cheap = cost
        .then(M::pair(M::Id, M::constant(Value::Int(4))))
        .then(M::Prim(or_nra::Prim::Leq));
    or_nra::derived::select(cheap).then(M::map(M::pair(M::Proj1, rank)))
}

/// The e13 per-row α-expansion query.
pub fn e13_expand_query() -> M {
    M::map(M::Normalize.then(M::OrToSet)).then(M::Mu)
}

/// The e13 expand-then-filter query: α-expand every row, then keep worlds
/// with `id ≤ limit`.  The filter reads only the or-free `id` field, so the
/// expand planner can push it below the expansion.
pub fn e13_planned_query(limit: i64) -> M {
    let keep = M::Proj1
        .then(M::pair(M::Id, M::constant(Value::Int(limit))))
        .then(M::Prim(or_nra::Prim::Leq));
    e13_expand_query().then(or_nra::derived::select(keep))
}

/// Measure one `relation × query` workload: interpreter, sequential engine,
/// and parallel engine (the parallel leg reports the worker count the
/// executor **actually used**, via [`or_engine::ExecStats`] — not the
/// hardware thread count the config asked for).
fn measure_workload(name: &str, relation: &or_db::Relation, query: &M) -> EngineBenchRow {
    use or_engine::{run_plan, run_plan_with_stats, ExecConfig};
    use or_nra::optimize::lower;

    let available = hardware_workers();
    let seq = ExecConfig::default();
    let par = ExecConfig::default().with_workers(configured_workers());
    let plan = lower(query).expect("workload query is lowerable");
    let (interp, interp_ms) = timed(|| relation.query(query).expect("interpreter"));
    // the seq and par legs interleave: par_over_seq is the gated statistic,
    // so machine drift must not land on one leg only
    let ((eng_seq, engine_seq_ms), ((eng_par, stats), engine_par_ms)) = timed_pair(
        || run_plan(&plan, &[relation], seq).expect("engine sequential"),
        || run_plan_with_stats(&plan, &[relation], par).expect("engine parallel"),
    );
    EngineBenchRow {
        workload: name.to_string(),
        rows: relation.len(),
        interp_ms,
        engine_seq_ms,
        engine_par_ms,
        workers: stats.workers,
        available_parallelism: available,
        runs: TIMED_RUNS,
        equal: interp == eng_seq && eng_seq == eng_par,
    }
}

/// Measure a workload through the **expand planner**
/// ([`or_engine::run_plan_optimized`]): the sequential leg runs the
/// unoptimized plan (the "before"), the parallel leg runs the planned plan
/// at the planner's recommended worker count (the "after").
fn measure_planned_workload(name: &str, relation: &or_db::Relation, query: &M) -> EngineBenchRow {
    use or_engine::{run_plan, run_plan_optimized, ExecConfig};
    use or_nra::optimize::lower;

    let available = hardware_workers();
    let seq = ExecConfig::default();
    let par = ExecConfig::default().with_workers(configured_workers());
    let plan = lower(query).expect("workload query is lowerable");
    let (interp, interp_ms) = timed(|| relation.query(query).expect("interpreter"));
    let ((eng_seq, engine_seq_ms), ((eng_par, stats), engine_par_ms)) = timed_pair(
        || run_plan(&plan, &[relation], seq).expect("engine sequential"),
        || {
            let (value, stats, _) =
                run_plan_optimized(&plan, &[relation], par).expect("engine planned");
            (value, stats)
        },
    );
    EngineBenchRow {
        workload: name.to_string(),
        rows: relation.len(),
        interp_ms,
        engine_seq_ms,
        engine_par_ms,
        workers: stats.workers,
        available_parallelism: available,
        runs: TIMED_RUNS,
        equal: interp == eng_seq && eng_seq == eng_par,
    }
}

/// Run the engine-vs-interpreter comparison at the given driving-relation
/// scale and return the measured rows.
pub fn e13_engine_rows(scale: usize) -> Vec<EngineBenchRow> {
    let mut out = vec![
        // 1. partitioned scan: filter + project over (id, cost) records
        measure_workload(
            "scan_filter_project",
            &priced_relation(scale),
            &e13_scan_query(),
        ),
        // 1b. columnar filter + project over wide six-column records: the
        // selective predicate (~5%) reads one column and the projection
        // gathers two — the late-materialization showcase
        measure_workload(
            "columnar_filter_project",
            &wide_relation(scale),
            &columnar_filter_project_query(),
        ),
        // 2. or-expand: stream every complete instance of every record
        measure_workload(
            "or_expand",
            &alternatives_relation(scale / 4),
            &e13_expand_query(),
        ),
        // 2b. high-fanout or-expand: 32 possible worlds per row
        measure_workload(
            "or_expand_fanout8",
            &fanout_relation(scale / 16),
            &e13_expand_query(),
        ),
    ];

    // 2c. expand-then-filter through the expand planner: the filter reads
    // only the or-free id field, so the planner pushes it below the
    // expansion (selectivity 25%)
    {
        let rows = scale / 16;
        out.push(measure_planned_workload(
            "or_expand_planned",
            &fanout_relation(rows),
            &e13_planned_query(rows as i64 / 4),
        ));
    }

    // 3. equi-join of (id, group) against (group, tag)
    {
        use or_engine::{run_plan, run_plan_with_stats, ExecConfig};
        use or_nra::physical::PhysicalPlan;

        let available = hardware_workers();
        let seq = ExecConfig::default();
        let par = ExecConfig::default().with_workers(configured_workers());
        let left_schema = or_db::Schema::new([
            or_db::Field::new("id", Type::Int),
            or_db::Field::new("grp", Type::Int),
        ])
        .expect("schema");
        let groups = 40i64;
        // full scale (not scale/4): the join must clear the executor's
        // min_parallel_rows threshold so the parallel leg really runs
        // multi-worker and the row exercises morsel stealing
        let left = or_db::Relation::from_records(
            "users",
            left_schema,
            (0..scale as i64).map(|i| Value::pair(Value::Int(i), Value::Int(i % groups))),
        )
        .expect("records");
        let right_schema = or_db::Schema::new([
            or_db::Field::new("grp", Type::Int),
            or_db::Field::new("tag", Type::Int),
        ])
        .expect("schema");
        let right = or_db::Relation::from_records(
            "groups",
            right_schema,
            (0..groups).map(|g| Value::pair(Value::Int(g), Value::Int(g * 11))),
        )
        .expect("records");
        let predicate = M::pair(M::Proj1.then(M::Proj2), M::Proj2.then(M::Proj1)).then(M::Eq);
        let plan = PhysicalPlan::scan(0).join(PhysicalPlan::scan(1), predicate.clone());
        let pair_value = Value::pair(left.to_value(), right.to_value());
        let interp_query =
            or_nra::derived::cartesian_product().then(or_nra::derived::select(predicate));
        let (interp, interp_ms) =
            timed(|| eval(&interp_query, &pair_value).expect("interpreter join"));
        let (eng_seq, engine_seq_ms) =
            timed(|| run_plan(&plan, &[&left, &right], seq).expect("engine sequential"));
        let ((eng_par, stats), engine_par_ms) =
            timed(|| run_plan_with_stats(&plan, &[&left, &right], par).expect("engine parallel"));
        out.push(EngineBenchRow {
            workload: "equi_join".to_string(),
            rows: left.len(),
            interp_ms,
            engine_seq_ms,
            engine_par_ms,
            workers: stats.workers,
            available_parallelism: available,
            runs: TIMED_RUNS,
            equal: interp == eng_seq && eng_seq == eng_par,
        });
    }

    out
}

// ---------------------------------------------------------------------------
// E14: engine-first sessions — Interp vs Engine vs EngineChecked
// ---------------------------------------------------------------------------

/// The e14 session script: plannable filters/projections, a multi-binding
/// comprehension (served by the engine's hash join), a union of two
/// sub-queries, a dependent-generator comprehension (served via `Flatten`),
/// and one or-monad statement that falls back to the interpreter in every
/// mode.
pub const E14_SCRIPT: &[&str] = &[
    "{ fst(p) | p <- parts, snd(p) <= 30 }",
    "{ (fst(u), snd(g)) | u <- users, g <- groups, snd(u) == fst(g) }",
    "union({ fst(p) | p <- parts, snd(p) <= 10 }, { fst(u) | u <- users, snd(u) == 0 })",
    "{ x | xs <- nested, x <- xs }",
    "{ (snd(p), fst(p)) | p <- parts, 90 <= snd(p) }",
    "normalize(design)",
];

/// The bindings the e14 script runs against: `parts (id, cost)` at `scale`
/// rows, `users (id, grp)` at `scale/4`, a small `groups (grp, tag)`
/// relation, a `nested` set of sets, and a tiny or-set `design` for the
/// fallback statement.
pub fn e14_bindings(scale: usize) -> Vec<(&'static str, Value)> {
    let groups_n = 40i64;
    vec![
        (
            "parts",
            Value::set(
                (0..scale as i64).map(|i| Value::pair(Value::Int(i), Value::Int((i * 7) % 100))),
            ),
        ),
        (
            "users",
            Value::set(
                (0..(scale / 4) as i64)
                    .map(|i| Value::pair(Value::Int(i), Value::Int(i % groups_n))),
            ),
        ),
        (
            "groups",
            Value::set((0..groups_n).map(|g| Value::pair(Value::Int(g), Value::Int(g * 11)))),
        ),
        (
            "nested",
            Value::set((0..(scale / 8) as i64).map(|i| Value::int_set([i, i + 1, i * 3 % 50]))),
        ),
        (
            "design",
            Value::set([Value::int_orset([10, 25]), Value::int_orset([7, 9, 30])]),
        ),
    ]
}

/// Build a session in the given mode with the e14 bindings in place (shared
/// with the `e14_session_engine_first` criterion bench).
pub fn e14_session(
    mode: or_lang::ExecMode,
    config: or_engine::ExecConfig,
    scale: usize,
) -> or_lang::Session {
    let mut session = or_lang::Session::with_engine(config);
    session.set_exec_mode(mode);
    for (name, value) in e14_bindings(scale) {
        session.bind(name, value);
    }
    session
}

/// Replay the e14 script, returning the statement values.
pub fn e14_replay(session: &mut or_lang::Session) -> Vec<Value> {
    E14_SCRIPT
        .iter()
        .map(|stmt| session.run(stmt).expect("e14 statement").value)
        .collect()
}

/// E14: replay [`E14_SCRIPT`] under `Interp`, engine-first `Engine`
/// (sequential and parallel) and `EngineChecked`, and report the comparison
/// in the `BENCH_engine.json` row format.  `engine_seq_ms`/`engine_par_ms`
/// are the engine-first replays with 1 and all hardware workers; the
/// `EngineChecked` replay contributes to the `equal` flag (it re-runs every
/// engine statement on the interpreter internally and errors on mismatch).
pub fn e14_session_rows(scale: usize) -> Vec<EngineBenchRow> {
    use or_engine::ExecConfig;
    use or_lang::ExecMode;

    let available = hardware_workers();
    let par_workers = configured_workers();
    let par = ExecConfig::default().with_workers(par_workers);
    let mut interp = e14_session(ExecMode::Interp, ExecConfig::default(), scale);
    let mut engine_seq = e14_session(ExecMode::Engine, ExecConfig::default(), scale);
    let mut engine_par = e14_session(ExecMode::Engine, par, scale);
    let mut checked = e14_session(ExecMode::EngineChecked, par, scale);
    let (interp_values, interp_ms) = timed(|| e14_replay(&mut interp));
    let ((seq_values, engine_seq_ms), (par_values, engine_par_ms)) = timed_pair(
        || e14_replay(&mut engine_seq),
        || e14_replay(&mut engine_par),
    );
    // the checked replay is the differential leg: engine + interpreter with
    // a per-statement comparison (a mismatch errors out of the replay)
    let checked_values = e14_replay(&mut checked);
    // If a plannable statement silently fell back, the "engine" legs are no
    // longer measuring the engine — fail the row (the regression checker
    // reports it as a failed cross-check) instead of panicking the binary.
    let stats = engine_par.engine_stats();
    let engine_served = stats.engine >= 5;
    if !engine_served {
        eprintln!("e14: plannable statements fell back to the interpreter: {stats:?}");
    }
    let equal = engine_served
        && interp_values == seq_values
        && seq_values == par_values
        && par_values == checked_values;
    vec![EngineBenchRow {
        workload: "session_engine_first".to_string(),
        rows: scale,
        interp_ms,
        engine_seq_ms,
        engine_par_ms,
        // sessions do not expose per-statement executor stats, so this is
        // the configured worker cap of the parallel legs, not a measured
        // per-query count as in the e13 rows
        workers: par_workers,
        available_parallelism: available,
        runs: TIMED_RUNS,
        equal,
    }]
}

/// E14b: the statement-shape plan cache, measured cold vs warm.  The
/// **cold** leg (`engine_seq_ms`) replays [`E14_SCRIPT`] on a brand-new
/// engine-first session per timed round, so every plannable statement pays
/// the full parse → lower → optimize → verify pipeline; the **warm** leg
/// (`engine_par_ms`) replays against one primed session, so every
/// plannable statement is served from the statement-shape cache.
/// `par_over_seq` therefore reads as warm-over-cold, and the row's `equal`
/// flag also folds in the cache contract: a cold replay only misses, warm
/// replays only hit.
pub fn e14_plan_cache_rows(scale: usize) -> Vec<EngineBenchRow> {
    use or_engine::ExecConfig;
    use or_lang::ExecMode;

    let available = hardware_workers();
    // `normalize(design)` falls back to the interpreter in every mode;
    // the other statements are engine-served and cache-tracked
    let plannable = (E14_SCRIPT.len() - 1) as u64;
    let mut interp = e14_session(ExecMode::Interp, ExecConfig::default(), scale);
    let (interp_values, interp_ms) = timed(|| e14_replay(&mut interp));

    // cold leg: sessions are pre-built outside the timed window ([`timed`]
    // runs one discarded warmup plus TIMED_RUNS rounds, hence the +1), so
    // the measurement is the replay alone, never the relation binding
    let mut cold_sessions: Vec<_> = (0..=TIMED_RUNS)
        .map(|_| e14_session(ExecMode::Engine, ExecConfig::default(), scale))
        .collect();
    let ((cold_values, cold_misses, cold_hits), cold_ms) = timed(|| {
        let mut session = cold_sessions.pop().expect("one session per timed round");
        let values = e14_replay(&mut session);
        let stats = session.engine_stats();
        (values, stats.plan_cache_misses, stats.plan_cache_hits)
    });

    // warm leg: one session, primed once, then every timed replay hits
    let mut warm = e14_session(ExecMode::Engine, ExecConfig::default(), scale);
    let primed_values = e14_replay(&mut warm);
    let misses_after_priming = warm.engine_stats().plan_cache_misses;
    let (warm_values, warm_ms) = timed(|| e14_replay(&mut warm));
    let warm_stats = warm.engine_stats();

    let cache_behaved = cold_misses == plannable
        && cold_hits == 0
        && misses_after_priming == plannable
        && warm_stats.plan_cache_misses == plannable
        && warm_stats.plan_cache_hits == plannable * (TIMED_RUNS as u64 + 1);
    if !cache_behaved {
        eprintln!(
            "e14b: plan cache misbehaved: cold {cold_misses} miss(es)/{cold_hits} hit(s), \
             warm {warm_stats:?}"
        );
    }
    let equal = cache_behaved
        && interp_values == cold_values
        && cold_values == primed_values
        && primed_values == warm_values;
    vec![EngineBenchRow {
        workload: "session_plan_cache".to_string(),
        rows: scale,
        interp_ms,
        engine_seq_ms: cold_ms,
        engine_par_ms: warm_ms,
        // both legs run the sequential executor: the measured contrast is
        // compile-and-verify vs cache hit, not parallelism
        workers: 1,
        available_parallelism: available,
        runs: TIMED_RUNS,
        equal,
    }]
}

/// The full engine benchmark: the e13 workloads plus the e14 session
/// replays (engine-first and plan-cache) — everything that lands in
/// `BENCH_engine.json`.
pub fn engine_bench_rows(scale: usize) -> Vec<EngineBenchRow> {
    let mut rows = e13_engine_rows(scale);
    rows.extend(e14_session_rows(scale));
    rows.extend(e14_plan_cache_rows(scale));
    rows
}

// ---------------------------------------------------------------------------
// bench-regression checking (the CI gate over BENCH_engine.json)
// ---------------------------------------------------------------------------

/// One workload parsed from a committed `BENCH_engine.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRow {
    /// Workload name.
    pub workload: String,
    /// The committed `speedup_vs_interp` (the parallel leg).
    pub speedup_vs_interp: f64,
    /// The committed sequential-leg speedup (`interp_ms / engine_seq_ms`),
    /// when the baseline row carries both timings.
    pub speedup_seq: Option<f64>,
    /// Core count of the machine that produced the baseline row (absent in
    /// baselines predating the field).
    pub available_parallelism: Option<usize>,
    /// Worker threads the baseline's parallel leg actually used (absent in
    /// baselines predating the field).  With the `--workers` /
    /// `OR_ENGINE_WORKERS` override this can differ from
    /// `available_parallelism`, and parallel legs are only comparable when
    /// **both** match.
    pub workers: Option<usize>,
    /// The committed scaling efficiency (`engine_par_ms / engine_seq_ms`,
    /// lower is better), when the baseline row carries both timings.
    pub par_over_seq: Option<f64>,
    /// Rows in the baseline workload's driving relation, when recorded.
    pub rows: Option<usize>,
    /// The committed interpreter timing, when recorded.
    pub interp_ms: Option<f64>,
    /// The committed sequential-engine timing, when recorded.
    pub engine_seq_ms: Option<f64>,
    /// The committed parallel-engine timing, when recorded.
    pub engine_par_ms: Option<f64>,
    /// The committed `equal` flag.
    pub equal: bool,
}

/// Parse the workload rows out of a `BENCH_engine.json` document (the exact
/// format [`engine_bench_json`] emits; this is its dependency-free inverse).
pub fn parse_engine_bench(json: &str) -> Vec<BaselineRow> {
    fn field<'a>(chunk: &'a str, key: &str) -> Option<&'a str> {
        let pat = format!("\"{key}\": ");
        let at = chunk.find(&pat)? + pat.len();
        let rest = &chunk[at..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
    let mut out = Vec::new();
    for chunk in json.split("{\"workload\": \"").skip(1) {
        let Some(name_end) = chunk.find('"') else {
            continue;
        };
        let workload = chunk[..name_end].to_string();
        let speedup = field(chunk, "speedup_vs_interp").and_then(|s| s.parse::<f64>().ok());
        let equal = field(chunk, "equal").map(|s| s == "true");
        let interp_ms = field(chunk, "interp_ms").and_then(|s| s.parse::<f64>().ok());
        let engine_seq_ms = field(chunk, "engine_seq_ms").and_then(|s| s.parse::<f64>().ok());
        let engine_par_ms = field(chunk, "engine_par_ms").and_then(|s| s.parse::<f64>().ok());
        let speedup_seq = match (interp_ms, engine_seq_ms) {
            (Some(i), Some(s)) => Some(i / s.max(1e-9)),
            _ => None,
        };
        // prefer the recorded field; recompute for baselines predating it
        let par_over_seq = field(chunk, "par_over_seq")
            .and_then(|s| s.parse::<f64>().ok())
            .or(match (engine_par_ms, engine_seq_ms) {
                (Some(p), Some(s)) => Some(p / s.max(1e-9)),
                _ => None,
            });
        let rows = field(chunk, "rows").and_then(|s| s.parse::<usize>().ok());
        let available_parallelism =
            field(chunk, "available_parallelism").and_then(|s| s.parse::<usize>().ok());
        let workers = field(chunk, "workers").and_then(|s| s.parse::<usize>().ok());
        if let (Some(speedup_vs_interp), Some(equal)) = (speedup, equal) {
            out.push(BaselineRow {
                workload,
                speedup_vs_interp,
                speedup_seq,
                available_parallelism,
                workers,
                par_over_seq,
                rows,
                interp_ms,
                engine_seq_ms,
                engine_par_ms,
                equal,
            });
        }
    }
    out
}

/// One workload's verdict in a regression check.
#[derive(Debug, Clone)]
pub struct RegressionVerdict {
    /// Workload name.
    pub workload: String,
    /// The committed baseline speedup (`None` for a new workload).
    pub baseline_speedup: Option<f64>,
    /// The freshly measured speedup (`None` when the workload disappeared
    /// from the fresh run).
    pub fresh_speedup: Option<f64>,
    /// Did this workload pass the check?
    pub ok: bool,
    /// Human-readable explanation.
    pub detail: String,
}

/// Compare a fresh measurement against the committed baseline.  A workload
/// fails when
///
/// * its fresh speedup dropped below `baseline / max_slowdown`
///   (so `max_slowdown = 1.15` tolerates 15% noise),
/// * its engine/interpreter cross-check (`equal`) is false, or
/// * it exists in the baseline but was not measured at all.
///
/// The **parallel** leg (`speedup_vs_interp`) is compared only when the
/// baseline row was measured on the same core count
/// (`available_parallelism`); otherwise the comparison switches to the
/// core-count-independent **sequential** leg (`interp_ms / engine_seq_ms`) —
/// a 2-core CI runner cannot be held to a 16-core laptop's parallel numbers.
///
/// Additionally, every fresh row whose parallel leg ran multi-worker
/// (`workers >= 2`) gets a **scaling-efficiency** verdict (reported as
/// `workload [scaling]`) when the baseline is parallel-comparable:
/// `engine_par_ms / engine_seq_ms` may not degrade past the baseline ratio
/// times `max_slowdown` — catching the failure mode where both legs stay
/// fast relative to the interpreter but parallelism itself stops paying.
///
/// Workloads new in the fresh run pass (they become baseline once merged).
pub fn check_regression(
    baseline: &[BaselineRow],
    fresh: &[EngineBenchRow],
    max_slowdown: f64,
) -> Vec<RegressionVerdict> {
    let mut verdicts = Vec::new();
    for f in fresh {
        // A baseline file can carry the same workload measured on several
        // machine shapes (merged runs from a laptop and a CI runner).
        // Prefer the row whose worker AND core counts match the fresh
        // measurement — that one supports the strict parallel comparison —
        // and only fall back to the first name match (the legacy behavior)
        // when no shape-matched row exists.
        let base = baseline
            .iter()
            .find(|b| {
                b.workload == f.workload
                    && b.workers == Some(f.workers)
                    && b.available_parallelism == Some(f.available_parallelism)
            })
            .or_else(|| baseline.iter().find(|b| b.workload == f.workload));
        // pick the comparable leg: parallel on matching core counts,
        // sequential otherwise (when the baseline carries it).  Parallel
        // legs are only comparable when the core count AND the worker
        // count match — the `--workers`/`OR_ENGINE_WORKERS` override can
        // decouple the two (a legacy baseline without a `workers` field
        // compares on core count alone, as before).
        let parallel_comparable = |b: &BaselineRow| {
            b.available_parallelism == Some(f.available_parallelism)
                && b.workers.map_or(true, |w| w == f.workers)
        };
        let (leg, fresh_speedup, baseline_speedup) = match base {
            Some(b) if !parallel_comparable(b) => match b.speedup_seq {
                Some(seq) => (
                    "sequential leg (core or worker counts differ)",
                    f.speedup_seq(),
                    Some(seq),
                ),
                None => (
                    "parallel leg (no sequential baseline)",
                    f.speedup_vs_interp(),
                    Some(b.speedup_vs_interp),
                ),
            },
            Some(b) => (
                "parallel leg",
                f.speedup_vs_interp(),
                Some(b.speedup_vs_interp),
            ),
            None => ("parallel leg", f.speedup_vs_interp(), None),
        };
        let (ok, detail) = if !f.equal {
            (false, "engine/interpreter cross-check failed".to_string())
        } else {
            match baseline_speedup {
                None => (true, "new workload (no baseline)".to_string()),
                Some(base_speedup) => {
                    let floor = base_speedup / max_slowdown;
                    if fresh_speedup >= floor {
                        (
                            true,
                            format!(
                                "{fresh_speedup:.2}x vs baseline {base_speedup:.2}x \
                                 (floor {floor:.2}x, {leg})"
                            ),
                        )
                    } else {
                        (
                            false,
                            format!(
                                "slowdown: {fresh_speedup:.2}x < floor {floor:.2}x \
                                 (baseline {base_speedup:.2}x, max-slowdown {max_slowdown}, {leg})"
                            ),
                        )
                    }
                }
            }
        };
        verdicts.push(RegressionVerdict {
            workload: f.workload.clone(),
            baseline_speedup,
            fresh_speedup: Some(fresh_speedup),
            ok,
            detail,
        });
        // Scaling-efficiency gate: when the fresh parallel leg really ran
        // multi-worker AND the baseline row is parallel-comparable (same
        // core and worker counts) AND it recorded a scaling ratio, the
        // fresh `engine_par_ms / engine_seq_ms` may not degrade past
        // `baseline * max_slowdown`.  Lower is better here, so the bound is
        // a ceiling, not a floor; on mismatched core counts the gate is
        // skipped — a 1-core machine cannot be held to 4-core scaling.
        if f.workers >= 2 {
            if let Some(base_ratio) = base
                .filter(|b| parallel_comparable(b))
                .and_then(|b| b.par_over_seq)
            {
                let fresh_ratio = f.par_over_seq();
                let ceiling = base_ratio * max_slowdown;
                let ok = fresh_ratio <= ceiling;
                let detail = if ok {
                    format!(
                        "par/seq {fresh_ratio:.2} vs baseline {base_ratio:.2} \
                         (ceiling {ceiling:.2}, {} workers)",
                        f.workers
                    )
                } else {
                    format!(
                        "scaling regression: par/seq {fresh_ratio:.2} > ceiling {ceiling:.2} \
                         (baseline {base_ratio:.2}, max-slowdown {max_slowdown}, {} workers)",
                        f.workers
                    )
                };
                verdicts.push(RegressionVerdict {
                    workload: format!("{} [scaling]", f.workload),
                    baseline_speedup: Some(base_ratio),
                    fresh_speedup: Some(fresh_ratio),
                    ok,
                    detail,
                });
            }
        }
    }
    for b in baseline {
        if !fresh.iter().any(|f| f.workload == b.workload) {
            verdicts.push(RegressionVerdict {
                workload: b.workload.clone(),
                baseline_speedup: Some(b.speedup_vs_interp),
                fresh_speedup: None,
                ok: false,
                detail: "workload present in baseline but not measured".to_string(),
            });
        }
    }
    verdicts
}

/// Serialize measured engine rows as the `BENCH_engine.json` document (a
/// hand-rolled, dependency-free JSON emitter).
pub fn engine_bench_json(rows: &[EngineBenchRow]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"engine_vs_interp\",\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"rows\": {}, \"interp_ms\": {:.3}, \
             \"engine_seq_ms\": {:.3}, \"engine_par_ms\": {:.3}, \"workers\": {}, \
             \"available_parallelism\": {}, \"runs\": {}, \"speedup_vs_interp\": {:.3}, \
             \"par_over_seq\": {:.3}, \"equal\": {}}}{}\n",
            r.workload,
            r.rows,
            r.interp_ms,
            r.engine_seq_ms,
            r.engine_par_ms,
            r.workers,
            r.available_parallelism,
            r.runs,
            r.speedup_vs_interp(),
            r.par_over_seq(),
            r.equal,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render the committed `BENCH_engine.json` rows as the README's
/// performance table (GitHub-flavored markdown).  The README section is
/// **generated**, not hand-maintained: regenerate it with
/// `experiments -- readme-perf` after refreshing the baseline, so the
/// prose can never drift from the committed measurements.
pub fn readme_perf_table(baseline: &[BaselineRow]) -> String {
    let mut out = String::from(
        "| workload | rows | interp ms | engine 1w ms | engine Nw ms | workers | speedup | par/seq |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    for b in baseline {
        let num = |v: Option<f64>| v.map_or_else(|| "—".to_string(), |x| format!("{x:.2}"));
        let count = |v: Option<usize>| v.map_or_else(|| "—".to_string(), |x| x.to_string());
        out.push_str(&format!(
            "| `{}` | {} | {} | {} | {} | {} | **{:.2}×** | {} |\n",
            b.workload,
            count(b.rows),
            num(b.interp_ms),
            num(b.engine_seq_ms),
            num(b.engine_par_ms),
            count(b.workers),
            b.speedup_vs_interp,
            num(b.par_over_seq),
        ));
    }
    out
}

/// Render measured engine rows as a comparison table under `title`.
fn engine_table(title: &str, rows: &[EngineBenchRow]) -> Table {
    let mut table = Table::new(
        title,
        &[
            "workload",
            "rows",
            "interp ms",
            "engine 1w ms",
            "engine Nw ms",
            "workers",
            "cores",
            "speedup",
            "equal",
        ],
    );
    for r in rows {
        table.push_row(vec![
            r.workload.clone(),
            r.rows.to_string(),
            format!("{:.3}", r.interp_ms),
            format!("{:.3}", r.engine_seq_ms),
            format!("{:.3}", r.engine_par_ms),
            r.workers.to_string(),
            r.available_parallelism.to_string(),
            format!("{:.2}x", r.speedup_vs_interp()),
            r.equal.to_string(),
        ]);
    }
    table
}

/// Render measured engine rows as the E13 table.
pub fn e13_table_from_rows(rows: &[EngineBenchRow]) -> Table {
    engine_table("E13: physical engine vs interpreter (or-engine)", rows)
}

/// Render measured session-replay rows as the E14 table.
pub fn e14_table_from_rows(rows: &[EngineBenchRow]) -> Table {
    engine_table(
        "E14: engine-first OrQL sessions (Interp vs Engine vs EngineChecked)",
        rows,
    )
}

/// E13: the streaming parallel engine against the tree-walking interpreter
/// on the partitioned-scan, or-expand and equi-join workloads.
pub fn e13_engine_vs_interp(scale: usize) -> Table {
    e13_table_from_rows(&e13_engine_rows(scale))
}

/// E14: the engine-first session replay.
pub fn e14_session_engine_first(scale: usize) -> Table {
    e14_table_from_rows(&e14_session_rows(scale))
}

// ---------------------------------------------------------------------------
// E15: concurrent replay — N clients share one frozen session snapshot
// ---------------------------------------------------------------------------

/// Build the shared, frozen core the e15 clients query: the e14 bindings
/// interned into one [`or_lang::SessionCore`] whose snapshot every client
/// thread then reads through `Arc`-shared overlay arenas.
pub fn e15_core(scale: usize) -> or_lang::SessionCore {
    let mut core = or_lang::SessionCore::new();
    for (name, value) in e14_bindings(scale) {
        core.bind(name, value);
    }
    core
}

/// One client's replay: every [`E14_SCRIPT`] statement evaluated read-only
/// against the shared core (`eval_statement` takes `&self`, so any number
/// of these run concurrently).
pub fn e15_replay(core: &or_lang::SessionCore, config: or_engine::ExecConfig) -> Vec<Value> {
    E14_SCRIPT
        .iter()
        .map(|stmt| {
            core.eval_statement(
                stmt,
                or_lang::ExecMode::Engine,
                config,
                or_lang::QueryBudget::unlimited(),
            )
            .expect("e15 statement")
            .value
        })
        .collect()
}

/// Fan `clients` replay threads out over one shared core.  Returns each
/// client's values, each client's own wall-clock latency (ms), and the
/// whole fan-out's wall time (ms).
pub fn e15_fanout(
    core: &std::sync::Arc<or_lang::SessionCore>,
    clients: usize,
    config: or_engine::ExecConfig,
) -> (Vec<Vec<Value>>, Vec<f64>, f64) {
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let core = std::sync::Arc::clone(core);
            std::thread::spawn(move || {
                let begin = Instant::now();
                let values = e15_replay(&core, config);
                (values, begin.elapsed().as_secs_f64() * 1e3)
            })
        })
        .collect();
    let mut values = Vec::with_capacity(clients);
    let mut latencies = Vec::with_capacity(clients);
    for handle in handles {
        let (v, ms) = handle.join().expect("e15 client thread");
        values.push(v);
        latencies.push(ms);
    }
    (values, latencies, start.elapsed().as_secs_f64() * 1e3)
}

/// E15: the or-server serving story as a library benchmark — 1, 2, 4 and 8
/// client threads replay the e14 statements against ONE shared frozen
/// snapshot, recording **per-client latency** (median and worst across
/// [`TIMED_RUNS`] rounds after a warmup) and aggregate throughput.  Every
/// client's every answer is checked against the sequential interpreter
/// (`equal`).  Engine workers are pinned to 1 per query so the client
/// count is the only parallelism axis.
pub fn e15_concurrent_replay(scale: usize) -> Table {
    let mut table = Table::new(
        format!(
            "E15: concurrent replay of {} statements over one shared frozen snapshot \
             (scale {scale}, per-query workers 1, median of {TIMED_RUNS} rounds)",
            E14_SCRIPT.len()
        ),
        &[
            "clients",
            "median_client_ms",
            "worst_client_ms",
            "wall_ms",
            "stmts_per_s",
            "equal",
        ],
    );
    let core = std::sync::Arc::new(e15_core(scale));
    let config = or_engine::ExecConfig::default().with_pinned_workers(1);
    // the differential reference: the sequential interpreter
    let expected: Vec<Value> = E14_SCRIPT
        .iter()
        .map(|stmt| {
            core.eval_statement(
                stmt,
                or_lang::ExecMode::Interp,
                or_engine::ExecConfig::default(),
                or_lang::QueryBudget::unlimited(),
            )
            .expect("e15 interp reference")
            .value
        })
        .collect();
    for clients in [1usize, 2, 4, 8] {
        let _ = e15_fanout(&core, clients, config); // warmup, discarded
        let mut latencies: Vec<f64> = Vec::with_capacity(clients * TIMED_RUNS);
        let mut walls = [0.0f64; TIMED_RUNS];
        let mut equal = true;
        for wall in walls.iter_mut() {
            let (values, round_latencies, round_wall) = e15_fanout(&core, clients, config);
            equal &= values.iter().all(|v| *v == expected);
            latencies.extend(round_latencies);
            *wall = round_wall;
        }
        latencies.sort_unstable_by(|a, b| a.total_cmp(b));
        walls.sort_unstable_by(|a, b| a.total_cmp(b));
        let median_client = latencies[latencies.len() / 2];
        let worst_client = latencies[latencies.len() - 1];
        let wall = walls[TIMED_RUNS / 2];
        let stmts_per_s = (clients * E14_SCRIPT.len()) as f64 / (wall / 1e3);
        table.push_row(vec![
            clients.to_string(),
            format!("{median_client:.2}"),
            format!("{worst_client:.2}"),
            format!("{wall:.2}"),
            format!("{stmts_per_s:.0}"),
            equal.to_string(),
        ]);
    }
    table
}

/// Run every experiment at the default sizes and return the tables in order.
pub fn run_all() -> Vec<Table> {
    vec![
        e01_alpha_powerset(10),
        e02_alpha_blowup(14),
        e03_cardinality_bound(7, 6),
        e04_size_bound(6),
        e05_coherence(4),
        e06_losslessness(),
        e07_sat(10),
        e08_order_closure(),
        e09_iso_roundtrip(12),
        e10_theory_order(60),
        e11_normalize_expansion(10),
        e12_lazy_vs_eager(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e01_reports_agreement_between_alpha_and_powerset() {
        let t = e01_alpha_powerset(6);
        assert!(t.rows.iter().all(|r| r[4] == "true"));
    }

    #[test]
    fn e02_matches_two_to_the_n() {
        let t = e02_alpha_blowup(8);
        for row in &t.rows {
            assert_eq!(row[2], row[3]);
        }
    }

    #[test]
    fn e03_and_e04_stay_within_bounds() {
        let t3 = e03_cardinality_bound(4, 4);
        assert!(t3.rows.iter().all(|r| r[4] == "true"));
        // the witness rows are tight
        assert!(t3.rows.iter().take(4).all(|r| r[5] == "true"));
        let t4 = e04_size_bound(4);
        assert!(!t4.rows.is_empty());
        assert!(t4.rows.iter().take(3).all(|r| r[5] == "true"));
    }

    #[test]
    fn e05_reports_coherence() {
        let t = e05_coherence(2);
        assert!(t.rows.iter().all(|r| r[5] == "true"));
    }

    #[test]
    fn e06_classifies_morphisms() {
        let t = e06_losslessness();
        let by_name: Vec<(&str, &str, &str)> = t
            .rows
            .iter()
            .map(|r| (r[0].as_str(), r[2].as_str(), r[3].as_str()))
            .collect();
        // morphisms within the preconditions are lossless
        for (name, pre, lossless) in &by_name {
            if *pre == "satisfied" {
                assert_eq!(*lossless, "true", "{name} should be lossless");
            }
        }
        // the excluded equality example is genuinely not lossless
        assert!(by_name
            .iter()
            .any(|(name, pre, lossless)| name.contains("eq")
                && *pre != "satisfied"
                && *lossless == "false"));
    }

    #[test]
    fn e07_strategies_agree() {
        let t = e07_sat(4);
        assert!(t.rows.iter().all(|r| r[8] == "true"));
    }

    #[test]
    fn e08_orders_equal_closures() {
        let t = e08_order_closure();
        for row in &t.rows {
            assert_eq!(row[2], row[3], "closure disagrees with direct order");
        }
    }

    #[test]
    fn e09_roundtrips_hold() {
        let t = e09_iso_roundtrip(6);
        for row in &t.rows {
            let parts: Vec<&str> = row[1].split('/').collect();
            assert_eq!(parts[0], parts[1]);
        }
    }

    #[test]
    fn e10_witnesses_are_sound_and_complete_on_the_shallow_class() {
        let t = e10_theory_order(30);
        // soundness everywhere
        for row in &t.rows {
            let parts: Vec<&str> = row[2].split('/').collect();
            assert_eq!(parts[0], parts[1], "unsound separating witness");
        }
        // completeness on the shallow class (first row)
        let parts: Vec<&str> = t.rows[0][3].split('/').collect();
        assert_eq!(parts[0], parts[1]);
    }

    #[test]
    fn e11_expansion_agrees_with_primitive() {
        let t = e11_normalize_expansion(4);
        for row in &t.rows {
            let parts: Vec<&str> = row[3].split('/').collect();
            assert_eq!(parts[0], parts[1]);
        }
    }

    #[test]
    fn e12_lazy_inspects_no_more_than_candidates() {
        let t = e12_lazy_vs_eager();
        for row in &t.rows {
            let candidates: u128 = row[1].parse().unwrap();
            let inspected: u128 = row[3].parse().unwrap();
            assert!(inspected <= candidates.max(1));
        }
    }

    #[test]
    fn design_possibility_helper_scales_exponentially() {
        assert_eq!(design_possibilities(3, 2), 8);
        assert_eq!(design_possibilities(4, 3), 81);
    }

    #[test]
    fn e13_measures_all_workloads_and_agrees_with_the_interpreter() {
        // tiny scale: correctness of the harness, not perf
        let rows = e13_engine_rows(160);
        let names: Vec<&str> = rows.iter().map(|r| r.workload.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "scan_filter_project",
                "columnar_filter_project",
                "or_expand",
                "or_expand_fanout8",
                "or_expand_planned",
                "equi_join"
            ]
        );
        for r in &rows {
            assert!(r.equal, "{} disagreed with the interpreter", r.workload);
            assert!(r.workers >= 1, "{} reported zero workers", r.workload);
        }
    }

    #[test]
    fn columnar_filter_project_workload_runs_fully_columnar() {
        use or_engine::{run_plan_with_stats, ExecConfig};
        use or_nra::optimize::lower;

        // the showcase workload must actually exercise the vectorized
        // kernels: every batch columnar, none falling back to scalar rows
        let relation = wide_relation(256);
        let plan = lower(&columnar_filter_project_query()).expect("lowerable");
        let config = ExecConfig::default().with_batch_size(64);
        let (value, stats) = run_plan_with_stats(&plan, &[&relation], config).expect("engine");
        assert!(!value.elements().unwrap().is_empty());
        assert!(stats.columnar_batches >= 1, "{stats:?}");
        assert_eq!(stats.scalar_fallback_batches, 0, "{stats:?}");
    }

    #[test]
    fn e14_plan_cache_row_hits_after_priming() {
        // tiny scale: correctness of the harness, not perf
        let rows = e14_plan_cache_rows(64);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.workload, "session_plan_cache");
        // `equal` folds in the cache contract (cold replays only miss,
        // warm replays only hit) alongside the value cross-check
        assert!(r.equal, "plan-cache replay legs disagreed");
        assert_eq!(r.workers, 1);
    }

    #[test]
    fn bench_json_round_trips_through_the_parser() {
        let rows = vec![
            EngineBenchRow {
                workload: "w1".to_string(),
                rows: 100,
                interp_ms: 10.0,
                engine_seq_ms: 5.0,
                engine_par_ms: 4.0,
                workers: 2,
                available_parallelism: 2,
                runs: TIMED_RUNS,
                equal: true,
            },
            EngineBenchRow {
                workload: "w2".to_string(),
                rows: 50,
                interp_ms: 1.0,
                engine_seq_ms: 2.0,
                engine_par_ms: 2.0,
                workers: 1,
                available_parallelism: 8,
                runs: TIMED_RUNS,
                equal: false,
            },
        ];
        let parsed = parse_engine_bench(&engine_bench_json(&rows));
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].workload, "w1");
        assert!((parsed[0].speedup_vs_interp - 2.5).abs() < 1e-9);
        assert!((parsed[0].speedup_seq.unwrap() - 2.0).abs() < 1e-9);
        assert_eq!(parsed[0].available_parallelism, Some(2));
        assert!(parsed[0].equal);
        assert_eq!(parsed[1].workload, "w2");
        assert_eq!(parsed[1].available_parallelism, Some(8));
        assert!(!parsed[1].equal);
    }

    #[test]
    fn parser_accepts_baselines_without_core_counts() {
        // the pre-available_parallelism format must keep parsing
        let legacy = r#"{"workload": "old", "rows": 10, "interp_ms": 8.0, "engine_seq_ms": 4.0, "engine_par_ms": 2.0, "workers": 2, "speedup_vs_interp": 4.0, "equal": true}"#;
        let parsed = parse_engine_bench(legacy);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].available_parallelism, None);
        assert!((parsed[0].speedup_seq.unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn regression_checker_flags_slowdowns_and_missing_workloads() {
        let base_row = |name: &str, speedup: f64| BaselineRow {
            workload: name.to_string(),
            speedup_vs_interp: speedup,
            speedup_seq: Some(speedup),
            available_parallelism: Some(1),
            workers: Some(1),
            par_over_seq: None,
            rows: None,
            interp_ms: None,
            engine_seq_ms: None,
            engine_par_ms: None,
            equal: true,
        };
        let baseline = vec![
            base_row("stable", 2.0),
            base_row("regressed", 2.0),
            base_row("dropped", 1.0),
        ];
        let fresh_row = |name: &str, par_ms: f64, equal: bool| EngineBenchRow {
            workload: name.to_string(),
            rows: 10,
            interp_ms: 10.0,
            engine_seq_ms: par_ms,
            engine_par_ms: par_ms,
            workers: 1,
            available_parallelism: 1,
            runs: TIMED_RUNS,
            equal,
        };
        let fresh = vec![
            fresh_row("stable", 5.2, true),    // 1.92x >= 2.0/1.15: ok
            fresh_row("regressed", 8.0, true), // 1.25x < 1.74x floor: fail
            fresh_row("brand_new", 5.0, true), // no baseline: ok
            fresh_row("unequal", 1.0, false),  // cross-check failed: fail
        ];
        let verdicts = check_regression(&baseline, &fresh, 1.15);
        let by_name = |n: &str| verdicts.iter().find(|v| v.workload == n).unwrap();
        assert!(by_name("stable").ok);
        assert!(!by_name("regressed").ok);
        assert!(by_name("brand_new").ok);
        assert!(!by_name("unequal").ok);
        assert!(!by_name("dropped").ok, "missing workloads must fail");
        assert_eq!(verdicts.len(), 5);
    }

    #[test]
    fn regression_checker_compares_the_sequential_leg_across_core_counts() {
        // baseline from a 16-core machine: parallel speedup 8x, seq 2x
        let baseline = vec![BaselineRow {
            workload: "w".to_string(),
            speedup_vs_interp: 8.0,
            speedup_seq: Some(2.0),
            available_parallelism: Some(16),
            workers: Some(16),
            par_over_seq: None,
            rows: None,
            interp_ms: None,
            engine_seq_ms: None,
            engine_par_ms: None,
            equal: true,
        }];
        // fresh run on a 2-core machine: parallel only 1.9x (would fail the
        // parallel floor of 8/1.15), but the sequential leg held at 2x
        let fresh = vec![EngineBenchRow {
            workload: "w".to_string(),
            rows: 10,
            interp_ms: 10.0,
            engine_seq_ms: 5.0,
            engine_par_ms: 5.25,
            workers: 2,
            available_parallelism: 2,
            runs: TIMED_RUNS,
            equal: true,
        }];
        let verdicts = check_regression(&baseline, &fresh, 1.15);
        assert!(verdicts[0].ok, "{}", verdicts[0].detail);
        assert!(
            verdicts[0].detail.contains("sequential"),
            "{}",
            verdicts[0].detail
        );
        // same machine and worker count: the parallel leg is compared and
        // fails
        let same_core_baseline = vec![BaselineRow {
            available_parallelism: Some(2),
            workers: Some(2),
            ..baseline[0].clone()
        }];
        let verdicts = check_regression(&same_core_baseline, &fresh, 1.15);
        assert!(!verdicts[0].ok, "{}", verdicts[0].detail);
        assert!(
            verdicts[0].detail.contains("parallel"),
            "{}",
            verdicts[0].detail
        );
        // same core count but a different worker count (an OR_ENGINE_WORKERS
        // override on one side): the parallel legs are not comparable, so
        // the checker falls back to the sequential leg and passes
        let overridden_baseline = vec![BaselineRow {
            available_parallelism: Some(2),
            workers: Some(8),
            ..baseline[0].clone()
        }];
        let verdicts = check_regression(&overridden_baseline, &fresh, 1.15);
        assert!(verdicts[0].ok, "{}", verdicts[0].detail);
        assert!(
            verdicts[0].detail.contains("worker counts differ"),
            "{}",
            verdicts[0].detail
        );
    }

    #[test]
    fn regression_checker_prefers_the_shape_matched_baseline_row() {
        // two baseline rows for the same workload: a 16-core laptop's (high
        // parallel speedup, listed first) and a 2-core CI runner's.  A
        // fresh 2-core run must be held to the runner's parallel numbers,
        // not dodge them via the laptop row's sequential-leg fallback.
        let laptop = BaselineRow {
            workload: "w".to_string(),
            speedup_vs_interp: 8.0,
            speedup_seq: Some(2.0),
            available_parallelism: Some(16),
            workers: Some(16),
            par_over_seq: None,
            rows: None,
            interp_ms: None,
            engine_seq_ms: None,
            engine_par_ms: None,
            equal: true,
        };
        let runner = BaselineRow {
            speedup_vs_interp: 3.0,
            available_parallelism: Some(2),
            workers: Some(2),
            ..laptop.clone()
        };
        let baseline = vec![laptop.clone(), runner];
        // fresh 2-core run at 2.0x parallel: fine against the laptop's
        // sequential fallback (2.0 >= 2.0/1.15) but below the runner's
        // parallel floor of 3.0/1.15 ≈ 2.61
        let fresh = vec![EngineBenchRow {
            workload: "w".to_string(),
            rows: 10,
            interp_ms: 10.0,
            engine_seq_ms: 5.0,
            engine_par_ms: 5.0,
            workers: 2,
            available_parallelism: 2,
            runs: TIMED_RUNS,
            equal: true,
        }];
        let verdicts = check_regression(&baseline, &fresh, 1.15);
        assert!(!verdicts[0].ok, "{}", verdicts[0].detail);
        assert!(
            verdicts[0].detail.contains("parallel"),
            "{}",
            verdicts[0].detail
        );
        // with only the laptop row present, the sequential fallback still
        // applies as before
        let verdicts = check_regression(&[laptop], &fresh, 1.15);
        assert!(verdicts[0].ok, "{}", verdicts[0].detail);
        assert!(
            verdicts[0].detail.contains("sequential"),
            "{}",
            verdicts[0].detail
        );
    }

    #[test]
    fn regression_checker_gates_scaling_efficiency_on_matching_cores() {
        // baseline: 4 cores / 4 workers, the parallel leg halved the
        // sequential time (par/seq 0.5) at a modest 2x interpreter speedup
        let baseline = vec![BaselineRow {
            workload: "w".to_string(),
            speedup_vs_interp: 2.0,
            speedup_seq: Some(2.0),
            available_parallelism: Some(4),
            workers: Some(4),
            par_over_seq: Some(0.5),
            rows: None,
            interp_ms: None,
            engine_seq_ms: None,
            engine_par_ms: None,
            equal: true,
        }];
        // fresh run, same machine shape: still 2x over the interpreter,
        // but parallelism stopped paying (par/seq 0.98 > 0.5 * 1.15)
        let fresh = vec![EngineBenchRow {
            workload: "w".to_string(),
            rows: 10,
            interp_ms: 10.0,
            engine_seq_ms: 5.0,
            engine_par_ms: 4.9,
            workers: 4,
            available_parallelism: 4,
            runs: TIMED_RUNS,
            equal: true,
        }];
        let verdicts = check_regression(&baseline, &fresh, 1.15);
        assert_eq!(
            verdicts.len(),
            2,
            "expected a speedup and a scaling verdict"
        );
        assert!(verdicts[0].ok, "{}", verdicts[0].detail);
        assert_eq!(verdicts[1].workload, "w [scaling]");
        assert!(!verdicts[1].ok, "{}", verdicts[1].detail);
        assert!(verdicts[1].detail.contains("scaling regression"));
        // a healthy ratio passes the gate
        let mut healthy = fresh.clone();
        healthy[0].engine_par_ms = 2.6; // par/seq 0.52 <= 0.575
        let verdicts = check_regression(&baseline, &healthy, 1.15);
        assert!(verdicts.iter().all(|v| v.ok));
        // on a different core count there is no scaling verdict at all
        let mut elsewhere = fresh.clone();
        elsewhere[0].available_parallelism = 1;
        let verdicts = check_regression(&baseline, &elsewhere, 1.15);
        assert_eq!(verdicts.len(), 1, "scaling gate must skip mismatched cores");
    }

    #[test]
    fn readme_table_renders_the_committed_baseline_fields() {
        let rows = vec![EngineBenchRow {
            workload: "scan".to_string(),
            rows: 20_000,
            interp_ms: 10.0,
            engine_seq_ms: 4.0,
            engine_par_ms: 2.0,
            workers: 4,
            available_parallelism: 4,
            runs: TIMED_RUNS,
            equal: true,
        }];
        let table = readme_perf_table(&parse_engine_bench(&engine_bench_json(&rows)));
        assert!(table.starts_with("| workload |"), "{table}");
        assert!(
            table.contains("| `scan` | 20000 | 10.00 | 4.00 | 2.00 | 4 | **5.00×** | 0.50 |"),
            "{table}"
        );
    }

    #[test]
    fn e14_session_replay_agrees_across_modes() {
        // tiny scale: correctness of the harness, not perf
        let rows = e14_session_rows(64);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.workload, "session_engine_first");
        assert!(r.equal, "session modes disagreed");
        assert!(r.available_parallelism >= 1);
    }

    #[test]
    fn e15_concurrent_clients_agree_with_the_interpreter() {
        // tiny scale: correctness of the fan-out harness, not perf
        let core = std::sync::Arc::new(e15_core(64));
        let config = or_engine::ExecConfig::default().with_pinned_workers(1);
        let expected = e15_replay(&core, config);
        let (values, latencies, wall) = e15_fanout(&core, 4, config);
        assert_eq!(values.len(), 4);
        assert!(values.iter().all(|v| *v == expected));
        assert_eq!(latencies.len(), 4);
        assert!(latencies.iter().all(|ms| *ms <= wall + 1e-3));
    }

    #[test]
    fn regression_checker_accepts_the_committed_baseline_format() {
        // the committed BENCH_engine.json must stay parseable; this guards
        // the emitter and parser against drifting apart
        let rows = engine_bench_rows(80);
        let json = engine_bench_json(&rows);
        let baseline = parse_engine_bench(&json);
        assert_eq!(baseline.len(), rows.len());
        // a fresh run compared against itself never regresses
        let verdicts = check_regression(&baseline, &rows, 1.15);
        assert!(verdicts.iter().all(|v| v.ok));
    }
}
