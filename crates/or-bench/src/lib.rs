//! # or-bench — the experiment and benchmark harness
//!
//! The paper is a theory paper: its "evaluation" consists of worked examples,
//! complexity bounds and expressiveness results rather than measured tables.
//! This crate turns each of those claims into an executable experiment
//! (E1–E12, indexed in DESIGN.md):
//!
//! * [`experiments`] — one function per experiment, producing a printable
//!   [`table::Table`] of the measured quantities next to the paper's bounds;
//! * the `experiments` binary prints every table (EXPERIMENTS.md archives a
//!   run);
//! * `benches/` contains one Criterion benchmark per experiment, timing the
//!   same code paths over parameter sweeps.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod table;

pub use table::Table;
