//! # or-bench — the experiment and benchmark harness
//!
//! The paper is a theory paper: its "evaluation" consists of worked examples,
//! complexity bounds and expressiveness results rather than measured tables.
//! This crate turns each of those claims into an executable experiment
//! (E1–E12), and adds the system-level measurement E13 (the physical engine
//! against the interpreter):
//!
//! * [`experiments`] — one function per experiment, producing a printable
//!   [`table::Table`] of the measured quantities next to the paper's bounds;
//! * the `experiments` binary prints every table, and running `e13` also
//!   writes the machine-readable `BENCH_engine.json`;
//! * `benches/` contains one Criterion benchmark per experiment, timing the
//!   same code paths over parameter sweeps.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod table;

pub use table::Table;
