//! `experiments` — run every experiment (E1–E12) and print its table.
//!
//! ```text
//! cargo run --release -p or-bench --bin experiments            # all
//! cargo run --release -p or-bench --bin experiments -- e03 e07 # a subset
//! ```
//!
//! The output of a full run is archived in EXPERIMENTS.md next to the paper's
//! corresponding claims.

use or_bench::experiments;
use or_bench::Table;

fn all() -> Vec<(&'static str, fn() -> Table)> {
    vec![
        ("e01", || experiments::e01_alpha_powerset(10)),
        ("e02", || experiments::e02_alpha_blowup(14)),
        ("e03", || experiments::e03_cardinality_bound(7, 6)),
        ("e04", || experiments::e04_size_bound(6)),
        ("e05", || experiments::e05_coherence(4)),
        ("e06", experiments::e06_losslessness),
        ("e07", || experiments::e07_sat(10)),
        ("e08", experiments::e08_order_closure),
        ("e09", || experiments::e09_iso_roundtrip(12)),
        ("e10", || experiments::e10_theory_order(60)),
        ("e11", || experiments::e11_normalize_expansion(10)),
        ("e12", experiments::e12_lazy_vs_eager),
    ]
}

fn main() {
    let requested: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let mut ran = 0;
    for (name, run) in all() {
        if !requested.is_empty() && !requested.iter().any(|r| r == name) {
            continue;
        }
        let table = run();
        println!("{table}");
        ran += 1;
    }
    if ran == 0 {
        eprintln!("no experiment matched; known names: e01..e12");
        std::process::exit(1);
    }
}
