//! `experiments` — run every experiment (E1–E13) and print its table.
//!
//! ```text
//! cargo run --release -p or-bench --bin experiments            # all
//! cargo run --release -p or-bench --bin experiments -- e03 e07 # a subset
//! ```
//!
//! Running `e13` (alone or as part of the full suite) additionally writes
//! `BENCH_engine.json` — the machine-readable engine-vs-interpreter
//! measurements tracked across PRs.

use or_bench::experiments;
use or_bench::Table;

/// A named experiment runner.
type Experiment = (&'static str, fn() -> Table);

fn all() -> Vec<Experiment> {
    vec![
        ("e01", || experiments::e01_alpha_powerset(10)),
        ("e02", || experiments::e02_alpha_blowup(14)),
        ("e03", || experiments::e03_cardinality_bound(7, 6)),
        ("e04", || experiments::e04_size_bound(6)),
        ("e05", || experiments::e05_coherence(4)),
        ("e06", experiments::e06_losslessness),
        ("e07", || experiments::e07_sat(10)),
        ("e08", experiments::e08_order_closure),
        ("e09", || experiments::e09_iso_roundtrip(12)),
        ("e10", || experiments::e10_theory_order(60)),
        ("e11", || experiments::e11_normalize_expansion(10)),
        ("e12", experiments::e12_lazy_vs_eager),
        ("e13", || {
            let rows = experiments::e13_engine_rows(20_000);
            let json = experiments::engine_bench_json(&rows);
            match std::fs::write("BENCH_engine.json", &json) {
                Ok(()) => eprintln!("wrote BENCH_engine.json"),
                Err(e) => eprintln!("could not write BENCH_engine.json: {e}"),
            }
            experiments::e13_table_from_rows(&rows)
        }),
    ]
}

fn main() {
    let requested: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let mut ran = 0;
    for (name, run) in all() {
        if !requested.is_empty() && !requested.iter().any(|r| r == name) {
            continue;
        }
        let table = run();
        println!("{table}");
        ran += 1;
    }
    if ran == 0 {
        eprintln!("no experiment matched; known names: e01..e13");
        std::process::exit(1);
    }
}
