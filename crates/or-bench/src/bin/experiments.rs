//! `experiments` — run every experiment (E1–E15) and print its table.
//!
//! `e15` (the concurrent session replay) reports per-client latency over a
//! shared frozen snapshot; its rows are printed only and never written to
//! `BENCH_engine.json` (thread-scheduling noise would make them a flaky
//! regression baseline).
//!
//! ```text
//! cargo run --release -p or-bench --bin experiments            # all
//! cargo run --release -p or-bench --bin experiments -- e03 e07 # a subset
//! cargo run --release -p or-bench --bin experiments -- --workers 4 e13
//! ```
//!
//! Running `e13` (alone or as part of the full suite) additionally measures
//! the e14 session replay and writes `BENCH_engine.json` — the
//! machine-readable engine-vs-interpreter measurements (engine workloads
//! *and* the session replay) tracked across PRs.  `e14` alone prints the
//! session table without touching the file.  Every reported number is the
//! **median of 5 timed runs** after one discarded warmup run (the per-row
//! `runs` field records this).
//!
//! `--workers N` (equivalently the `OR_ENGINE_WORKERS` environment
//! variable) overrides the worker count of the parallel benchmark legs in
//! `e13`/`e14`/`check-regression`, so the parallel executor is exercised
//! even on machines whose `available_parallelism` reports 1.
//!
//! ## Regression checking
//!
//! ```text
//! experiments -- check-regression [--max-slowdown 1.15] [--baseline PATH]
//! ```
//!
//! reads the **committed** baseline (default `BENCH_engine.json`), re-runs
//! the e13+e14 measurements, and exits non-zero if any workload's speedup
//! fell below `baseline / max-slowdown`, if any engine/interpreter
//! cross-check failed, or if a baseline workload disappeared.  The parallel
//! leg is compared only when the baseline was measured on the same core
//! count (`available_parallelism`); otherwise the sequential leg is
//! compared, and multi-worker rows additionally gate on scaling
//! efficiency (`engine_par_ms / engine_seq_ms`) when the baseline is
//! parallel-comparable.  The fresh measurements are **not** written back —
//! the committed file stays the baseline of record.
//!
//! ## README generation
//!
//! ```text
//! experiments -- readme-perf [--baseline PATH]
//! ```
//!
//! prints the committed baseline as the README's markdown performance
//! table (see `docs/BENCHMARKS.md`), so the README numbers are always
//! regenerated from `BENCH_engine.json`, never hand-edited.

use or_bench::experiments;
use or_bench::Table;

/// A named experiment runner.
type Experiment = (&'static str, fn() -> Table);

/// The driving-relation scale shared by `e13` and `check-regression`.
const E13_SCALE: usize = 20_000;

fn all() -> Vec<Experiment> {
    vec![
        ("e01", || experiments::e01_alpha_powerset(10)),
        ("e02", || experiments::e02_alpha_blowup(14)),
        ("e03", || experiments::e03_cardinality_bound(7, 6)),
        ("e04", || experiments::e04_size_bound(6)),
        ("e05", || experiments::e05_coherence(4)),
        ("e06", experiments::e06_losslessness),
        ("e07", || experiments::e07_sat(10)),
        ("e08", experiments::e08_order_closure),
        ("e09", || experiments::e09_iso_roundtrip(12)),
        ("e10", || experiments::e10_theory_order(60)),
        ("e11", || experiments::e11_normalize_expansion(10)),
        ("e12", experiments::e12_lazy_vs_eager),
        ("e13", || {
            let rows = experiments::engine_bench_rows(E13_SCALE);
            let json = experiments::engine_bench_json(&rows);
            match std::fs::write("BENCH_engine.json", &json) {
                Ok(()) => eprintln!("wrote BENCH_engine.json"),
                Err(e) => eprintln!("could not write BENCH_engine.json: {e}"),
            }
            experiments::e13_table_from_rows(&rows)
        }),
        ("e14", || experiments::e14_session_engine_first(E13_SCALE)),
        ("e15", || experiments::e15_concurrent_replay(E13_SCALE)),
    ]
}

/// `readme-perf`: render the committed baseline as the README's markdown
/// performance table (stdout), so the README section is regenerated rather
/// than hand-edited.
fn readme_perf(args: &[String]) -> i32 {
    let mut baseline_path = "BENCH_engine.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => match it.next() {
                Some(p) => baseline_path = p.clone(),
                None => {
                    eprintln!("--baseline expects a path");
                    return 2;
                }
            },
            other => {
                eprintln!("unknown readme-perf argument: {other}");
                return 2;
            }
        }
    }
    let json = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("could not read baseline {baseline_path}: {e}");
            return 2;
        }
    };
    let baseline = experiments::parse_engine_bench(&json);
    if baseline.is_empty() {
        eprintln!("baseline {baseline_path} contains no workloads");
        return 2;
    }
    print!("{}", experiments::readme_perf_table(&baseline));
    0
}

/// `check-regression`: compare a fresh e13 run against the committed
/// baseline; process exit code 1 on any regression.
fn check_regression(args: &[String]) -> i32 {
    let mut max_slowdown = 1.15f64;
    let mut baseline_path = "BENCH_engine.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-slowdown" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 1.0 => max_slowdown = v,
                _ => {
                    eprintln!("--max-slowdown expects a number >= 1.0");
                    return 2;
                }
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = p.clone(),
                None => {
                    eprintln!("--baseline expects a path");
                    return 2;
                }
            },
            other => {
                eprintln!("unknown check-regression argument: {other}");
                return 2;
            }
        }
    }
    let baseline_json = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("could not read baseline {baseline_path}: {e}");
            return 2;
        }
    };
    let baseline = experiments::parse_engine_bench(&baseline_json);
    if baseline.is_empty() {
        eprintln!("baseline {baseline_path} contains no workloads");
        return 2;
    }
    eprintln!("measuring fresh e13+e14 rows (scale {E13_SCALE})...");
    let fresh = experiments::engine_bench_rows(E13_SCALE);
    println!("{}", experiments::e13_table_from_rows(&fresh));
    let verdicts = experiments::check_regression(&baseline, &fresh, max_slowdown);
    let mut failed = false;
    for v in &verdicts {
        let mark = if v.ok { "ok  " } else { "FAIL" };
        println!("{mark}  {:<22} {}", v.workload, v.detail);
        failed |= !v.ok;
    }
    if failed {
        eprintln!("bench regression detected (max-slowdown {max_slowdown})");
        1
    } else {
        eprintln!("no bench regression (max-slowdown {max_slowdown})");
        0
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // --workers N: override the parallel-leg worker count (exported as
    // OR_ENGINE_WORKERS so every measurement path sees it)
    if let Some(at) = args.iter().position(|a| a == "--workers") {
        match args.get(at + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n >= 1 => {
                std::env::set_var("OR_ENGINE_WORKERS", n.to_string());
                args.drain(at..=at + 1);
            }
            _ => {
                eprintln!("--workers expects a number >= 1");
                std::process::exit(2);
            }
        }
    }
    if args.first().map(String::as_str) == Some("check-regression") {
        std::process::exit(check_regression(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("readme-perf") {
        std::process::exit(readme_perf(&args[1..]));
    }
    let requested: Vec<String> = args.iter().map(|a| a.to_lowercase()).collect();
    let mut ran = 0;
    for (name, run) in all() {
        if !requested.is_empty() && !requested.iter().any(|r| r == name) {
            continue;
        }
        let table = run();
        println!("{table}");
        ran += 1;
    }
    if ran == 0 {
        eprintln!("no experiment matched; known names: e01..e15");
        std::process::exit(1);
    }
}
