//! A minimal fixed-width table printer for the experiment harness.
//!
//! Every experiment produces a [`Table`]; the `experiments` binary prints
//! them (and, for E13, also emits the machine-readable `BENCH_engine.json`).

use std::fmt;

/// A simple rectangular table with a title and column headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment identifier and description.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each row has exactly `headers.len()` cells).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are converted to strings by the caller).
    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Convenience: append a row from displayable cells.
    pub fn row<T: fmt::Display>(&mut self, cells: &[T]) {
        self.push_row(cells.iter().map(|c| c.to_string()).collect());
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}", self.title)?;
        let widths = self.widths();
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (cell, w) in cells.iter().zip(widths.iter()) {
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_an_aligned_table() {
        let mut t = Table::new("E0: demo", &["n", "value"]);
        t.row(&[1, 10]);
        t.row(&[22, 3]);
        let s = t.to_string();
        assert!(s.contains("## E0: demo"));
        assert!(s.contains("| n  | value |"));
        assert!(s.contains("| 22 | 3     |"));
    }
}
