//! A minimal, offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this shim provides the
//! subset of proptest the test suites use: the [`Strategy`] trait with
//! `prop_map`, integer-range and tuple strategies, [`collection::vec`],
//! `any::<T>()`, the [`proptest!`] macro with `#![proptest_config(..)]`
//! support, and the `prop_assert!` / `prop_assert_eq!` / `prop_assume!`
//! macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports its deterministic case seed
//!   instead of a minimized input;
//! * **deterministic inputs** — cases are generated from a fixed per-test
//!   seed (derived from the test's name), so runs are reproducible;
//! * rejected cases (`prop_assume!`) are retried with fresh input up to a
//!   bounded factor, as in the original.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Configuration and runtime plumbing used by the `proptest!` macro.

    /// Subset of proptest's configuration: only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases required per property.
        pub cases: u32,
        /// Accepted for API parity with real proptest; this shim does not
        /// shrink, so the value is ignored.
        pub max_shrink_iters: u32,
        /// Accepted for API parity; rejected-case retries are bounded by a
        /// fixed multiple of `cases` instead.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 1024,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case asked to be discarded (`prop_assume!` failed).
        Reject(String),
        /// The case failed an assertion.
        Fail(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Construct a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// The deterministic RNG driving input generation.
    #[derive(Debug, Clone)]
    pub struct TestRng(rand::rngs::StdRng);

    impl TestRng {
        /// RNG for case number `case` of the test named `name`.
        pub fn for_case(name: &str, case: u64) -> TestRng {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            use rand::SeedableRng;
            TestRng(rand::rngs::StdRng::seed_from_u64(
                h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }

        /// The next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            use rand::RngCore;
            self.0.next_u64()
        }

        /// A uniform sample from an inclusive integer range.
        pub fn below(&mut self, n: u64) -> u64 {
            use rand::Rng;
            self.0.gen_range(0..n.max(1))
        }
    }
}

use test_runner::TestRng;

/// A generation strategy for values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is just a deterministic function of the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let off = (rng.next_u64() as i128).rem_euclid(span);
                ((self.start as i128) + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128) - (lo as i128) + 1;
                let off = (rng.next_u64() as i128).rem_euclid(span);
                ((lo as i128) + off) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Types with a canonical "anything" strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Produce an arbitrary value from raw random bits.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for an arbitrary value of `T` — see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// `Just(v)`: always produce a clone of `v`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies (subset: `vec`).

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Acceptable length specifications for [`vec`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The items `use proptest::prelude::*` is expected to bring in scope.

    pub use crate::collection;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{any, Any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Assert a condition inside a property, failing the case (not panicking
/// directly) so the harness can report the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Discard the current case (it does not count towards `cases`) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// The property-test macro.  Supports an optional leading
/// `#![proptest_config(..)]` and any number of `fn name(pat in strategy, ..)
/// { body }` items (doc comments and `#[test]` attributes included).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal item-muncher for [`proptest!`].  Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = config.cases as u64;
            let max_attempts = cases.saturating_mul(16).max(64);
            let mut passed = 0u64;
            let mut attempt = 0u64;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            while passed < cases {
                if attempt >= max_attempts {
                    panic!(
                        "proptest {test_name}: too many rejected cases \
                         ({passed}/{cases} passed after {attempt} attempts)"
                    );
                }
                let mut rng = $crate::test_runner::TestRng::for_case(test_name, attempt);
                attempt += 1;
                $(let $pat = $crate::Strategy::generate(&$strat, &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {test_name} failed at case seed {} : {msg}",
                            attempt - 1
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Generated integers respect their range strategy.
        #[test]
        fn ranges_respected(x in -5i64..5, y in 1usize..=3) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!((1..=3).contains(&y));
        }

        /// Tuples, maps, vec and assume compose.
        #[test]
        fn combinators_compose((a, b) in (0i64..6, 0i64..6).prop_map(|(x, y)| (x, x + y)),
                               v in collection::vec(0u8..4, 0..5)) {
            prop_assume!(!v.is_empty());
            prop_assert!(b >= a);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
