//! A minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment of this repository is fully offline, so the real
//! `rand` cannot be fetched from crates.io.  This shim implements exactly the
//! API surface the workspace uses — [`rngs::StdRng`], [`SeedableRng`], and the
//! [`Rng`] extension trait with `gen`, `gen_range`, `gen_bool` and
//! `gen_ratio` — on top of the SplitMix64 generator.  It is deterministic per
//! seed (which is all the workload generators require), uniform enough for
//! synthetic data, and explicitly **not** cryptographically secure.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the full output of the RNG
/// (the shim's analogue of sampling from the `Standard` distribution).
pub trait Standard: Sized {
    /// Produce a value from one 64-bit random word.
    fn from_random_u64(word: u64) -> Self;
}

impl Standard for bool {
    fn from_random_u64(word: u64) -> bool {
        word & 1 == 1
    }
}

impl Standard for u64 {
    fn from_random_u64(word: u64) -> u64 {
        word
    }
}

impl Standard for u32 {
    fn from_random_u64(word: u64) -> u32 {
        (word >> 32) as u32
    }
}

impl Standard for f64 {
    fn from_random_u64(word: u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types that can be sampled uniformly from a bounded range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from the inclusive range `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Sample uniformly from the half-open range `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128) - (lo as i128) + 1;
                // Modulo bias is negligible for the small spans used by the
                // workload generators (span ≪ 2^64).
                let offset = (rng.next_u64() as i128).rem_euclid(span);
                ((lo as i128) + offset) as $t
            }

            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample from empty range");
                let span = (hi as i128) - (lo as i128);
                let offset = (rng.next_u64() as i128).rem_euclid(span);
                ((lo as i128) + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Range arguments accepted by [`Rng::gen_range`] (subset of
/// `rand::distributions::uniform::SampleRange`).  The impls are blanket over
/// `T: SampleUniform`, matching real rand — this is what lets type inference
/// flow from the use site into untyped range literals.
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing random-value trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A random value of `T` (only the types the workspace samples are
    /// supported: `bool`, `u32`, `u64`, `f64`).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_random_u64(self.next_u64())
    }

    /// A uniform value in `range` (half-open or inclusive).
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        self.gen_range(0..denominator) < numerator
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's "standard" generator: SplitMix64.  Fast, tiny state, and
    /// passes the statistical needs of synthetic workload generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&x));
            let y: usize = rng.gen_range(1..=3);
            assert!((1..=3).contains(&y));
            let z: u8 = rng.gen_range(0..3u8);
            assert!(z < 3);
        }
    }

    #[test]
    fn gen_ratio_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..4000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!(hits > 800 && hits < 1200, "hits = {hits}");
    }
}
