//! A minimal, offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment cannot reach crates.io, so this shim implements the
//! subset of the criterion API the `or-bench` benchmarks use: `Criterion`,
//! `benchmark_group` with `sample_size` / `warm_up_time` / `measurement_time`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up within the configured
//! warm-up budget (which also estimates the per-iteration cost), then timed
//! for `sample_size` samples, each sample running as many iterations as fit
//! in `measurement_time / sample_size`.  Results are printed as
//! `name  time: [min mean max]` and collected in a machine-readable report
//! via [`Criterion::take_results`].

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (re-export of
/// `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: a function name plus a displayable parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("scan", 1024)` displays as `scan/1024`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { name: s }
    }
}

/// One measured benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/function[/param]` path of the benchmark.
    pub id: String,
    /// Fastest sample.
    pub min_ns: f64,
    /// Mean over samples.
    pub mean_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Total iterations executed during measurement.
    pub iterations: u64,
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: 20,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(500),
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.bench_function(name, f);
        group.finish();
        self
    }

    /// Drain the results recorded so far (used by JSON emitters).
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before timing starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement duration budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Benchmark `f`, identified by `id` (a `&str` or [`BenchmarkId`]).
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = self.qualify(id.into());
        let result = run_benchmark(
            &id,
            self.sample_size,
            self.warm_up,
            self.measurement,
            &mut |b| f(b),
        );
        self.parent.results.push(result);
        self
    }

    /// Benchmark `f` with an input reference.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = self.qualify(id.into());
        let result = run_benchmark(
            &id,
            self.sample_size,
            self.warm_up,
            self.measurement,
            &mut |b| f(b, input),
        );
        self.parent.results.push(result);
        self
    }

    /// End the group (kept for API parity; results are already recorded).
    pub fn finish(&mut self) {}

    fn qualify(&self, id: BenchmarkId) -> String {
        if self.name.is_empty() {
            id.name
        } else {
            format!("{}/{}", self.name, id.name)
        }
    }
}

/// The per-benchmark timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    /// Iterations the next `iter` call must perform (set by the harness).
    budget: u64,
    /// Duration of the most recent `iter` call.
    elapsed: Duration,
    /// Iterations performed by the most recent `iter` call.
    iters: u64,
}

impl Bencher {
    fn with_budget(budget: u64) -> Bencher {
        Bencher {
            budget: budget.max(1),
            elapsed: Duration::ZERO,
            iters: 0,
        }
    }

    /// Run the routine for the harness-chosen number of iterations and record
    /// the elapsed wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.budget {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = self.budget;
    }
}

fn run_benchmark(
    id: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    run: &mut dyn FnMut(&mut Bencher),
) -> BenchResult {
    // Warm-up: single-iteration runs until the budget is spent; the last run
    // estimates the per-iteration cost.
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    loop {
        let mut b = Bencher::with_budget(1);
        run(&mut b);
        if b.iters > 0 {
            per_iter = b.elapsed.max(Duration::from_nanos(1));
        }
        if warm_start.elapsed() >= warm_up {
            break;
        }
    }

    // Fit sample_size samples into the measurement budget.
    let per_sample = measurement / sample_size.max(1) as u32;
    let iters_per_sample =
        (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    let mut total_iters = 0u64;
    for _ in 0..sample_size {
        let mut b = Bencher::with_budget(iters_per_sample);
        run(&mut b);
        if b.iters > 0 {
            samples_ns.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
            total_iters += b.iters;
        }
    }
    if samples_ns.is_empty() {
        // the closure never called `iter`; fall back to the warm-up estimate
        samples_ns.push(per_iter.as_nanos() as f64);
    }
    let min = samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples_ns.iter().cloned().fold(0.0f64, f64::max);
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    println!(
        "{id:<48} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max)
    );
    BenchResult {
        id: id.to_string(),
        min_ns: min,
        mean_ns: mean,
        max_ns: max,
        iterations: total_iters,
    }
}

/// Format nanoseconds with an adaptive unit, criterion-style.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Define a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_record_results() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(5));
            g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
            g.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| b.iter(|| x * x));
            g.finish();
        }
        let results = c.take_results();
        assert_eq!(results.len(), 2);
        assert!(results[0].id.starts_with("g/"));
        assert!(results.iter().all(|r| r.mean_ns > 0.0));
    }
}
