//! The `or-analyze` CLI: the repository's one static-analysis entry point.
//!
//! ```text
//! or-analyze lint         [--root PATH]   # source lint (L01–L06)
//! or-analyze verify-plans [--root PATH]   # plan verification (V01–V10)
//! ```
//!
//! Both subcommands print findings as `file:line [Lxx] …` /
//! `context [Vxx] …` lines and exit non-zero when anything
//! deny-severity is found, so CI can gate on them directly.

use std::path::PathBuf;
use std::process::ExitCode;

use or_analyze::{lint_repo, verify_repo_plans};

fn usage() -> ExitCode {
    eprintln!("usage: or-analyze <lint|verify-plans> [--root PATH]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        return usage();
    };
    let mut root = PathBuf::from(".");
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--root" => match args.next() {
                Some(path) => root = PathBuf::from(path),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    match command.as_str() {
        "lint" => {
            let findings = lint_repo(&root);
            for finding in &findings {
                println!("{finding}");
            }
            if findings.is_empty() {
                println!("or-analyze lint: clean");
                ExitCode::SUCCESS
            } else {
                println!("or-analyze lint: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        "verify-plans" => match verify_repo_plans(&root) {
            Ok(report) => {
                let mut denies = 0;
                for check in &report.checks {
                    for violation in &check.violations {
                        if violation.is_deny() {
                            denies += 1;
                            println!("DENY {}: `{}`: {violation}", check.context, check.statement);
                        } else {
                            println!("warn {}: `{}`: {violation}", check.context, check.statement);
                        }
                    }
                }
                println!(
                    "or-analyze verify-plans: {} plan(s) verified, {} interpreter fallback(s), \
                     {} deny / {} warn",
                    report.checks.len(),
                    report.fallbacks.len(),
                    report.deny_count(),
                    report.warn_count(),
                );
                if denies == 0 {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("or-analyze verify-plans: {e}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}
