//! The repo-specific source lint: hand-rolled, std-only, in the style of
//! the old `tests/doc_links.rs` audit (which rule L06 absorbed).
//!
//! Each rule has a stable `Lxx` identifier documented in
//! `docs/ANALYZE.md`.  The rules encode discipline this repository's
//! architecture depends on but `rustc`/`clippy` cannot see:
//!
//! * **L01 server-unwrap** — no `unwrap()`/`expect()` in or-server
//!   request-handling paths: a panicking handler thread takes its
//!   connection down and (for lock poisoning) can wedge every later
//!   request.
//! * **L02 lock-order** — the registry `RwLock` (`state.dbs`) is never
//!   acquired while holding a per-db write mutex; the server's deadlock
//!   freedom is exactly this ordering.
//! * **L03 decode-boundary** — `Interner::decode` is called only in the
//!   designated result-boundary modules; everywhere else rows stay
//!   `InternId`s (the decode-once economics of `docs/ENGINE.md`).
//! * **L04 id-equality** — engine hot-path modules never key containers by
//!   `Value`: interning exists so row identity is a `u32` compare.
//! * **L05 forbid-unsafe** — every crate root carries
//!   `#![forbid(unsafe_code)]`, and no source introduces an `unsafe`
//!   block/fn/impl/trait anywhere.
//! * **L06 doc-links** — every relative markdown link in `README.md` and
//!   `docs/*.md` resolves to a real file.
//! * **L07 columnar-kernels** — the engine's columnar kernel module works
//!   on pre-resolved column slices only: no `Interner` table probes of any
//!   kind inside the kernel loops.  Operands are resolved to columns once
//!   per block *outside* the kernels; a per-row arena walk inside them
//!   would reintroduce the pointer chasing the columnar layout amortizes
//!   away.
//!
//! The matchers are substring heuristics over source lines (comments and
//! `#[cfg(test)]` regions excluded for the code rules), deliberately
//! simple enough to audit by eye.  Pattern literals are assembled with
//! `concat!` so this file does not flag itself.

use std::fs;
use std::path::{Path, PathBuf};

/// One lint finding: which rule, where, and why it matters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier (`L01`…).
    pub rule: &'static str,
    /// File the finding is in, relative to the repository root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{} [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

// Pattern literals, split so the lint does not flag its own source.
const UNWRAP: &str = concat!(".unw", "rap()");
const EXPECT: &str = concat!(".exp", "ect(");
const DECODE: &str = concat!(".dec", "ode(");
const DBS_READ: &str = concat!(".dbs.re", "ad(");
const DBS_WRITE: &str = concat!(".dbs.wr", "ite(");
const WRITE_LOCK: &str = concat!(".write.lo", "ck(");
const FORBID_UNSAFE: &str = concat!("#![forbid(un", "safe_code)]");
const UNSAFE_TOKENS: [&str; 4] = [
    concat!("un", "safe {"),
    concat!("un", "safe fn"),
    concat!("un", "safe impl"),
    concat!("un", "safe trait"),
];
const VALUE_KEYED: [&str; 4] = [
    concat!("HashMap<Va", "lue"),
    concat!("HashSet<Va", "lue"),
    concat!("BTreeMap<Va", "lue"),
    concat!("BTreeSet<Va", "lue"),
];

/// Modules allowed to call `Interner::decode` (rule L03): the interner
/// itself, the result boundary of the executor, the one operator that must
/// re-enter value space (`AttachEnv` setup), and the two or-nra modules
/// whose fallback/counting paths are documented decode users.
const DECODE_ALLOWLIST: [&str; 5] = [
    "crates/or-object/src/intern.rs",
    "crates/or-engine/src/exec.rs",
    "crates/or-engine/src/ops.rs",
    "crates/or-nra/src/rowprog.rs",
    "crates/or-nra/src/lazy.rs",
];

/// Engine hot-path modules where container keys must be `InternId`s, not
/// `Value`s (rule L04).
const ID_EQUALITY_SCOPE: [&str; 3] = [
    "crates/or-engine/src/ops.rs",
    "crates/or-engine/src/morsel.rs",
    "crates/or-engine/src/exec.rs",
];

/// Columnar kernel modules (rule L07): tight loops over pre-resolved
/// slices, with every arena access banned.
const COLUMNAR_KERNEL_SCOPE: [&str; 1] = ["crates/or-engine/src/kernels.rs"];

/// Arena-access tokens banned inside columnar kernels (rule L07): naming
/// the `Interner` type at all, plus every method that walks or grows the
/// node table.
const KERNEL_ARENA_TOKENS: [&str; 7] = [
    concat!("Inter", "ner"),
    concat!(".int", "ern("),
    concat!(".no", "de("),
    concat!(".dec", "ode("),
    concat!(".val", "ue("),
    concat!(".gather_", "path("),
    concat!(".resolve_", "ints("),
];

/// Crate roots that must carry the `forbid` attribute (rule L05).
const CRATE_ROOT_GLOBS: [&str; 3] = [
    "src/lib.rs",
    "crates/*/src/lib.rs",
    "crates/shims/*/src/lib.rs",
];

/// Run every lint rule over the repository at `root`.  Findings come back
/// in rule order; an empty vector means the repository is clean.
pub fn lint_repo(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let sources = rust_sources(root);

    lint_server_rules(root, &sources, &mut findings);
    lint_decode_boundary(root, &sources, &mut findings);
    lint_id_equality(root, &sources, &mut findings);
    lint_forbid_unsafe(root, &sources, &mut findings);
    lint_doc_links(root, &mut findings);
    lint_columnar_kernels(root, &sources, &mut findings);

    findings.sort_by(|a, b| (a.rule, &a.file, a.line).cmp(&(b.rule, &b.file, b.line)));
    findings
}

/// Every tracked `.rs` file under `src/`, `crates/`, `tests/`, `examples/`
/// and `benches/`, as repo-relative paths (build output excluded).
fn rust_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in ["src", "crates", "tests", "examples", "benches"] {
        collect_rs(&root.join(top), root, &mut out);
    }
    out.sort();
    out
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, root, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
}

/// The lines of a source file up to its `#[cfg(test)]` module, paired with
/// 1-based line numbers and with comment lines dropped — the scope the
/// code rules (L01–L04) look at.  (Test modules sit at the end of files in
/// this repository, so "everything before the marker" is the non-test
/// code.)
fn code_lines(source: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    for (idx, line) in source.lines().enumerate() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        if line.trim_start().starts_with("//") {
            continue;
        }
        out.push((idx + 1, line));
    }
    out
}

fn path_str(p: &Path) -> String {
    // repo-relative paths with forward slashes, for matching and display
    p.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Does `line` contain `pattern` at a position not immediately preceded by
/// `self`?  (The or-server JSON parser has a *method* named like the
/// panicking combinator; `self.`-qualified calls to it are fine.)
fn contains_unqualified(line: &str, pattern: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find(pattern) {
        let abs = from + pos;
        if !line[..abs].ends_with("self") {
            return true;
        }
        from = abs + pattern.len();
    }
    false
}

/// L01 + L02: the or-server request-handling rules.
fn lint_server_rules(root: &Path, sources: &[PathBuf], findings: &mut Vec<Finding>) {
    for rel in sources {
        let rel_str = path_str(rel);
        if !rel_str.starts_with("crates/or-server/src/") || rel_str.contains("/bin/") {
            continue;
        }
        let Ok(source) = fs::read_to_string(root.join(rel)) else {
            continue;
        };
        // L02 state: does the current function hold a per-db write mutex?
        let mut holds_write_mutex = false;
        for (line_no, line) in code_lines(&source) {
            // L01: no panicking combinators in request-handling paths.
            if line.contains(UNWRAP) {
                findings.push(Finding {
                    rule: "L01",
                    file: rel.clone(),
                    line: line_no,
                    message: format!(
                        "panicking `{UNWRAP}` in an or-server request-handling path; \
                         return an error response instead"
                    ),
                });
            }
            if contains_unqualified(line, EXPECT) {
                findings.push(Finding {
                    rule: "L01",
                    file: rel.clone(),
                    line: line_no,
                    message: format!(
                        "panicking `{EXPECT}..)` in an or-server request-handling path; \
                         handle the failure (for locks: recover the poisoned guard)"
                    ),
                });
            }
            // L02: registry lock after per-db write mutex = deadlock order.
            if line.contains("fn ") && line.contains('(') {
                holds_write_mutex = false;
            }
            if line.contains(WRITE_LOCK) {
                holds_write_mutex = true;
            }
            if holds_write_mutex && (line.contains(DBS_READ) || line.contains(DBS_WRITE)) {
                findings.push(Finding {
                    rule: "L02",
                    file: rel.clone(),
                    line: line_no,
                    message: "registry lock (`state.dbs`) acquired while holding a per-db \
                              write mutex — the server's lock order is registry first, \
                              then per-db"
                        .to_string(),
                });
            }
        }
    }
}

/// L03: `Interner::decode` only at the designated result boundaries.
fn lint_decode_boundary(root: &Path, sources: &[PathBuf], findings: &mut Vec<Finding>) {
    for rel in sources {
        let rel_str = path_str(rel);
        if !rel_str.starts_with("crates/") && !rel_str.starts_with("src/") {
            continue;
        }
        if DECODE_ALLOWLIST.contains(&rel_str.as_str()) {
            continue;
        }
        let Ok(source) = fs::read_to_string(root.join(rel)) else {
            continue;
        };
        for (line_no, line) in code_lines(&source) {
            if line.contains(DECODE) {
                findings.push(Finding {
                    rule: "L03",
                    file: rel.clone(),
                    line: line_no,
                    message: format!(
                        "`{DECODE}..)` outside the result-boundary allowlist; rows must \
                         stay interned until the documented decode points"
                    ),
                });
            }
        }
    }
}

/// L04: no `Value`-keyed containers in engine hot paths.
fn lint_id_equality(root: &Path, sources: &[PathBuf], findings: &mut Vec<Finding>) {
    for rel in sources {
        let rel_str = path_str(rel);
        if !ID_EQUALITY_SCOPE.contains(&rel_str.as_str()) {
            continue;
        }
        let Ok(source) = fs::read_to_string(root.join(rel)) else {
            continue;
        };
        for (line_no, line) in code_lines(&source) {
            for pattern in VALUE_KEYED {
                if line.contains(pattern) {
                    findings.push(Finding {
                        rule: "L04",
                        file: rel.clone(),
                        line: line_no,
                        message: format!(
                            "`{pattern}…` in an engine hot path; key by `InternId` — \
                             interned identity is a u32 compare"
                        ),
                    });
                }
            }
        }
    }
}

/// L05: `#![forbid(unsafe_code)]` at every crate root; no unsafe anywhere.
fn lint_forbid_unsafe(root: &Path, sources: &[PathBuf], findings: &mut Vec<Finding>) {
    // crate roots must opt in to the forbid
    for glob in CRATE_ROOT_GLOBS {
        for lib in expand_one_star(root, glob) {
            let Ok(source) = fs::read_to_string(root.join(&lib)) else {
                continue;
            };
            if !source.contains(FORBID_UNSAFE) {
                findings.push(Finding {
                    rule: "L05",
                    file: lib,
                    line: 1,
                    message: format!("crate root is missing `{FORBID_UNSAFE}`"),
                });
            }
        }
    }
    // and no source may introduce unsafe code at all
    for rel in sources {
        let Ok(source) = fs::read_to_string(root.join(rel)) else {
            continue;
        };
        for (idx, line) in source.lines().enumerate() {
            if UNSAFE_TOKENS.iter().any(|t| line.contains(t)) {
                findings.push(Finding {
                    rule: "L05",
                    file: rel.clone(),
                    line: idx + 1,
                    message: "unsafe code is forbidden workspace-wide".to_string(),
                });
            }
        }
    }
}

/// L07: columnar kernels take pre-resolved slices; the arena stays out.
/// Resolution (`gather_path`/`resolve_ints`) happens once per block in the
/// operator layer — a per-row `Interner` probe inside a kernel loop defeats
/// the SoA layout's point.
fn lint_columnar_kernels(root: &Path, sources: &[PathBuf], findings: &mut Vec<Finding>) {
    for rel in sources {
        let rel_str = path_str(rel);
        if !COLUMNAR_KERNEL_SCOPE.contains(&rel_str.as_str()) {
            continue;
        }
        let Ok(source) = fs::read_to_string(root.join(rel)) else {
            continue;
        };
        for (line_no, line) in code_lines(&source) {
            for pattern in KERNEL_ARENA_TOKENS {
                if line.contains(pattern) {
                    findings.push(Finding {
                        rule: "L07",
                        file: rel.clone(),
                        line: line_no,
                        message: format!(
                            "`{pattern}…` inside a columnar kernel module; kernels work \
                             on pre-resolved column slices — resolve operands once per \
                             block in the operator layer instead"
                        ),
                    });
                }
            }
        }
    }
}

/// Expand a path pattern with at most one `*` component (e.g.
/// `crates/*/src/lib.rs`) against the filesystem.
fn expand_one_star(root: &Path, pattern: &str) -> Vec<PathBuf> {
    match pattern.split_once('*') {
        None => {
            let p = PathBuf::from(pattern);
            if root.join(&p).is_file() {
                vec![p]
            } else {
                Vec::new()
            }
        }
        Some((prefix, suffix)) => {
            let dir = root.join(prefix.trim_end_matches('/'));
            let suffix = suffix.trim_start_matches('/');
            let mut out = Vec::new();
            if let Ok(entries) = fs::read_dir(&dir) {
                for entry in entries.flatten() {
                    let candidate = entry.path().join(suffix);
                    if candidate.is_file() {
                        if let Ok(rel) = candidate.strip_prefix(root) {
                            out.push(rel.to_path_buf());
                        }
                    }
                }
            }
            out.sort();
            out
        }
    }
}

// ---------------------------------------------------------------------------
// L06: the markdown link audit (absorbed from tests/doc_links.rs)
// ---------------------------------------------------------------------------

/// Extract `(link target, byte offset)` pairs for every inline markdown
/// link `[text](target)` in `source`.  Reference-style links are not used
/// in this repository; images (`![..](..)`) share the inline syntax and
/// are audited the same way.
pub fn markdown_link_targets(source: &str) -> Vec<(String, usize)> {
    let bytes = source.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
            let start = i + 2;
            if let Some(rel_end) = source[start..].find(')') {
                let target = &source[start..start + rel_end];
                out.push((target.to_string(), i));
                i = start + rel_end;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Is this link target in scope for the audit (a relative path into the
/// repository)?
pub fn is_relative_file_link(target: &str) -> bool {
    !(target.is_empty()
        || target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#'))
}

fn audit_markdown_file(root: &Path, doc: &Path, findings: &mut Vec<Finding>) {
    let Ok(source) = fs::read_to_string(doc) else {
        return;
    };
    let doc_dir = doc.parent().unwrap_or(root);
    let rel = doc.strip_prefix(root).unwrap_or(doc).to_path_buf();
    for (target, offset) in markdown_link_targets(&source) {
        if !is_relative_file_link(&target) {
            continue;
        }
        // strip an in-file anchor: FILE.md#section points at FILE.md
        let Some(path_part) = target.split('#').next() else {
            continue;
        };
        if path_part.is_empty() {
            continue;
        }
        if !doc_dir.join(path_part).exists() {
            let line = source[..offset].bytes().filter(|&b| b == b'\n').count() + 1;
            findings.push(Finding {
                rule: "L06",
                file: rel.clone(),
                line,
                message: format!("broken relative link `{target}`"),
            });
        }
    }
}

/// L06 on its own (also what the root `doc_links` test delegates to):
/// audit `README.md` and every `docs/*.md`.
pub fn lint_doc_links(root: &Path, findings: &mut Vec<Finding>) {
    let mut docs = vec![root.join("README.md")];
    if let Ok(entries) = fs::read_dir(root.join("docs")) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "md") {
                docs.push(path);
            }
        }
    }
    docs.sort();
    for doc in &docs {
        audit_markdown_file(root, doc, findings);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_extractor_sees_inline_links() {
        let targets = markdown_link_targets("see [a](x.md) and ![img](y.png) but not http://z");
        let names: Vec<&str> = targets.iter().map(|(t, _)| t.as_str()).collect();
        assert_eq!(names, vec!["x.md", "y.png"]);
        assert!(is_relative_file_link("docs/ENGINE.md"));
        assert!(!is_relative_file_link("https://example.com"));
        assert!(!is_relative_file_link("#anchor"));
    }

    #[test]
    fn unqualified_match_skips_self_methods() {
        let call = format!("    body{EXPECT}b'x')?;");
        assert!(contains_unqualified(&call, EXPECT));
        let method = format!("    self{EXPECT}b'x')?;");
        assert!(!contains_unqualified(&method, EXPECT));
        let both = format!("    self{EXPECT}x)?; guard{EXPECT}\"oops\");");
        assert!(contains_unqualified(&both, EXPECT));
    }

    #[test]
    fn code_lines_stop_at_test_modules_and_skip_comments() {
        let src = "fn a() {}\n// comment .unw\n#[cfg(test)]\nmod tests { }\n";
        let lines = code_lines(src);
        assert_eq!(lines, vec![(1, "fn a() {}")]);
    }

    #[test]
    fn planted_violations_are_caught() {
        // Build a fake repo in a temp dir and plant one violation per rule.
        let dir = std::env::temp_dir().join(format!("or-analyze-lint-{}", std::process::id()));
        let server = dir.join("crates/or-server/src");
        let engine = dir.join("crates/or-engine/src");
        fs::create_dir_all(&server).unwrap();
        fs::create_dir_all(&engine).unwrap();
        fs::create_dir_all(dir.join("docs")).unwrap();

        fs::write(
            server.join("server.rs"),
            format!(
                "fn handle() {{\n    let g = lock{EXPECT}\"poisoned\");\n    \
                 let _ = state{WRITE_LOCK});\n    let _ = state{DBS_READ});\n}}\n"
            ),
        )
        .unwrap();
        // ops.rs is decode-allowlisted, so plant the L04 violation there and
        // the L03 violation in a non-allowlisted module.
        fs::write(
            engine.join("ops.rs"),
            format!(
                "fn hot() {{\n    let m: {}, u32> = Default::default();\n}}\n",
                VALUE_KEYED[0]
            ),
        )
        .unwrap();
        fs::write(
            engine.join("query.rs"),
            format!("fn out(arena: &I) {{\n    let v = arena{DECODE}id);\n}}\n"),
        )
        .unwrap();
        // a per-row arena probe inside the columnar kernel module
        fs::write(
            engine.join("kernels.rs"),
            format!(
                "fn kernel(arena: &I, ids: &[u32]) {{\n    \
                 for &id in ids {{ let _ = arena{}id); }}\n}}\n",
                KERNEL_ARENA_TOKENS[2]
            ),
        )
        .unwrap();
        fs::write(dir.join("README.md"), "[missing](docs/NOPE.md)\n").unwrap();

        let findings = lint_repo(&dir);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        for expected in ["L01", "L02", "L03", "L04", "L06", "L07"] {
            assert!(
                rules.contains(&expected),
                "expected {expected} in {findings:?}"
            );
        }

        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn the_repository_itself_is_clean() {
        // The workspace root is two levels above this crate.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .to_path_buf();
        let findings = lint_repo(&root);
        assert!(
            findings.is_empty(),
            "lint findings on the repository:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
