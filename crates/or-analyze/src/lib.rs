//! # or-analyze — static analysis for the or-sets repository
//!
//! Two passes, one entry point each, both exposed through the `or-analyze`
//! binary and delegated to by the test suite:
//!
//! * [`plans`] — **plan verification**: compile every statement the
//!   repository ships (`examples/*.orql`, the e13–e15 bench workloads)
//!   into the physical plans the engine would execute and check each
//!   against the typed rule catalog in [`or_nra::verify`] (arity, operator
//!   typing, Theorem 5.1 α-expansion placement, budget admission) under a
//!   serving configuration.  `or-analyze verify-plans`.
//! * [`lint`] — **repo lint**: hand-rolled, std-only source rules encoding
//!   the repository's own discipline — no panicking combinators in
//!   or-server request paths, lock-order hygiene, the decode-once arena
//!   boundary, `InternId`-keyed hot paths, workspace-wide
//!   `#![forbid(unsafe_code)]`, and the markdown link audit.
//!   `or-analyze lint`.
//!
//! The rule catalogs (verifier `V01`–`V10`, lint `L01`–`L06`) are
//! documented with rationale in `docs/ANALYZE.md`; the CI
//! `static-analysis` job fails on any violation.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod lint;
pub mod plans;

pub use lint::{lint_repo, Finding};
pub use plans::{verify_repo_plans, PlanCheck, PlansReport};
