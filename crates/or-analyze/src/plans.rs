//! The `verify-plans` pass: compile every statement the repository ships —
//! the `examples/*.orql` scripts and the e13–e15 bench workloads — into the
//! physical plans the engine would execute, and run each through the
//! [`or_nra::verify`] rule catalog **under a serving configuration**
//! (`require_budgets` on, a finite default denotation budget), without
//! executing anything heavier than the tiny script replays needed to
//! advance session state.
//!
//! A statement outside the plannable fragment (the interpreter would serve
//! it) is counted as a fallback, not a failure: the pass checks the plans
//! the engine would actually run.

use std::fs;
use std::path::{Path, PathBuf};

use or_bench::experiments::{
    alternatives_relation, e13_expand_query, e13_planned_query, e13_scan_query, e14_bindings,
    fanout_relation, priced_relation, E14_SCRIPT,
};
use or_db::Relation;
use or_lang::{ExecMode, QueryBudget, SessionCore};
use or_nra::optimize::{lower, optimize_expansion, ExpandPlannerConfig};
use or_nra::physical::PhysicalPlan;
use or_nra::verify::{verify_plan, Severity, VerifyConfig, Violation};
use or_object::Type;

/// The default per-query denotation budget the pass verifies under — the
/// stand-in for a serving layer's admission control.  Every `OrExpand`
/// must be covered by this or by a plan-level budget (rule V10).
pub const SERVING_OR_BUDGET: u64 = 1 << 20;

/// The bench workloads run at this small scale; plan shape does not depend
/// on the row count, so verification does not need the bench sizes.
const WORKLOAD_ROWS: usize = 32;

/// One verified plan: where the statement came from and what the verifier
/// said.
#[derive(Debug, Clone)]
pub struct PlanCheck {
    /// Which script/workload the plan belongs to.
    pub context: String,
    /// The statement or query the plan serves.
    pub statement: String,
    /// Every rule finding (warnings included).
    pub violations: Vec<Violation>,
}

impl PlanCheck {
    /// Does this plan carry a `Deny`-severity violation?
    pub fn has_deny(&self) -> bool {
        self.violations.iter().any(|v| v.is_deny())
    }
}

/// The outcome of the whole pass.
#[derive(Debug, Clone, Default)]
pub struct PlansReport {
    /// Every plan that was verified.
    pub checks: Vec<PlanCheck>,
    /// Statements outside the plannable fragment (interpreter-served).
    pub fallbacks: Vec<String>,
}

impl PlansReport {
    /// Total number of `Deny`-severity violations across all plans.
    pub fn deny_count(&self) -> usize {
        self.checks
            .iter()
            .map(|c| c.violations.iter().filter(|v| v.is_deny()).count())
            .sum()
    }

    /// Total number of `Warn`-severity findings across all plans.
    pub fn warn_count(&self) -> usize {
        self.checks
            .iter()
            .map(|c| {
                c.violations
                    .iter()
                    .filter(|v| v.rule.severity() == Severity::Warn)
                    .count()
            })
            .sum()
    }
}

/// The serving-style verifier configuration for a plan over the given
/// per-slot row types.
fn serving_config(row_types: Vec<Option<Type>>) -> VerifyConfig {
    VerifyConfig {
        provided_inputs: Some(row_types.len()),
        row_types,
        or_budget: Some(SERVING_OR_BUDGET),
        require_budgets: true,
        assume_consistent: false,
    }
}

fn check_plan(
    report: &mut PlansReport,
    context: &str,
    statement: &str,
    plan: &PhysicalPlan,
    row_types: Vec<Option<Type>>,
) {
    let violations = verify_plan(plan, &serving_config(row_types));
    report.checks.push(PlanCheck {
        context: context.to_string(),
        statement: statement.to_string(),
        violations,
    });
}

/// Verify every statement of one OrQL script (comments and blank lines
/// skipped), replaying it through a session so later statements see
/// earlier bindings.  Statements are *executed* (cheaply — the shipped
/// scripts are tiny) only to advance that state.
fn verify_script(report: &mut PlansReport, context: &str, source: &str) -> Result<(), String> {
    let mut core = SessionCore::new();
    for (idx, line) in source.lines().enumerate() {
        let stmt = line.trim();
        if stmt.is_empty() || stmt.starts_with("--") {
            continue;
        }
        let located = |e: &dyn std::fmt::Display| format!("{context}:{}: {e}", idx + 1);
        match core.plan_statement(stmt) {
            Ok(Some(planned)) => {
                check_plan(report, context, stmt, &planned.plan, planned.row_types)
            }
            Ok(None) => report.fallbacks.push(format!("{context}: {stmt}")),
            Err(e) => return Err(located(&e)),
        }
        let evaluated = core
            .eval_statement(
                stmt,
                ExecMode::Engine,
                or_engine::ExecConfig::default(),
                QueryBudget::unlimited(),
            )
            .map_err(|e| located(&e))?;
        core.commit(evaluated);
    }
    Ok(())
}

/// Verify a session-script workload given as statements over pre-bound
/// relations (the e14/e15 shape): plan and check each statement, no
/// execution at all.
fn verify_session_statements(
    report: &mut PlansReport,
    context: &str,
    bindings: &[(&str, or_object::Value)],
    statements: &[&str],
) -> Result<(), String> {
    let mut core = SessionCore::new();
    for (name, value) in bindings {
        core.bind(*name, value.clone());
    }
    for stmt in statements {
        match core.plan_statement(stmt) {
            Ok(Some(planned)) => {
                check_plan(report, context, stmt, &planned.plan, planned.row_types)
            }
            Ok(None) => report.fallbacks.push(format!("{context}: {stmt}")),
            Err(e) => return Err(format!("{context}: `{stmt}`: {e}")),
        }
    }
    Ok(())
}

/// Verify one e13 `relation × morphism` workload: the lowered plan, and —
/// when the expand planner applies — the optimized plan it would actually
/// execute (where a bad push below `OrExpand` would surface).
fn verify_e13_workload(
    report: &mut PlansReport,
    context: &str,
    relation: &Relation,
    query: &or_nra::Morphism,
    optimize: bool,
) -> Result<(), String> {
    let plan = lower(query).map_err(|e| format!("{context}: {e}"))?;
    let row_type = relation.schema().record_type();
    check_plan(
        report,
        context,
        &query.to_string(),
        &plan,
        vec![Some(row_type.clone())],
    );
    if optimize {
        let inputs = [relation.records()];
        let planner_config = ExpandPlannerConfig {
            row_types: vec![row_type.clone()],
            ..ExpandPlannerConfig::default()
        };
        let (optimized, _report) = optimize_expansion(&plan, &inputs, &planner_config);
        check_plan(
            report,
            &format!("{context} (optimized)"),
            &query.to_string(),
            &optimized,
            vec![Some(row_type)],
        );
    }
    Ok(())
}

/// Run the whole pass over the repository at `root`.
pub fn verify_repo_plans(root: &Path) -> Result<PlansReport, String> {
    let mut report = PlansReport::default();

    // 1. Every OrQL script under examples/.
    let mut scripts: Vec<PathBuf> = Vec::new();
    if let Ok(entries) = fs::read_dir(root.join("examples")) {
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "orql") {
                scripts.push(path);
            }
        }
    }
    scripts.sort();
    if scripts.is_empty() {
        return Err(format!(
            "no .orql scripts found under {} — wrong --root?",
            root.join("examples").display()
        ));
    }
    for script in &scripts {
        let source = fs::read_to_string(script)
            .map_err(|e| format!("could not read {}: {e}", script.display()))?;
        let context = script
            .strip_prefix(root)
            .unwrap_or(script)
            .display()
            .to_string();
        verify_script(&mut report, &context, &source)?;
    }

    // 2. The e13 engine workloads: scan/filter/project over priced rows,
    //    α-expansion over or-set rows, and the planned expand-then-filter
    //    pipeline (verified both as lowered and as the expand planner
    //    rewrites it).
    let priced = priced_relation(WORKLOAD_ROWS);
    let alternatives = alternatives_relation(WORKLOAD_ROWS);
    let fanout = fanout_relation(WORKLOAD_ROWS);
    verify_e13_workload(
        &mut report,
        "e13 scan/priced",
        &priced,
        &e13_scan_query(),
        false,
    )?;
    for (name, relation) in [("alternatives", &alternatives), ("fanout", &fanout)] {
        verify_e13_workload(
            &mut report,
            &format!("e13 expand/{name}"),
            relation,
            &e13_expand_query(),
            true,
        )?;
        verify_e13_workload(
            &mut report,
            &format!("e13 planned/{name}"),
            relation,
            &e13_planned_query(10),
            true,
        )?;
    }

    // 3. The e14/e15 session script over its bindings (e15 replays the
    //    same statements read-only, so one pass covers both).
    let bindings = e14_bindings(WORKLOAD_ROWS);
    let bindings: Vec<(&str, or_object::Value)> = bindings.into_iter().collect();
    verify_session_statements(&mut report, "e14/e15 session script", &bindings, E14_SCRIPT)?;

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root")
            .to_path_buf()
    }

    #[test]
    fn shipped_scripts_and_workloads_verify_clean() {
        let report = verify_repo_plans(&repo_root()).expect("pass runs");
        // every examples/ script and the e13–e15 workloads produce plans…
        assert!(
            report.checks.len() >= 10,
            "expected a substantial plan set, got {}",
            report.checks.len()
        );
        // …and none of them violates the rule catalog
        let denies: Vec<String> = report
            .checks
            .iter()
            .filter(|c| c.has_deny())
            .flat_map(|c| {
                c.violations
                    .iter()
                    .filter(|v| v.is_deny())
                    .map(move |v| format!("{}: `{}`: {v}", c.context, c.statement))
            })
            .collect();
        assert!(denies.is_empty(), "deny violations:\n{}", denies.join("\n"));
        // the one deliberately non-plannable e14 statement falls back
        assert!(
            report
                .fallbacks
                .iter()
                .any(|f| f.contains("normalize(design)")),
            "expected the or-monad fallback in {:?}",
            report.fallbacks
        );
    }
}
