//! Error-path coverage for the OrQL front end: malformed syntax must be
//! rejected by the parser with a position, ill-typed programs by the
//! checker with a message, and both must surface through the session as the
//! right [`SessionError`] variant — never as a panic.

use or_lang::session::Session;
use or_lang::{infer_type, parse, parse_statement, SessionError};
use or_object::{Type, Value};

// ---------------------------------------------------------------------------
// parse errors
// ---------------------------------------------------------------------------

#[test]
fn malformed_orset_literals_are_parse_errors() {
    for src in [
        "<| 1, 2",         // unterminated or-set
        "<| 1, , 2 |>",    // hole in the element list
        "<| |> |>",        // stray closer
        "<|,|>",           // lone comma
        "{ <|1|>, <|2| }", // unterminated inner or-set inside a set
    ] {
        let err = parse(src).expect_err(src);
        assert!(!err.message.is_empty(), "no message for {src}");
    }
}

#[test]
fn malformed_comprehensions_are_parse_errors() {
    for src in [
        "{ x | }",          // no qualifiers
        "{ x | x <- }",     // generator without a source
        "{ x | <- xs }",    // generator without a variable
        "<| x | x <- xs",   // unterminated or-comprehension
        "{ x | x <- xs, }", // trailing comma qualifier
    ] {
        assert!(parse(src).is_err(), "{src} should not parse");
    }
}

#[test]
fn parse_errors_carry_positions() {
    let err = parse("1 +").unwrap_err();
    assert!(err.position > 0);
    let err = parse_statement("let = 3").unwrap_err();
    assert!(!err.message.is_empty());
}

#[test]
fn incomplete_operators_and_parens_are_parse_errors() {
    for src in [
        "(1, 2",
        "1 *",
        "if true then 1",
        "let x = in x",
        "fst(",
        ")",
    ] {
        assert!(parse(src).is_err(), "{src} should not parse");
    }
}

// ---------------------------------------------------------------------------
// check errors
// ---------------------------------------------------------------------------

#[test]
fn unbound_variables_are_check_errors() {
    let expr = parse("nosuchvar + 1").unwrap();
    let err = infer_type(&expr, &vec![]).unwrap_err();
    assert!(err.message.contains("unbound"), "got: {}", err.message);
    // bound in one scope, used outside of it
    let expr = parse("(let x = 1 in x) + x").unwrap();
    assert!(infer_type(&expr, &vec![]).is_err());
    // comprehension variables do not leak out of the comprehension
    let expr = parse("union({ y | y <- db }, { y })").unwrap();
    let env = vec![("db".to_string(), Type::set(Type::Int))];
    assert!(infer_type(&expr, &env).is_err());
}

#[test]
fn ill_typed_comprehensions_are_check_errors() {
    let env = vec![
        ("nums".to_string(), Type::set(Type::Int)),
        ("alts".to_string(), Type::orset(Type::Int)),
    ];
    // generating a set comprehension from an or-set (and vice versa)
    for src in [
        "{ x | x <- alts }",
        "<| x | x <- nums |>",
        // guard is not boolean
        "{ x | x <- nums, x + 1 }",
        // head mixes element types in a literal
        "{ x | x <- nums, member(x, {true}) }",
        // generating from a non-collection
        "{ x | x <- 3 }",
    ] {
        let expr = parse(src).expect(src);
        assert!(infer_type(&expr, &env).is_err(), "{src} should not check");
    }
}

#[test]
fn heterogeneous_literals_are_check_errors() {
    for src in [
        "{1, true}",
        "<| \"a\", 1 |>",
        "if 1 then 2 else 3",
        "1 + true",
    ] {
        let expr = parse(src).expect(src);
        assert!(
            infer_type(&expr, &vec![]).is_err(),
            "{src} should not check"
        );
    }
}

// ---------------------------------------------------------------------------
// session-level classification
// ---------------------------------------------------------------------------

#[test]
fn session_classifies_parse_check_and_runtime_errors() {
    let mut s = Session::new();
    assert!(matches!(s.run("<| 1,"), Err(SessionError::Parse(_))));
    assert!(matches!(s.run("{1, true}"), Err(SessionError::Check(_))));
    assert!(matches!(s.run("novar"), Err(SessionError::Check(_))));
    // errors do not poison the session
    s.bind("db", Value::int_set([1, 2, 3]));
    assert_eq!(
        s.run("{ x | x <- db, x <= 2 }").unwrap().value,
        Value::int_set([1, 2])
    );
}

#[test]
fn engine_mode_classifies_errors_identically() {
    use or_engine::ExecConfig;
    let mut s = Session::with_engine(ExecConfig::default());
    assert!(matches!(s.run("<| 1,"), Err(SessionError::Parse(_))));
    assert!(matches!(s.run("{1, true}"), Err(SessionError::Check(_))));
    s.bind("db", Value::int_set([1, 2, 3]));
    assert_eq!(
        s.run("{ x | x <- db, x <= 2 }").unwrap().value,
        Value::int_set([1, 2])
    );
}
