//! `orql` — an interactive REPL for the OrQL query language.
//!
//! ```text
//! $ cargo run -p or-lang --bin orql
//! orql> let db = { <|1,2|>, <|3|> }
//! db : {<int>} = {<1, 2>, <3>}
//! orql> normalize(db)
//! - : <{int}> = <{1, 3}, {2, 3}>
//! orql> <| x | x <- normalize(<|120, 80|>), x <= 100 |>
//! - : <int> = <80>
//! ```
//!
//! Commands: `:quit` exits, `:env` lists the current bindings, `:engine`
//! cycles the execution mode (interpreter → engine-first → engine with
//! interpreter cross-check; also `--engine` at startup), `:stats` prints the
//! engine/fallback counters with the most recent fallback reasons, `:help`
//! prints a short reference.  Everything else is parsed as an OrQL
//! statement.
//!
//! ## Script mode
//!
//! `orql --script FILE` runs `FILE` non-interactively (one statement per
//! line; blank lines and `--` comments skipped) and **exits non-zero on
//! the first parse, type or evaluation error**, printing the failing line
//! — so CI jobs and server smoke tests can trust the exit code.  Combine
//! with `--engine` to run the script engine-first.

use std::io::{self, BufRead, Write};
use std::process::ExitCode;

use or_engine::ExecConfig;
use or_lang::session::{EngineStats, ExecMode, Session};

const HELP: &str = "\
OrQL quick reference
  sets        {1, 2, 3}            or-sets      <|1, 2, 3|>
  pairs       (1, true)            strings      \"abc\"
  comprehension   { x + 1 | x <- {1,2,3}, x <= 2 }
  or-comprehension <| x | x <- normalize(db), x <= 100 |>
  let x = e in e'      if c then a else b      let x = e   (REPL binding)
  builtins: normalize alpha flatten orflatten union orunion member ormember
            subset intersect difference powerset toset toorset isempty
            orisempty fst snd
  commands: :help :env :engine :stats :quit";

/// Print the session's engine statistics, including why the most recent
/// statements fell back to the interpreter.
fn print_stats(stats: &EngineStats) {
    println!(
        "engine: {} statement(s) served, {} interpreter fallback(s)",
        stats.engine, stats.fallback
    );
    println!(
        "plan cache: {} hit(s), {} miss(es)",
        stats.plan_cache_hits, stats.plan_cache_misses
    );
    println!(
        "batches: {} columnar, {} scalar fallback",
        stats.columnar_batches, stats.scalar_fallback_batches
    );
    if !stats.fallback_reasons.is_empty() {
        println!("recent fallback reasons:");
        for reason in &stats.fallback_reasons {
            println!("  {reason}");
        }
    }
}

/// Run a script file to completion, printing each result like the REPL
/// would.  Returns a failure exit code after printing the failing line, so
/// callers (CI, smoke tests) can gate on the status.
fn run_script_file(session: &mut Session, path: &str) -> ExitCode {
    let script = match std::fs::read_to_string(path) {
        Ok(script) => script,
        Err(e) => {
            eprintln!("error: cannot read script `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    match session.run_script(&script) {
        Ok(results) => {
            for result in results {
                let name = result.bound.unwrap_or_else(|| "-".to_string());
                println!("{name} : {} = {}", result.ty, result.value);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {path}:{}: `{}`: {}", e.line, e.source, e.error);
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let engine_on_start = args.iter().any(|a| a == "--engine");
    let script = args
        .iter()
        .position(|a| a == "--script")
        .and_then(|i| args.get(i + 1).cloned());
    // `from_env` honors OR_ENGINE_WORKERS, so the REPL's worker count can
    // be pinned from the shell without a rebuild.
    let mut session = if engine_on_start {
        Session::with_engine(ExecConfig::from_env())
    } else {
        Session::new()
    };
    if let Some(path) = script {
        return run_script_file(&mut session, &path);
    }
    match repl(&mut session, engine_on_start) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn repl(session: &mut Session, engine_on_start: bool) -> io::Result<()> {
    let stdin = io::stdin();
    let mut stdout = io::stdout();
    println!("OrQL — a query language for or-sets (type :help for help, :quit to exit)");
    if engine_on_start {
        println!("physical engine enabled (engine-first; :engine cycles modes)");
    }
    loop {
        print!("orql> ");
        stdout.flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            ":quit" | ":q" => break,
            ":help" | ":h" => {
                println!("{HELP}");
                continue;
            }
            ":env" => {
                for (name, ty) in session.bindings() {
                    println!("{name} : {ty}");
                }
                continue;
            }
            ":engine" => {
                let next = match session.exec_mode() {
                    ExecMode::Interp => ExecMode::Engine,
                    ExecMode::Engine => ExecMode::EngineChecked,
                    ExecMode::EngineChecked => ExecMode::Interp,
                };
                session.set_exec_mode(next);
                println!("execution mode: {next:?}");
                print_stats(&session.engine_stats());
                continue;
            }
            ":stats" => {
                print_stats(&session.engine_stats());
                continue;
            }
            _ => {}
        }
        match session.run(line) {
            Ok(result) => {
                let name = result.bound.unwrap_or_else(|| "-".to_string());
                println!("{name} : {} = {}", result.ty, result.value);
            }
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}
