//! `orql` — an interactive REPL for the OrQL query language.
//!
//! ```text
//! $ cargo run -p or-lang --bin orql
//! orql> let db = { <|1,2|>, <|3|> }
//! db : {<int>} = {<1, 2>, <3>}
//! orql> normalize(db)
//! - : <{int}> = <{1, 3}, {2, 3}>
//! orql> <| x | x <- normalize(<|120, 80|>), x <= 100 |>
//! - : <int> = <80>
//! ```
//!
//! Commands: `:quit` exits, `:env` lists the current bindings, `:engine`
//! toggles physical-engine execution (also `--engine` at startup), `:help`
//! prints a short reference.  Everything else is parsed as an OrQL
//! statement.

use std::io::{self, BufRead, Write};

use or_engine::ExecConfig;
use or_lang::session::{ExecMode, Session};

const HELP: &str = "\
OrQL quick reference
  sets        {1, 2, 3}            or-sets      <|1, 2, 3|>
  pairs       (1, true)            strings      \"abc\"
  comprehension   { x + 1 | x <- {1,2,3}, x <= 2 }
  or-comprehension <| x | x <- normalize(db), x <= 100 |>
  let x = e in e'      if c then a else b      let x = e   (REPL binding)
  builtins: normalize alpha flatten orflatten union orunion member ormember
            subset intersect difference powerset toset toorset isempty
            orisempty fst snd
  commands: :help :env :engine :quit";

fn main() -> io::Result<()> {
    let stdin = io::stdin();
    let mut stdout = io::stdout();
    let engine_on_start = std::env::args().any(|a| a == "--engine");
    let mut session = if engine_on_start {
        Session::with_engine(ExecConfig::parallel())
    } else {
        Session::new()
    };
    println!("OrQL — a query language for or-sets (type :help for help, :quit to exit)");
    if engine_on_start {
        println!("physical engine enabled (cross-checked against the interpreter)");
    }
    loop {
        print!("orql> ");
        stdout.flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            ":quit" | ":q" => break,
            ":help" | ":h" => {
                println!("{HELP}");
                continue;
            }
            ":env" => {
                for (name, ty) in session.bindings() {
                    println!("{name} : {ty}");
                }
                continue;
            }
            ":engine" => {
                let next = match session.exec_mode() {
                    ExecMode::Interp => ExecMode::Engine,
                    ExecMode::Engine => ExecMode::Interp,
                };
                session.set_exec_mode(next);
                let stats = session.engine_stats();
                println!(
                    "execution mode: {next:?} (so far: {} on engine, {} interpreter-only)",
                    stats.engine, stats.fallback
                );
                continue;
            }
            _ => {}
        }
        match session.run(line) {
            Ok(result) => {
                let name = result.bound.unwrap_or_else(|| "-".to_string());
                println!("{name} : {} = {}", result.ty, result.value);
            }
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}
