//! A recursive-descent parser for OrQL.
//!
//! Grammar (informally):
//!
//! ```text
//! expr     ::= 'let' IDENT '=' expr 'in' expr
//!            | 'if' expr 'then' expr 'else' expr
//!            | orexpr
//! orexpr   ::= andexpr ('||' andexpr)*
//! andexpr  ::= cmpexpr ('&&' cmpexpr)*
//! cmpexpr  ::= addexpr (('=='|'!='|'<='|'<'|'>='|'>') addexpr)?
//! addexpr  ::= mulexpr (('+'|'-') mulexpr)*
//! mulexpr  ::= unary ('*' unary)*
//! unary    ::= '!' unary | atom
//! atom     ::= INT | STRING | 'true' | 'false' | 'unit' | IDENT
//!            | IDENT '(' args ')'                      (builtin call)
//!            | '(' expr ')' | '(' expr ',' expr ')'
//!            | '{' [expr (',' expr)*] '}'
//!            | '{' expr '|' qualifiers '}'
//!            | '<|' [expr (',' expr)*] '|>'
//!            | '<|' expr '|' qualifiers '|>'
//! qualifiers ::= qualifier (',' qualifier)*
//! qualifier  ::= IDENT '<-' expr | expr
//! ```

use std::fmt;

use crate::ast::{BinOp, Builtin, Expr, Qualifier};
use crate::lexer::{tokenize, LexError, Token};

/// A parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Index of the offending token.
    pub position: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at token {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            position: e.position,
            message: e.message,
        }
    }
}

/// Parse a complete expression from source text.
pub fn parse(src: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(src)?;
    let mut parser = Parser { tokens, pos: 0 };
    let expr = parser.expr()?;
    parser.expect(Token::Eof)?;
    Ok(expr)
}

/// A top-level REPL statement: a binding or a bare expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `let name = expr` (without `in`): bind in the session environment.
    Bind(String, Expr),
    /// A bare expression to evaluate.
    Expr(Expr),
}

/// Parse a REPL statement.
pub fn parse_statement(src: &str) -> Result<Statement, ParseError> {
    let tokens = tokenize(src)?;
    let mut parser = Parser { tokens, pos: 0 };
    // try `let x = expr <eof>` first
    if parser.peek() == &Token::Let {
        let save = parser.pos;
        parser.advance();
        if let Token::Ident(name) = parser.peek().clone() {
            parser.advance();
            if parser.peek() == &Token::Assign {
                parser.advance();
                let value = parser.expr()?;
                if parser.peek() == &Token::Eof {
                    return Ok(Statement::Bind(name, value));
                }
            }
        }
        parser.pos = save;
    }
    let expr = parser.expr()?;
    parser.expect(Token::Eof)?;
    Ok(Statement::Expr(expr))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        self.tokens.get(self.pos).unwrap_or(&Token::Eof)
    }

    fn advance(&mut self) -> Token {
        let t = self.peek().clone();
        self.pos += 1;
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            position: self.pos,
            message: message.into(),
        })
    }

    fn expect(&mut self, expected: Token) -> Result<(), ParseError> {
        if *self.peek() == expected {
            self.advance();
            Ok(())
        } else {
            self.error(format!("expected {expected}, found {}", self.peek()))
        }
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Token::Let => {
                self.advance();
                let name = match self.advance() {
                    Token::Ident(n) => n,
                    other => return self.error(format!("expected identifier, found {other}")),
                };
                self.expect(Token::Assign)?;
                let value = self.expr()?;
                self.expect(Token::In)?;
                let body = self.expr()?;
                Ok(Expr::Let {
                    name,
                    value: Box::new(value),
                    body: Box::new(body),
                })
            }
            Token::If => {
                self.advance();
                let cond = self.expr()?;
                self.expect(Token::Then)?;
                let then_branch = self.expr()?;
                self.expect(Token::Else)?;
                let else_branch = self.expr()?;
                Ok(Expr::If {
                    cond: Box::new(cond),
                    then_branch: Box::new(then_branch),
                    else_branch: Box::new(else_branch),
                })
            }
            _ => self.or_expr(),
        }
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Token::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::BinOp(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat(&Token::AndAnd) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::BinOp(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Token::Eq => Some(BinOp::Eq),
            Token::Neq => Some(BinOp::Neq),
            Token::Leq => Some(BinOp::Leq),
            Token::Lt => Some(BinOp::Lt),
            Token::Geq => Some(BinOp::Geq),
            Token::Gt => Some(BinOp::Gt),
            _ => None,
        };
        match op {
            Some(op) => {
                self.advance();
                let rhs = self.add_expr()?;
                Ok(Expr::BinOp(op, Box::new(lhs), Box::new(rhs)))
            }
            None => Ok(lhs),
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            if self.eat(&Token::Plus) {
                let rhs = self.mul_expr()?;
                lhs = Expr::BinOp(BinOp::Add, Box::new(lhs), Box::new(rhs));
            } else if self.eat(&Token::Minus) {
                let rhs = self.mul_expr()?;
                lhs = Expr::BinOp(BinOp::Sub, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while self.eat(&Token::Star) {
            let rhs = self.unary()?;
            lhs = Expr::BinOp(BinOp::Mul, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Token::Bang) {
            Ok(Expr::Not(Box::new(self.unary()?)))
        } else {
            self.atom()
        }
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.advance() {
            Token::Int(i) => Ok(Expr::Int(i)),
            Token::Str(s) => Ok(Expr::Str(s)),
            Token::True => Ok(Expr::Bool(true)),
            Token::False => Ok(Expr::Bool(false)),
            Token::Unit => Ok(Expr::Unit),
            Token::Ident(name) => {
                if self.peek() == &Token::LParen {
                    let builtin = match Builtin::by_name(&name) {
                        Some(b) => b,
                        None => {
                            return self.error(format!(
                                "unknown function {name} (OrQL has no user-defined functions; \
                                 available builtins are normalize, alpha, flatten, orflatten, \
                                 union, orunion, member, ormember, subset, intersect, \
                                 difference, powerset, toset, toorset, isempty, orisempty, \
                                 fst, snd)"
                            ))
                        }
                    };
                    self.advance(); // '('
                    let mut args = Vec::new();
                    if self.peek() != &Token::RParen {
                        args.push(self.expr()?);
                        while self.eat(&Token::Comma) {
                            args.push(self.expr()?);
                        }
                    }
                    self.expect(Token::RParen)?;
                    if args.len() != builtin.arity() {
                        return self.error(format!(
                            "{} expects {} argument(s), got {}",
                            builtin.name(),
                            builtin.arity(),
                            args.len()
                        ));
                    }
                    Ok(Expr::Call(builtin, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Token::LParen => {
                let first = self.expr()?;
                if self.eat(&Token::Comma) {
                    let second = self.expr()?;
                    self.expect(Token::RParen)?;
                    Ok(Expr::Pair(Box::new(first), Box::new(second)))
                } else {
                    self.expect(Token::RParen)?;
                    Ok(first)
                }
            }
            Token::LBrace => self.collection(Token::RBrace, true),
            Token::LOrSet => self.collection(Token::ROrSet, false),
            other => self.error(format!("unexpected token {other}")),
        }
    }

    /// Parse the inside of `{ … }` or `<| … |>`: either a literal list of
    /// elements or a comprehension.
    fn collection(&mut self, closing: Token, is_set: bool) -> Result<Expr, ParseError> {
        // empty collection
        if self.eat(&closing) {
            return Ok(if is_set {
                Expr::SetLit(Vec::new())
            } else {
                Expr::OrSetLit(Vec::new())
            });
        }
        let first = self.expr()?;
        if self.eat(&Token::Bar) {
            let qualifiers = self.qualifiers()?;
            self.expect(closing)?;
            return Ok(if is_set {
                Expr::SetComp {
                    head: Box::new(first),
                    qualifiers,
                }
            } else {
                Expr::OrSetComp {
                    head: Box::new(first),
                    qualifiers,
                }
            });
        }
        let mut items = vec![first];
        while self.eat(&Token::Comma) {
            items.push(self.expr()?);
        }
        self.expect(closing)?;
        Ok(if is_set {
            Expr::SetLit(items)
        } else {
            Expr::OrSetLit(items)
        })
    }

    fn qualifiers(&mut self) -> Result<Vec<Qualifier>, ParseError> {
        let mut out = Vec::new();
        loop {
            // generator: IDENT '<-' expr
            if let Token::Ident(name) = self.peek().clone() {
                if self.tokens.get(self.pos + 1) == Some(&Token::Arrow) {
                    self.advance();
                    self.advance();
                    let source = self.expr()?;
                    out.push(Qualifier::Generator(name, source));
                    if self.eat(&Token::Comma) {
                        continue;
                    }
                    return Ok(out);
                }
            }
            let guard = self.expr()?;
            out.push(Qualifier::Guard(guard));
            if self.eat(&Token::Comma) {
                continue;
            }
            return Ok(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_cheap_design_query() {
        let e = parse("<| x | x <- normalize(db), x <= 100 |>").unwrap();
        match e {
            Expr::OrSetComp { qualifiers, .. } => {
                assert_eq!(qualifiers.len(), 2);
                assert!(matches!(qualifiers[0], Qualifier::Generator(..)));
                assert!(matches!(qualifiers[1], Qualifier::Guard(_)));
            }
            other => panic!("expected an or-set comprehension, got {other}"),
        }
    }

    #[test]
    fn parses_literals_and_pairs() {
        assert_eq!(parse("42").unwrap(), Expr::Int(42));
        assert_eq!(
            parse("(1, true)").unwrap(),
            Expr::Pair(Box::new(Expr::Int(1)), Box::new(Expr::Bool(true)))
        );
        assert_eq!(parse("{}").unwrap(), Expr::SetLit(vec![]));
        assert_eq!(parse("<| |>").unwrap(), Expr::OrSetLit(vec![]));
        assert_eq!(
            parse("{1, 2, 2}").unwrap(),
            Expr::SetLit(vec![Expr::Int(1), Expr::Int(2), Expr::Int(2)])
        );
    }

    #[test]
    fn parses_let_and_if() {
        let e = parse("let s = {1,2} in if member(1, s) then 1 else 0").unwrap();
        assert!(matches!(e, Expr::Let { .. }));
    }

    #[test]
    fn operator_precedence() {
        let e = parse("1 + 2 * 3 <= 10 && true").unwrap();
        // (&& ((<=) (+ 1 (* 2 3)) 10) true)
        match e {
            Expr::BinOp(BinOp::And, lhs, _) => match *lhs {
                Expr::BinOp(BinOp::Leq, l, _) => match *l {
                    Expr::BinOp(BinOp::Add, _, r) => {
                        assert!(matches!(*r, Expr::BinOp(BinOp::Mul, _, _)))
                    }
                    other => panic!("expected +, got {other}"),
                },
                other => panic!("expected <=, got {other}"),
            },
            other => panic!("expected &&, got {other}"),
        }
    }

    #[test]
    fn nested_comprehensions_parse() {
        let e = parse("{ (x, y) | x <- {1,2}, y <- {3,4}, x < y }").unwrap();
        match e {
            Expr::SetComp { qualifiers, .. } => assert_eq!(qualifiers.len(), 3),
            other => panic!("expected a set comprehension, got {other}"),
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("let = 3 in x").is_err());
        assert!(parse("foo(1)").is_err());
        assert!(parse("member(1)").is_err());
        assert!(parse("{1, }").is_err());
        assert!(parse("1 +").is_err());
        assert!(parse("(1, 2").is_err());
    }

    #[test]
    fn statements_distinguish_bindings_from_expressions() {
        assert!(matches!(
            parse_statement("let db = <|1,2|>").unwrap(),
            Statement::Bind(_, _)
        ));
        assert!(matches!(
            parse_statement("let db = <|1,2|> in db").unwrap(),
            Statement::Expr(_)
        ));
        assert!(matches!(
            parse_statement("1 + 2").unwrap(),
            Statement::Expr(_)
        ));
    }
}
