//! Elaboration of OrQL into or-NRA⁺ morphisms.
//!
//! This is the analogue of the paper's observation (Section 2) that the
//! comprehension-style surface syntax "(x | x ∈ normalize(DB), ischeap(x))"
//! elaborates into the algebraic form
//! `orμ ∘ ormap(cond(ischeap, orη, K<> ∘ !)) ∘ normalize`.
//!
//! Variables are compiled away by the standard categorical environment
//! translation: an expression with free variables `v₀,…,vₙ₋₁` becomes a
//! morphism whose input is the left-nested environment tuple
//! `((…(unit, v₀)…), vₙ₋₁)`; variable access is a chain of projections, `let`
//! extends the tuple, and comprehension generators extend it inside
//! `map`/`ormap` after pairing with `ρ₂`/`orρ₂`.

use std::fmt;

use or_nra::derived;
use or_nra::morphism::{Morphism as M, Prim};
use or_object::Value;

use crate::ast::{BinOp, Builtin, Expr, Qualifier};

/// An error produced during compilation (compilation is total on well-typed
/// input; errors indicate unbound variables or arity mistakes that the type
/// checker would also have caught).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

fn err<T>(message: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError {
        message: message.into(),
    })
}

/// Compile an expression whose free variables are exactly `vars` into a
/// morphism from the left-nested environment tuple
/// `((…(unit, vars[0])…), vars[n-1])` to the expression's value.
pub fn compile_with_env(expr: &Expr, vars: &[String]) -> Result<M, CompileError> {
    let mut env: Vec<String> = vars.to_vec();
    compile(expr, &mut env)
}

/// Compile a single-parameter query `param ↦ expr` into a morphism whose
/// input is the parameter value itself.
pub fn compile_query(expr: &Expr, param: &str) -> Result<M, CompileError> {
    let body = compile_with_env(expr, &[param.to_string()])?;
    Ok(M::pair(M::Bang, M::Id).then(body))
}

/// Compile a closed expression into a morphism that ignores its input.
pub fn compile_closed(expr: &Expr) -> Result<M, CompileError> {
    let body = compile_with_env(expr, &[])?;
    Ok(M::Bang.then(body))
}

/// Access the `i`-th variable (0-based, outermost first) of an `n`-variable
/// environment tuple.
fn access(i: usize, n: usize) -> M {
    let mut m = M::Id;
    for _ in 0..(n - 1 - i) {
        m = m.then(M::Proj1);
    }
    m.then(M::Proj2)
}

fn compile(expr: &Expr, env: &mut Vec<String>) -> Result<M, CompileError> {
    match expr {
        Expr::Unit => Ok(M::constant(Value::Unit)),
        Expr::Int(i) => Ok(M::constant(Value::Int(*i))),
        Expr::Bool(b) => Ok(M::constant(Value::Bool(*b))),
        Expr::Str(s) => Ok(M::constant(Value::str(s.clone()))),
        Expr::Var(name) => match env.iter().rposition(|v| v == name) {
            Some(i) => Ok(access(i, env.len())),
            None => err(format!("unbound variable {name}")),
        },
        Expr::Pair(a, b) => Ok(M::pair(compile(a, env)?, compile(b, env)?)),
        Expr::SetLit(items) => compile_collection(items, env, true),
        Expr::OrSetLit(items) => compile_collection(items, env, false),
        Expr::SetComp { head, qualifiers } => compile_comprehension(head, qualifiers, env, true),
        Expr::OrSetComp { head, qualifiers } => compile_comprehension(head, qualifiers, env, false),
        Expr::Let { name, value, body } => {
            let value_m = compile(value, env)?;
            env.push(name.clone());
            let body_m = compile(body, env);
            env.pop();
            Ok(M::pair(M::Id, value_m).then(body_m?))
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => Ok(M::cond(
            compile(cond, env)?,
            compile(then_branch, env)?,
            compile(else_branch, env)?,
        )),
        Expr::BinOp(op, a, b) => {
            let ca = compile(a, env)?;
            let cb = compile(b, env)?;
            Ok(match op {
                BinOp::Add => M::pair(ca, cb).then(M::Prim(Prim::Plus)),
                BinOp::Sub => M::pair(ca, cb).then(M::Prim(Prim::Minus)),
                BinOp::Mul => M::pair(ca, cb).then(M::Prim(Prim::Times)),
                BinOp::Leq => M::pair(ca, cb).then(M::Prim(Prim::Leq)),
                BinOp::Lt => M::pair(ca, cb).then(M::Prim(Prim::Lt)),
                BinOp::Geq => M::pair(cb, ca).then(M::Prim(Prim::Leq)),
                BinOp::Gt => M::pair(cb, ca).then(M::Prim(Prim::Lt)),
                BinOp::And => M::pair(ca, cb).then(M::Prim(Prim::And)),
                BinOp::Or => M::pair(ca, cb).then(M::Prim(Prim::Or)),
                BinOp::Eq => M::pair(ca, cb).then(M::Eq),
                BinOp::Neq => M::pair(ca, cb).then(M::Eq).then(M::Prim(Prim::Not)),
            })
        }
        Expr::Not(a) => Ok(compile(a, env)?.then(M::Prim(Prim::Not))),
        Expr::Call(builtin, args) => compile_call(*builtin, args, env),
    }
}

fn compile_collection(
    items: &[Expr],
    env: &mut Vec<String>,
    is_set: bool,
) -> Result<M, CompileError> {
    let (empty, single, union): (M, M, M) = if is_set {
        (M::KEmptySet.after_bang(), M::Eta, M::Union)
    } else {
        (M::KEmptyOrSet.after_bang(), M::OrEta, M::OrUnion)
    };
    let mut acc: Option<M> = None;
    for item in items {
        let elem = compile(item, env)?.then(single.clone());
        acc = Some(match acc {
            None => elem,
            Some(prev) => M::pair(prev, elem).then(union.clone()),
        });
    }
    Ok(acc.unwrap_or(empty))
}

fn compile_comprehension(
    head: &Expr,
    qualifiers: &[Qualifier],
    env: &mut Vec<String>,
    is_set: bool,
) -> Result<M, CompileError> {
    // `cur` maps the outer environment tuple to the collection of extended
    // environment tuples accumulated so far.
    let (single, flatten, rho): (M, M, M) = if is_set {
        (M::Eta, M::Mu, M::Rho2)
    } else {
        (M::OrEta, M::OrMu, M::OrRho2)
    };
    let map_op = |f: M| if is_set { M::map(f) } else { M::ormap(f) };
    let select_op = |p: M| {
        if is_set {
            derived::select(p)
        } else {
            derived::or_select(p)
        }
    };
    let mut cur = single.clone();
    let mut added = 0usize;
    let mut result: Result<M, CompileError> = Ok(M::Id);
    for q in qualifiers {
        match q {
            Qualifier::Generator(name, source) => {
                let source_m = match compile(source, env) {
                    Ok(m) => m,
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                };
                // extend every environment tuple e with each element of
                // source(e): map(ρ ∘ ⟨id, source⟩) then flatten
                cur = cur
                    .then(map_op(M::pair(M::Id, source_m).then(rho.clone())))
                    .then(flatten.clone());
                env.push(name.clone());
                added += 1;
            }
            Qualifier::Guard(g) => {
                let guard_m = match compile(g, env) {
                    Ok(m) => m,
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                };
                cur = cur.then(select_op(guard_m));
            }
        }
    }
    if result.is_ok() {
        result = compile(head, env).map(|head_m| cur.then(map_op(head_m)));
    }
    for _ in 0..added {
        env.pop();
    }
    result
}

fn compile_call(builtin: Builtin, args: &[Expr], env: &mut Vec<String>) -> Result<M, CompileError> {
    if args.len() != builtin.arity() {
        return err(format!(
            "{} expects {} argument(s), got {}",
            builtin.name(),
            builtin.arity(),
            args.len()
        ));
    }
    let unary = |m: M, args: &[Expr], env: &mut Vec<String>| -> Result<M, CompileError> {
        Ok(compile(&args[0], env)?.then(m))
    };
    let binary = |m: M, args: &[Expr], env: &mut Vec<String>| -> Result<M, CompileError> {
        let a = compile(&args[0], env)?;
        let b = compile(&args[1], env)?;
        Ok(M::pair(a, b).then(m))
    };
    match builtin {
        Builtin::Normalize => unary(M::Normalize, args, env),
        Builtin::Alpha => unary(M::Alpha, args, env),
        Builtin::Flatten => unary(M::Mu, args, env),
        Builtin::OrFlatten => unary(M::OrMu, args, env),
        Builtin::Powerset => unary(M::Powerset, args, env),
        Builtin::ToSet => unary(M::OrToSet, args, env),
        Builtin::ToOrSet => unary(M::SetToOr, args, env),
        Builtin::IsEmpty => unary(derived::is_empty(), args, env),
        Builtin::OrIsEmpty => unary(derived::or_is_empty(), args, env),
        Builtin::Fst => unary(M::Proj1, args, env),
        Builtin::Snd => unary(M::Proj2, args, env),
        Builtin::Union => binary(M::Union, args, env),
        Builtin::OrUnion => binary(M::OrUnion, args, env),
        Builtin::Member => binary(derived::member(), args, env),
        Builtin::OrMember => binary(derived::or_member(), args, env),
        Builtin::Subset => binary(derived::subset(), args, env),
        Builtin::Intersect => binary(derived::intersect(), args, env),
        Builtin::Difference => binary(derived::difference(), args, env),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use or_nra::eval::eval;
    use or_object::Value;

    fn run_closed(src: &str) -> Value {
        let expr = parse(src).unwrap();
        let m = compile_closed(&expr).unwrap();
        eval(&m, &Value::Unit).unwrap()
    }

    fn run_query(src: &str, param: &str, input: &Value) -> Value {
        let expr = parse(src).unwrap();
        let m = compile_query(&expr, param).unwrap();
        eval(&m, input).unwrap()
    }

    #[test]
    fn closed_expressions_compile_and_evaluate() {
        assert_eq!(run_closed("1 + 2 * 3"), Value::Int(7));
        assert_eq!(run_closed("{1, 2, 2}"), Value::int_set([1, 2]));
        assert_eq!(run_closed("<|3, 1|>"), Value::int_orset([1, 3]));
        assert_eq!(
            run_closed("let s = {1,2} in if member(1, s) then 1 else 0"),
            Value::Int(1)
        );
        assert_eq!(
            run_closed("(1 != 2, 3 > 2)"),
            Value::pair(Value::Bool(true), Value::Bool(true))
        );
        assert_eq!(run_closed("{}"), Value::empty_set());
    }

    #[test]
    fn comprehensions_compile_to_monad_operations() {
        assert_eq!(
            run_closed("{ x + 1 | x <- {1,2,3}, x <= 2 }"),
            Value::int_set([2, 3])
        );
        assert_eq!(
            run_closed("<| (x, y) | x <- <|1,2|>, y <- <|5,6|>, x + y <= 7 |>"),
            Value::orset([
                Value::pair(Value::Int(1), Value::Int(5)),
                Value::pair(Value::Int(1), Value::Int(6)),
                Value::pair(Value::Int(2), Value::Int(5)),
            ])
        );
    }

    #[test]
    fn the_papers_cheap_design_query_compiles_and_runs() {
        // the database is an or-set of or-sets of costs: one inner or-set per
        // partially designed component
        let db = Value::orset([Value::int_orset([120, 80]), Value::int_orset([200, 150])]);
        let out = run_query("<| x | x <- normalize(db), x <= 100 |>", "db", &db);
        assert_eq!(out, Value::int_orset([80]));
    }

    #[test]
    fn queries_over_nested_databases() {
        // possible offices per person; who possibly sits in 212?
        let db = Value::set([
            Value::pair(Value::str("Joe"), Value::int_orset([515])),
            Value::pair(Value::str("Mary"), Value::int_orset([515, 212])),
        ]);
        let out = run_query("{ fst(r) | r <- db, ormember(212, snd(r)) }", "db", &db);
        assert_eq!(out, Value::set([Value::str("Mary")]));
    }

    #[test]
    fn alpha_and_powerset_builtins() {
        assert_eq!(
            run_closed("alpha({<|1,2|>, <|3|>})"),
            Value::orset([Value::int_set([1, 3]), Value::int_set([2, 3])])
        );
        assert_eq!(run_closed("powerset({1,2})").elements().unwrap().len(), 4);
    }

    #[test]
    fn unbound_variables_are_compile_errors() {
        let expr = parse("x + 1").unwrap();
        assert!(compile_closed(&expr).is_err());
    }

    #[test]
    fn let_scoping_restores_environment() {
        // the inner let must not leak its binding into the second operand
        assert_eq!(
            run_closed("(let x = 1 in x + 1) + (let y = 10 in y)"),
            Value::Int(12)
        );
    }

    #[test]
    fn nested_comprehensions_with_shadowing() {
        assert_eq!(
            run_closed("{ { x * y | y <- {1,2} } | x <- {10} }"),
            Value::set([Value::int_set([10, 20])])
        );
    }
}
