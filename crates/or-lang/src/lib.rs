//! # or-lang — OrQL, a surface query language for or-sets
//!
//! The paper's languages were implemented on top of Standard ML as OR-SML
//! (Section 7).  `or-lang` plays that role for this reproduction: **OrQL** is
//! a small, typed, first-order functional language with comprehensions over
//! sets and or-sets that elaborates into the or-NRA⁺ algebra of the `or-nra`
//! crate.
//!
//! * [`lexer`] / [`parser`] — concrete syntax (`{…}` sets, `<|…|>` or-sets,
//!   comprehensions `{ e | x <- xs, p }`, `let`, `if`, builtins);
//! * [`check`] — the monomorphic type checker;
//! * [`compile`] — elaboration into or-NRA⁺ morphisms (the comprehension
//!   translation of Section 2);
//! * [`interp`] — a direct interpreter used by the REPL and as a
//!   cross-check of the elaboration;
//! * [`plan`] — direct compilation of comprehension/union/flatten queries
//!   over one or several relation bindings into multi-input physical plans
//!   for the `or-engine` executor;
//! * [`session`] — the stateful session (`let` bindings, evaluation, typing)
//!   behind the `orql` REPL binary.  Sessions run in one of three
//!   [`ExecMode`]s: interpreter-only, **engine-first** (the physical engine
//!   serves every plannable statement, the interpreter only the rest), or
//!   engine-checked (engine + interpreter cross-check, for differential
//!   testing).
//!
//! ```
//! use or_lang::session::Session;
//! use or_object::Value;
//!
//! let mut session = Session::new();
//! session.bind("db", Value::orset([Value::int_orset([120, 80]),
//!                                  Value::int_orset([200, 150])]));
//! let result = session.run("<| x | x <- normalize(db), x <= 100 |>").unwrap();
//! assert_eq!(result.value, Value::int_orset([80]));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod check;
pub mod compile;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod session;

pub use ast::{BinOp, Builtin, Expr, Qualifier};
pub use check::{check_type, infer_type, CheckError};
pub use compile::{compile_closed, compile_query, compile_with_env, CompileError};
pub use interp::{interpret, interpret_limited, InterpError, InterpLimits};
pub use parser::{parse, parse_statement, ParseError, Statement};
pub use plan::{plan_query, PlanError, PlannedQuery};
pub use session::{
    EngineStats, Evaluated, ExecMode, PlannedStatement, QueryBudget, Route, ScriptError, Session,
    SessionCore, SessionError, SessionResult,
};
