//! A direct, environment-based interpreter for OrQL.
//!
//! The interpreter implements the same semantics as compilation to or-NRA
//! followed by evaluation ([`crate::compile`]); having both lets the tests
//! cross-check the elaboration, and gives the REPL a path that avoids
//! building intermediate morphisms for every keystroke.
//!
//! The interpreter honors the same admission-control budgets as the engine
//! ([`InterpLimits`]): a wall-clock deadline checked on a stride through
//! the evaluation loop, and a denotation budget checked — via the
//! closed-form [`LazyNormalizer::total`] count, so the check costs O(value
//! size), not O(budget) — before the two builtins whose output is
//! exponential in their input (`normalize`, `alpha`).  This closes the PR 8
//! gap where a statement falling back from the engine escaped the server's
//! per-query budgets.

use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

use or_nra::lazy::LazyNormalizer;
use or_nra::normalize::normalize_value;
use or_object::alpha::alpha_set;
use or_object::Value;

use crate::ast::{BinOp, Builtin, Expr, Qualifier};

/// A runtime error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpError {
    /// Description of the problem.
    pub message: String,
}

impl InterpError {
    fn new(message: impl Into<String>) -> InterpError {
        InterpError {
            message: message.into(),
        }
    }
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.message)
    }
}

impl std::error::Error for InterpError {}

/// A runtime environment mapping variable names to values.
pub type Env = HashMap<String, Value>;

/// Admission-control budgets for one interpreted statement — the
/// interpreter-side mirror of the engine's `ExecConfig::{or_budget,
/// time_budget}`, built once per statement by the session layer.
#[derive(Debug, Clone, Copy)]
pub struct InterpLimits {
    /// Absolute wall-clock deadline (`None` = unbounded; also `None` when
    /// `now + budget` overflows the clock, which only an effectively
    /// unbounded budget can do).
    deadline: Option<Instant>,
    /// The configured wall-clock budget in milliseconds, kept for error
    /// messages.
    budget_ms: u128,
    /// Denotation budget: a value whose normalization denotes more than
    /// this many complete instances is rejected before it is built.
    denotations: Option<u64>,
}

impl InterpLimits {
    /// No budgets: the interpreter behaves exactly as before.
    pub fn unbounded() -> InterpLimits {
        InterpLimits {
            deadline: None,
            budget_ms: 0,
            denotations: None,
        }
    }

    /// Budgets for one statement.  The deadline clock starts **now**, so
    /// build this right before interpreting; a zero `time_budget` rejects
    /// the statement at admission, matching the engine's `Deadline`
    /// semantics.
    pub fn new(denotations: Option<u64>, time_budget: Option<Duration>) -> InterpLimits {
        InterpLimits {
            deadline: time_budget.and_then(|b| Instant::now().checked_add(b)),
            budget_ms: time_budget.map(|b| b.as_millis()).unwrap_or(0),
            denotations,
        }
    }

    /// Are both budgets absent?
    pub fn is_unbounded(&self) -> bool {
        self.deadline.is_none() && self.denotations.is_none()
    }

    fn time_error(&self) -> InterpError {
        InterpError::new(format!(
            "time budget exceeded: the statement ran past its {} ms wall-clock budget",
            self.budget_ms
        ))
    }
}

impl Default for InterpLimits {
    fn default() -> Self {
        InterpLimits::unbounded()
    }
}

/// Per-statement interpreter context: the budgets plus a stride counter so
/// the deadline clock is read once per 256 evaluation steps, not on every
/// node.
struct Ctx<'a> {
    limits: &'a InterpLimits,
    ticks: Cell<u32>,
}

impl Ctx<'_> {
    /// One evaluation step: every 256th step reads the clock.
    fn tick(&self) -> Result<(), InterpError> {
        let Some(deadline) = self.limits.deadline else {
            return Ok(());
        };
        let t = self.ticks.get().wrapping_add(1);
        self.ticks.set(t);
        if t % 256 == 0 && Instant::now() >= deadline {
            return Err(self.limits.time_error());
        }
        Ok(())
    }

    /// Unstrided deadline check, for admission and for just-before points
    /// of no return.
    fn check_deadline(&self) -> Result<(), InterpError> {
        match self.limits.deadline {
            Some(d) if Instant::now() >= d => Err(self.limits.time_error()),
            _ => Ok(()),
        }
    }

    /// Denotation-budget admission for an exponential-output builtin:
    /// counts `v`'s complete denotations in closed form *before* anything
    /// is materialized.
    fn check_denotations(&self, v: &Value, what: &str) -> Result<(), InterpError> {
        let Some(budget) = self.limits.denotations else {
            return Ok(());
        };
        let total = LazyNormalizer::new(v).total();
        if total > u128::from(budget) {
            return Err(InterpError::new(format!(
                "or-expansion budget exceeded: the argument of {what} denotes {total} \
                 complete instances but the budget is {budget}"
            )));
        }
        Ok(())
    }
}

/// Evaluate an expression in an environment, with no budgets.
pub fn interpret(expr: &Expr, env: &Env) -> Result<Value, InterpError> {
    interpret_limited(expr, env, &InterpLimits::unbounded())
}

/// Evaluate an expression in an environment under admission-control
/// budgets.  A zero time budget rejects the statement before any work;
/// otherwise the deadline is checked on a stride through the evaluation
/// loop, so an over-budget statement stops within a bounded amount of work
/// of its deadline instead of running to completion.
pub fn interpret_limited(
    expr: &Expr,
    env: &Env,
    limits: &InterpLimits,
) -> Result<Value, InterpError> {
    let ctx = Ctx {
        limits,
        ticks: Cell::new(0),
    };
    ctx.check_deadline()?;
    eval_expr(expr, env, &ctx)
}

fn eval_expr(expr: &Expr, env: &Env, ctx: &Ctx<'_>) -> Result<Value, InterpError> {
    ctx.tick()?;
    match expr {
        Expr::Unit => Ok(Value::Unit),
        Expr::Int(i) => Ok(Value::Int(*i)),
        Expr::Bool(b) => Ok(Value::Bool(*b)),
        Expr::Str(s) => Ok(Value::str(s.clone())),
        Expr::Var(name) => env
            .get(name)
            .cloned()
            .ok_or_else(|| InterpError::new(format!("unbound variable {name}"))),
        Expr::Pair(a, b) => Ok(Value::pair(
            eval_expr(a, env, ctx)?,
            eval_expr(b, env, ctx)?,
        )),
        Expr::SetLit(items) => Ok(Value::set(
            items
                .iter()
                .map(|e| eval_expr(e, env, ctx))
                .collect::<Result<Vec<_>, _>>()?,
        )),
        Expr::OrSetLit(items) => Ok(Value::orset(
            items
                .iter()
                .map(|e| eval_expr(e, env, ctx))
                .collect::<Result<Vec<_>, _>>()?,
        )),
        Expr::SetComp { head, qualifiers } => {
            let results = run_comprehension(head, qualifiers, env, true, ctx)?;
            Ok(Value::set(results))
        }
        Expr::OrSetComp { head, qualifiers } => {
            let results = run_comprehension(head, qualifiers, env, false, ctx)?;
            Ok(Value::orset(results))
        }
        Expr::Let { name, value, body } => {
            let v = eval_expr(value, env, ctx)?;
            let mut inner = env.clone();
            inner.insert(name.clone(), v);
            eval_expr(body, &inner, ctx)
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => match eval_expr(cond, env, ctx)? {
            Value::Bool(true) => eval_expr(then_branch, env, ctx),
            Value::Bool(false) => eval_expr(else_branch, env, ctx),
            other => Err(InterpError::new(format!(
                "condition did not evaluate to a boolean: {other}"
            ))),
        },
        Expr::BinOp(op, a, b) => {
            let va = eval_expr(a, env, ctx)?;
            let vb = eval_expr(b, env, ctx)?;
            binop(*op, &va, &vb)
        }
        Expr::Not(a) => match eval_expr(a, env, ctx)? {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => Err(InterpError::new(format!(
                "! expects a boolean, got {other}"
            ))),
        },
        Expr::Call(builtin, args) => {
            let values: Vec<Value> = args
                .iter()
                .map(|e| eval_expr(e, env, ctx))
                .collect::<Result<Vec<_>, _>>()?;
            call(*builtin, &values, ctx)
        }
    }
}

fn run_comprehension(
    head: &Expr,
    qualifiers: &[Qualifier],
    env: &Env,
    is_set: bool,
    ctx: &Ctx<'_>,
) -> Result<Vec<Value>, InterpError> {
    // One mutable environment, rebound in place as the qualifier nest is
    // walked depth-first.  A comprehension over n rows costs O(n) item
    // insertions — not n clones of the entire environment, which for a
    // session holding several large relations multiplies every generated
    // row by the size of the whole database.
    let mut scratch = env.clone();
    let mut out = Vec::new();
    comprehension_step(head, qualifiers, &mut scratch, is_set, &mut out, ctx)?;
    Ok(out)
}

/// Process the first remaining qualifier (or, when none remain, evaluate the
/// head) under the current bindings, accumulating produced values in `out`.
///
/// Generator variables are inserted directly into `env` and the previous
/// binding (if any) is restored once the generator's loop completes — a
/// *later* generator may shadow a name an earlier generator's source reads
/// on its next iteration, e.g. `{ b | a <- xs, b <- g, g <- ys }` where the
/// session also binds `g`.  Errors abort the whole comprehension, so no
/// restoration is needed on the error path (`env` is a private scratch
/// clone).
fn comprehension_step(
    head: &Expr,
    qualifiers: &[Qualifier],
    env: &mut Env,
    is_set: bool,
    out: &mut Vec<Value>,
    ctx: &Ctx<'_>,
) -> Result<(), InterpError> {
    let Some((q, rest)) = qualifiers.split_first() else {
        out.push(eval_expr(head, env, ctx)?);
        return Ok(());
    };
    match q {
        Qualifier::Generator(name, source) => {
            let items = match (eval_expr(source, env, ctx)?, is_set) {
                (Value::Set(items), true) => items,
                (Value::OrSet(items), false) => items,
                (other, true) => {
                    return Err(InterpError::new(format!(
                        "set comprehension generator must range over a set, got {other}"
                    )))
                }
                (other, false) => {
                    return Err(InterpError::new(format!(
                        "or-set comprehension generator must range over an or-set, got {other}"
                    )))
                }
            };
            let shadowed = env.remove(name);
            for item in items {
                ctx.tick()?;
                env.insert(name.clone(), item);
                comprehension_step(head, rest, env, is_set, out, ctx)?;
            }
            match shadowed {
                Some(prev) => env.insert(name.clone(), prev),
                None => env.remove(name),
            };
            Ok(())
        }
        Qualifier::Guard(g) => match eval_expr(g, env, ctx)? {
            Value::Bool(true) => comprehension_step(head, rest, env, is_set, out, ctx),
            Value::Bool(false) => Ok(()),
            other => Err(InterpError::new(format!(
                "comprehension guard must be boolean, got {other}"
            ))),
        },
    }
}

fn binop(op: BinOp, a: &Value, b: &Value) -> Result<Value, InterpError> {
    let ints = |a: &Value, b: &Value| -> Result<(i64, i64), InterpError> {
        match (a.as_int(), b.as_int()) {
            (Some(x), Some(y)) => Ok((x, y)),
            _ => Err(InterpError::new(format!(
                "{} expects integers, got {a} and {b}",
                op.symbol()
            ))),
        }
    };
    let bools = |a: &Value, b: &Value| -> Result<(bool, bool), InterpError> {
        match (a.as_bool(), b.as_bool()) {
            (Some(x), Some(y)) => Ok((x, y)),
            _ => Err(InterpError::new(format!(
                "{} expects booleans, got {a} and {b}",
                op.symbol()
            ))),
        }
    };
    Ok(match op {
        BinOp::Add => Value::Int(ints(a, b)?.0.wrapping_add(ints(a, b)?.1)),
        BinOp::Sub => Value::Int(ints(a, b)?.0.wrapping_sub(ints(a, b)?.1)),
        BinOp::Mul => Value::Int(ints(a, b)?.0.wrapping_mul(ints(a, b)?.1)),
        BinOp::Leq => Value::Bool(ints(a, b)?.0 <= ints(a, b)?.1),
        BinOp::Lt => Value::Bool(ints(a, b)?.0 < ints(a, b)?.1),
        BinOp::Geq => Value::Bool(ints(a, b)?.0 >= ints(a, b)?.1),
        BinOp::Gt => Value::Bool(ints(a, b)?.0 > ints(a, b)?.1),
        BinOp::And => Value::Bool(bools(a, b)?.0 && bools(a, b)?.1),
        BinOp::Or => Value::Bool(bools(a, b)?.0 || bools(a, b)?.1),
        BinOp::Eq => Value::Bool(a == b),
        BinOp::Neq => Value::Bool(a != b),
    })
}

fn call(builtin: Builtin, args: &[Value], ctx: &Ctx<'_>) -> Result<Value, InterpError> {
    let set_items = |v: &Value, what: &str| -> Result<Vec<Value>, InterpError> {
        match v {
            Value::Set(items) => Ok(items.clone()),
            other => Err(InterpError::new(format!(
                "{what} expects a set, got {other}"
            ))),
        }
    };
    let orset_items = |v: &Value, what: &str| -> Result<Vec<Value>, InterpError> {
        match v {
            Value::OrSet(items) => Ok(items.clone()),
            other => Err(InterpError::new(format!(
                "{what} expects an or-set, got {other}"
            ))),
        }
    };
    match builtin {
        Builtin::Normalize => {
            // The one exponential-output operation the fallback path can
            // reach: admit it against the denotation budget (closed-form
            // count, same semantics as the engine's OrExpand admission)
            // and the deadline before materializing anything.
            ctx.check_denotations(&args[0], "normalize")?;
            ctx.check_deadline()?;
            Ok(normalize_value(&args[0]))
        }
        Builtin::Alpha => {
            // alpha produces exactly one output per complete denotation of
            // its input, so the same closed-form admission applies.
            ctx.check_denotations(&args[0], "alpha")?;
            ctx.check_deadline()?;
            alpha_set(&args[0]).map_err(|e| InterpError::new(e.to_string()))
        }
        Builtin::Flatten => {
            let mut out = Vec::new();
            for item in set_items(&args[0], "flatten")? {
                out.extend(set_items(&item, "flatten")?);
            }
            Ok(Value::set(out))
        }
        Builtin::OrFlatten => {
            let mut out = Vec::new();
            for item in orset_items(&args[0], "orflatten")? {
                out.extend(orset_items(&item, "orflatten")?);
            }
            Ok(Value::orset(out))
        }
        Builtin::Union => {
            let mut a = set_items(&args[0], "union")?;
            a.extend(set_items(&args[1], "union")?);
            Ok(Value::set(a))
        }
        Builtin::OrUnion => {
            let mut a = orset_items(&args[0], "orunion")?;
            a.extend(orset_items(&args[1], "orunion")?);
            Ok(Value::orset(a))
        }
        Builtin::Member => Ok(Value::Bool(
            set_items(&args[1], "member")?.contains(&args[0]),
        )),
        Builtin::OrMember => Ok(Value::Bool(
            orset_items(&args[1], "ormember")?.contains(&args[0]),
        )),
        Builtin::Subset => {
            let a = set_items(&args[0], "subset")?;
            let b = set_items(&args[1], "subset")?;
            Ok(Value::Bool(a.iter().all(|x| b.contains(x))))
        }
        Builtin::Intersect => {
            let a = set_items(&args[0], "intersect")?;
            let b = set_items(&args[1], "intersect")?;
            Ok(Value::set(a.into_iter().filter(|x| b.contains(x))))
        }
        Builtin::Difference => {
            let a = set_items(&args[0], "difference")?;
            let b = set_items(&args[1], "difference")?;
            Ok(Value::set(a.into_iter().filter(|x| !b.contains(x))))
        }
        Builtin::Powerset => {
            let items = set_items(&args[0], "powerset")?;
            if items.len() > 20 {
                return Err(InterpError::new(format!(
                    "powerset of a {}-element set is too large",
                    items.len()
                )));
            }
            let mut out = Vec::with_capacity(1 << items.len());
            for mask in 0u32..(1u32 << items.len()) {
                out.push(Value::set(
                    items
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << i) != 0)
                        .map(|(_, v)| v.clone()),
                ));
            }
            Ok(Value::set(out))
        }
        Builtin::ToSet => Ok(Value::set(orset_items(&args[0], "toset")?)),
        Builtin::ToOrSet => Ok(Value::orset(set_items(&args[0], "toorset")?)),
        Builtin::IsEmpty => Ok(Value::Bool(set_items(&args[0], "isempty")?.is_empty())),
        Builtin::OrIsEmpty => Ok(Value::Bool(orset_items(&args[0], "orisempty")?.is_empty())),
        Builtin::Fst => match args[0].as_pair() {
            Some((a, _)) => Ok(a.clone()),
            None => Err(InterpError::new(format!(
                "fst expects a pair, got {}",
                args[0]
            ))),
        },
        Builtin::Snd => match args[0].as_pair() {
            Some((_, b)) => Ok(b.clone()),
            None => Err(InterpError::new(format!(
                "snd expects a pair, got {}",
                args[0]
            ))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile_closed, compile_query};
    use crate::parser::parse;
    use or_nra::eval::eval;

    fn interp(src: &str, env: &Env) -> Value {
        interpret(&parse(src).unwrap(), env).unwrap()
    }

    #[test]
    fn basic_expressions() {
        let env = Env::new();
        assert_eq!(interp("1 + 2 * 3", &env), Value::Int(7));
        assert_eq!(interp("{2, 1, 2}", &env), Value::int_set([1, 2]));
        assert_eq!(
            interp("normalize(<| <|1,2|>, <|3|> |>)", &env),
            Value::int_orset([1, 2, 3])
        );
        assert_eq!(
            interp("{ x | x <- {1,2,3,4}, x > 2 }", &env),
            Value::int_set([3, 4])
        );
    }

    #[test]
    fn interpreter_and_compiler_agree_on_closed_programs() {
        let programs = [
            "1 + 2 * 3 - 4",
            "{ x + y | x <- {1,2}, y <- {10, 20}, x + y != 21 }",
            "<| (x, member(x, {1,3})) | x <- <|1,2,3|> |>",
            "let s = {1,2,3} in difference(s, {2})",
            "if subset({1}, {1,2}) then intersect({1,2},{2,3}) else {}",
            "alpha({<|1,2|>, <|3,4|>})",
            "normalize({<|1,2|>, <|3|>})",
            "union(powerset({1,2}), {{9}})",
            "toset(<|5,6|>)",
            "orisempty(<| |>)",
            "(fst((1,2)), snd((1,2)))",
            "!(1 == 2) && 3 >= 3",
        ];
        let env = Env::new();
        for src in programs {
            let expr = parse(src).unwrap();
            let direct = interpret(&expr, &env).unwrap();
            let compiled = compile_closed(&expr).unwrap();
            let via_algebra = eval(&compiled, &Value::Unit).unwrap();
            assert_eq!(direct, via_algebra, "disagreement on {src}");
        }
    }

    #[test]
    fn interpreter_and_compiler_agree_on_parameterized_queries() {
        let db = Value::set([
            Value::pair(Value::str("Joe"), Value::int_orset([515])),
            Value::pair(Value::str("Mary"), Value::int_orset([515, 212])),
        ]);
        let queries = [
            "{ fst(r) | r <- db, ormember(212, snd(r)) }",
            "{ (fst(r), o) | r <- db, o <- toset(snd(r)) }",
            "normalize(db)",
        ];
        for src in queries {
            let expr = parse(src).unwrap();
            let mut env = Env::new();
            env.insert("db".to_string(), db.clone());
            let direct = interpret(&expr, &env).unwrap();
            let compiled = compile_query(&expr, "db").unwrap();
            let via_algebra = eval(&compiled, &db).unwrap();
            assert_eq!(direct, via_algebra, "disagreement on {src}");
        }
    }

    #[test]
    fn later_generators_shadow_and_restore_outer_bindings() {
        // `b <- g` reads the *environment* binding of `g` on every outer
        // iteration, even though a later generator rebinds `g` in between —
        // the in-place rebinding must restore the outer value when its loop
        // completes.
        let mut env = Env::new();
        env.insert("g".to_string(), Value::int_set([7]));
        assert_eq!(
            interp("{ (a, b) | a <- {1, 2}, b <- g, g <- {{9}} }", &env),
            Value::set([
                Value::pair(Value::Int(1), Value::Int(7)),
                Value::pair(Value::Int(2), Value::Int(7)),
            ])
        );
        // plain self-shadowing: the inner `x` wins for the head
        assert_eq!(
            interp("{ x | xs <- {{1, 2}, {3}}, x <- xs }", &env),
            Value::int_set([1, 2, 3])
        );
    }

    #[test]
    fn zero_time_budget_rejects_at_admission() {
        let env = Env::new();
        let limits = InterpLimits::new(None, Some(Duration::ZERO));
        let err = interpret_limited(&parse("1 + 1").unwrap(), &env, &limits).unwrap_err();
        assert!(
            err.message.contains("time budget exceeded"),
            "unexpected: {err}"
        );
        // the same statement is fine without a budget
        assert!(
            interpret_limited(&parse("1 + 1").unwrap(), &env, &InterpLimits::unbounded()).is_ok()
        );
    }

    #[test]
    fn denotation_budget_gates_normalize_and_alpha() {
        // 2^10 = 1024 complete denotations; a budget of 1000 must reject
        // it *before* materialization, on both exponential builtins.
        let mut env = Env::new();
        env.insert(
            "db".to_string(),
            Value::set((0..10).map(|i| Value::int_orset([i, i + 100]))),
        );
        let limits = InterpLimits::new(Some(1_000), None);
        for src in ["normalize(db)", "alpha(db)"] {
            let err = interpret_limited(&parse(src).unwrap(), &env, &limits).unwrap_err();
            assert!(
                err.message.contains("or-expansion budget exceeded")
                    && err.message.contains("1024"),
                "unexpected for {src}: {err}"
            );
        }
        // a budget of exactly 1024 admits it
        let limits = InterpLimits::new(Some(1_024), None);
        for src in ["normalize(db)", "alpha(db)"] {
            assert!(interpret_limited(&parse(src).unwrap(), &env, &limits).is_ok());
        }
    }

    #[test]
    fn runtime_errors_are_reported() {
        let env = Env::new();
        assert!(interpret(&parse("x").unwrap(), &env).is_err());
        assert!(interpret(&parse("1 + true").unwrap(), &env).is_err());
        assert!(interpret(&parse("flatten({1,2})").unwrap(), &env).is_err());
        assert!(interpret(&parse("if 3 then 1 else 2").unwrap(), &env).is_err());
    }
}
