//! A direct, environment-based interpreter for OrQL.
//!
//! The interpreter implements the same semantics as compilation to or-NRA
//! followed by evaluation ([`crate::compile`]); having both lets the tests
//! cross-check the elaboration, and gives the REPL a path that avoids
//! building intermediate morphisms for every keystroke.

use std::collections::HashMap;
use std::fmt;

use or_nra::normalize::normalize_value;
use or_object::alpha::alpha_set;
use or_object::Value;

use crate::ast::{BinOp, Builtin, Expr, Qualifier};

/// A runtime error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpError {
    /// Description of the problem.
    pub message: String,
}

impl InterpError {
    fn new(message: impl Into<String>) -> InterpError {
        InterpError {
            message: message.into(),
        }
    }
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.message)
    }
}

impl std::error::Error for InterpError {}

/// A runtime environment mapping variable names to values.
pub type Env = HashMap<String, Value>;

/// Evaluate an expression in an environment.
pub fn interpret(expr: &Expr, env: &Env) -> Result<Value, InterpError> {
    match expr {
        Expr::Unit => Ok(Value::Unit),
        Expr::Int(i) => Ok(Value::Int(*i)),
        Expr::Bool(b) => Ok(Value::Bool(*b)),
        Expr::Str(s) => Ok(Value::str(s.clone())),
        Expr::Var(name) => env
            .get(name)
            .cloned()
            .ok_or_else(|| InterpError::new(format!("unbound variable {name}"))),
        Expr::Pair(a, b) => Ok(Value::pair(interpret(a, env)?, interpret(b, env)?)),
        Expr::SetLit(items) => Ok(Value::set(
            items
                .iter()
                .map(|e| interpret(e, env))
                .collect::<Result<Vec<_>, _>>()?,
        )),
        Expr::OrSetLit(items) => Ok(Value::orset(
            items
                .iter()
                .map(|e| interpret(e, env))
                .collect::<Result<Vec<_>, _>>()?,
        )),
        Expr::SetComp { head, qualifiers } => {
            let results = run_comprehension(head, qualifiers, env, true)?;
            Ok(Value::set(results))
        }
        Expr::OrSetComp { head, qualifiers } => {
            let results = run_comprehension(head, qualifiers, env, false)?;
            Ok(Value::orset(results))
        }
        Expr::Let { name, value, body } => {
            let v = interpret(value, env)?;
            let mut inner = env.clone();
            inner.insert(name.clone(), v);
            interpret(body, &inner)
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => match interpret(cond, env)? {
            Value::Bool(true) => interpret(then_branch, env),
            Value::Bool(false) => interpret(else_branch, env),
            other => Err(InterpError::new(format!(
                "condition did not evaluate to a boolean: {other}"
            ))),
        },
        Expr::BinOp(op, a, b) => {
            let va = interpret(a, env)?;
            let vb = interpret(b, env)?;
            binop(*op, &va, &vb)
        }
        Expr::Not(a) => match interpret(a, env)? {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => Err(InterpError::new(format!(
                "! expects a boolean, got {other}"
            ))),
        },
        Expr::Call(builtin, args) => {
            let values: Vec<Value> = args
                .iter()
                .map(|e| interpret(e, env))
                .collect::<Result<Vec<_>, _>>()?;
            call(*builtin, &values)
        }
    }
}

fn run_comprehension(
    head: &Expr,
    qualifiers: &[Qualifier],
    env: &Env,
    is_set: bool,
) -> Result<Vec<Value>, InterpError> {
    // One mutable environment, rebound in place as the qualifier nest is
    // walked depth-first.  A comprehension over n rows costs O(n) item
    // insertions — not n clones of the entire environment, which for a
    // session holding several large relations multiplies every generated
    // row by the size of the whole database.
    let mut scratch = env.clone();
    let mut out = Vec::new();
    comprehension_step(head, qualifiers, &mut scratch, is_set, &mut out)?;
    Ok(out)
}

/// Process the first remaining qualifier (or, when none remain, evaluate the
/// head) under the current bindings, accumulating produced values in `out`.
///
/// Generator variables are inserted directly into `env` and the previous
/// binding (if any) is restored once the generator's loop completes — a
/// *later* generator may shadow a name an earlier generator's source reads
/// on its next iteration, e.g. `{ b | a <- xs, b <- g, g <- ys }` where the
/// session also binds `g`.  Errors abort the whole comprehension, so no
/// restoration is needed on the error path (`env` is a private scratch
/// clone).
fn comprehension_step(
    head: &Expr,
    qualifiers: &[Qualifier],
    env: &mut Env,
    is_set: bool,
    out: &mut Vec<Value>,
) -> Result<(), InterpError> {
    let Some((q, rest)) = qualifiers.split_first() else {
        out.push(interpret(head, env)?);
        return Ok(());
    };
    match q {
        Qualifier::Generator(name, source) => {
            let items = match (interpret(source, env)?, is_set) {
                (Value::Set(items), true) => items,
                (Value::OrSet(items), false) => items,
                (other, true) => {
                    return Err(InterpError::new(format!(
                        "set comprehension generator must range over a set, got {other}"
                    )))
                }
                (other, false) => {
                    return Err(InterpError::new(format!(
                        "or-set comprehension generator must range over an or-set, got {other}"
                    )))
                }
            };
            let shadowed = env.remove(name);
            for item in items {
                env.insert(name.clone(), item);
                comprehension_step(head, rest, env, is_set, out)?;
            }
            match shadowed {
                Some(prev) => env.insert(name.clone(), prev),
                None => env.remove(name),
            };
            Ok(())
        }
        Qualifier::Guard(g) => match interpret(g, env)? {
            Value::Bool(true) => comprehension_step(head, rest, env, is_set, out),
            Value::Bool(false) => Ok(()),
            other => Err(InterpError::new(format!(
                "comprehension guard must be boolean, got {other}"
            ))),
        },
    }
}

fn binop(op: BinOp, a: &Value, b: &Value) -> Result<Value, InterpError> {
    let ints = |a: &Value, b: &Value| -> Result<(i64, i64), InterpError> {
        match (a.as_int(), b.as_int()) {
            (Some(x), Some(y)) => Ok((x, y)),
            _ => Err(InterpError::new(format!(
                "{} expects integers, got {a} and {b}",
                op.symbol()
            ))),
        }
    };
    let bools = |a: &Value, b: &Value| -> Result<(bool, bool), InterpError> {
        match (a.as_bool(), b.as_bool()) {
            (Some(x), Some(y)) => Ok((x, y)),
            _ => Err(InterpError::new(format!(
                "{} expects booleans, got {a} and {b}",
                op.symbol()
            ))),
        }
    };
    Ok(match op {
        BinOp::Add => Value::Int(ints(a, b)?.0.wrapping_add(ints(a, b)?.1)),
        BinOp::Sub => Value::Int(ints(a, b)?.0.wrapping_sub(ints(a, b)?.1)),
        BinOp::Mul => Value::Int(ints(a, b)?.0.wrapping_mul(ints(a, b)?.1)),
        BinOp::Leq => Value::Bool(ints(a, b)?.0 <= ints(a, b)?.1),
        BinOp::Lt => Value::Bool(ints(a, b)?.0 < ints(a, b)?.1),
        BinOp::Geq => Value::Bool(ints(a, b)?.0 >= ints(a, b)?.1),
        BinOp::Gt => Value::Bool(ints(a, b)?.0 > ints(a, b)?.1),
        BinOp::And => Value::Bool(bools(a, b)?.0 && bools(a, b)?.1),
        BinOp::Or => Value::Bool(bools(a, b)?.0 || bools(a, b)?.1),
        BinOp::Eq => Value::Bool(a == b),
        BinOp::Neq => Value::Bool(a != b),
    })
}

fn call(builtin: Builtin, args: &[Value]) -> Result<Value, InterpError> {
    let set_items = |v: &Value, what: &str| -> Result<Vec<Value>, InterpError> {
        match v {
            Value::Set(items) => Ok(items.clone()),
            other => Err(InterpError::new(format!(
                "{what} expects a set, got {other}"
            ))),
        }
    };
    let orset_items = |v: &Value, what: &str| -> Result<Vec<Value>, InterpError> {
        match v {
            Value::OrSet(items) => Ok(items.clone()),
            other => Err(InterpError::new(format!(
                "{what} expects an or-set, got {other}"
            ))),
        }
    };
    match builtin {
        Builtin::Normalize => Ok(normalize_value(&args[0])),
        Builtin::Alpha => alpha_set(&args[0]).map_err(|e| InterpError::new(e.to_string())),
        Builtin::Flatten => {
            let mut out = Vec::new();
            for item in set_items(&args[0], "flatten")? {
                out.extend(set_items(&item, "flatten")?);
            }
            Ok(Value::set(out))
        }
        Builtin::OrFlatten => {
            let mut out = Vec::new();
            for item in orset_items(&args[0], "orflatten")? {
                out.extend(orset_items(&item, "orflatten")?);
            }
            Ok(Value::orset(out))
        }
        Builtin::Union => {
            let mut a = set_items(&args[0], "union")?;
            a.extend(set_items(&args[1], "union")?);
            Ok(Value::set(a))
        }
        Builtin::OrUnion => {
            let mut a = orset_items(&args[0], "orunion")?;
            a.extend(orset_items(&args[1], "orunion")?);
            Ok(Value::orset(a))
        }
        Builtin::Member => Ok(Value::Bool(
            set_items(&args[1], "member")?.contains(&args[0]),
        )),
        Builtin::OrMember => Ok(Value::Bool(
            orset_items(&args[1], "ormember")?.contains(&args[0]),
        )),
        Builtin::Subset => {
            let a = set_items(&args[0], "subset")?;
            let b = set_items(&args[1], "subset")?;
            Ok(Value::Bool(a.iter().all(|x| b.contains(x))))
        }
        Builtin::Intersect => {
            let a = set_items(&args[0], "intersect")?;
            let b = set_items(&args[1], "intersect")?;
            Ok(Value::set(a.into_iter().filter(|x| b.contains(x))))
        }
        Builtin::Difference => {
            let a = set_items(&args[0], "difference")?;
            let b = set_items(&args[1], "difference")?;
            Ok(Value::set(a.into_iter().filter(|x| !b.contains(x))))
        }
        Builtin::Powerset => {
            let items = set_items(&args[0], "powerset")?;
            if items.len() > 20 {
                return Err(InterpError::new(format!(
                    "powerset of a {}-element set is too large",
                    items.len()
                )));
            }
            let mut out = Vec::with_capacity(1 << items.len());
            for mask in 0u32..(1u32 << items.len()) {
                out.push(Value::set(
                    items
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << i) != 0)
                        .map(|(_, v)| v.clone()),
                ));
            }
            Ok(Value::set(out))
        }
        Builtin::ToSet => Ok(Value::set(orset_items(&args[0], "toset")?)),
        Builtin::ToOrSet => Ok(Value::orset(set_items(&args[0], "toorset")?)),
        Builtin::IsEmpty => Ok(Value::Bool(set_items(&args[0], "isempty")?.is_empty())),
        Builtin::OrIsEmpty => Ok(Value::Bool(orset_items(&args[0], "orisempty")?.is_empty())),
        Builtin::Fst => match args[0].as_pair() {
            Some((a, _)) => Ok(a.clone()),
            None => Err(InterpError::new(format!(
                "fst expects a pair, got {}",
                args[0]
            ))),
        },
        Builtin::Snd => match args[0].as_pair() {
            Some((_, b)) => Ok(b.clone()),
            None => Err(InterpError::new(format!(
                "snd expects a pair, got {}",
                args[0]
            ))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile_closed, compile_query};
    use crate::parser::parse;
    use or_nra::eval::eval;

    fn interp(src: &str, env: &Env) -> Value {
        interpret(&parse(src).unwrap(), env).unwrap()
    }

    #[test]
    fn basic_expressions() {
        let env = Env::new();
        assert_eq!(interp("1 + 2 * 3", &env), Value::Int(7));
        assert_eq!(interp("{2, 1, 2}", &env), Value::int_set([1, 2]));
        assert_eq!(
            interp("normalize(<| <|1,2|>, <|3|> |>)", &env),
            Value::int_orset([1, 2, 3])
        );
        assert_eq!(
            interp("{ x | x <- {1,2,3,4}, x > 2 }", &env),
            Value::int_set([3, 4])
        );
    }

    #[test]
    fn interpreter_and_compiler_agree_on_closed_programs() {
        let programs = [
            "1 + 2 * 3 - 4",
            "{ x + y | x <- {1,2}, y <- {10, 20}, x + y != 21 }",
            "<| (x, member(x, {1,3})) | x <- <|1,2,3|> |>",
            "let s = {1,2,3} in difference(s, {2})",
            "if subset({1}, {1,2}) then intersect({1,2},{2,3}) else {}",
            "alpha({<|1,2|>, <|3,4|>})",
            "normalize({<|1,2|>, <|3|>})",
            "union(powerset({1,2}), {{9}})",
            "toset(<|5,6|>)",
            "orisempty(<| |>)",
            "(fst((1,2)), snd((1,2)))",
            "!(1 == 2) && 3 >= 3",
        ];
        let env = Env::new();
        for src in programs {
            let expr = parse(src).unwrap();
            let direct = interpret(&expr, &env).unwrap();
            let compiled = compile_closed(&expr).unwrap();
            let via_algebra = eval(&compiled, &Value::Unit).unwrap();
            assert_eq!(direct, via_algebra, "disagreement on {src}");
        }
    }

    #[test]
    fn interpreter_and_compiler_agree_on_parameterized_queries() {
        let db = Value::set([
            Value::pair(Value::str("Joe"), Value::int_orset([515])),
            Value::pair(Value::str("Mary"), Value::int_orset([515, 212])),
        ]);
        let queries = [
            "{ fst(r) | r <- db, ormember(212, snd(r)) }",
            "{ (fst(r), o) | r <- db, o <- toset(snd(r)) }",
            "normalize(db)",
        ];
        for src in queries {
            let expr = parse(src).unwrap();
            let mut env = Env::new();
            env.insert("db".to_string(), db.clone());
            let direct = interpret(&expr, &env).unwrap();
            let compiled = compile_query(&expr, "db").unwrap();
            let via_algebra = eval(&compiled, &db).unwrap();
            assert_eq!(direct, via_algebra, "disagreement on {src}");
        }
    }

    #[test]
    fn later_generators_shadow_and_restore_outer_bindings() {
        // `b <- g` reads the *environment* binding of `g` on every outer
        // iteration, even though a later generator rebinds `g` in between —
        // the in-place rebinding must restore the outer value when its loop
        // completes.
        let mut env = Env::new();
        env.insert("g".to_string(), Value::int_set([7]));
        assert_eq!(
            interp("{ (a, b) | a <- {1, 2}, b <- g, g <- {{9}} }", &env),
            Value::set([
                Value::pair(Value::Int(1), Value::Int(7)),
                Value::pair(Value::Int(2), Value::Int(7)),
            ])
        );
        // plain self-shadowing: the inner `x` wins for the head
        assert_eq!(
            interp("{ x | xs <- {{1, 2}, {3}}, x <- xs }", &env),
            Value::int_set([1, 2, 3])
        );
    }

    #[test]
    fn runtime_errors_are_reported() {
        let env = Env::new();
        assert!(interpret(&parse("x").unwrap(), &env).is_err());
        assert!(interpret(&parse("1 + true").unwrap(), &env).is_err());
        assert!(interpret(&parse("flatten({1,2})").unwrap(), &env).is_err());
        assert!(interpret(&parse("if 3 then 1 else 2").unwrap(), &env).is_err());
    }
}
