//! The lexer for OrQL, the surface query language.
//!
//! OrQL plays the role of the paper's OR-SML host (Section 7): a small typed
//! functional language with comprehensions over sets and or-sets that
//! elaborates into or-NRA⁺.  Token syntax:
//!
//! * sets `{ … }`, or-sets `<| … |>`, pairs `( … , … )`;
//! * comprehensions `{ e | x <- xs, p }` and `<| e | x <- xs, p |>`;
//! * the usual literals, identifiers, keywords and operators.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Identifier.
    Ident(String),
    /// Keyword `let`.
    Let,
    /// Keyword `in`.
    In,
    /// Keyword `if`.
    If,
    /// Keyword `then`.
    Then,
    /// Keyword `else`.
    Else,
    /// Keyword `true`.
    True,
    /// Keyword `false`.
    False,
    /// Keyword `unit` (the unit constant).
    Unit,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `<|` — opening or-set bracket.
    LOrSet,
    /// `|>` — closing or-set bracket.
    ROrSet,
    /// `,`.
    Comma,
    /// `|` — comprehension separator.
    Bar,
    /// `<-` — comprehension generator arrow.
    Arrow,
    /// `=`.
    Assign,
    /// `==`.
    Eq,
    /// `!=`.
    Neq,
    /// `<=`.
    Leq,
    /// `>=`.
    Geq,
    /// `<`.
    Lt,
    /// `>`.
    Gt,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
    /// `!`.
    Bang,
    /// `;`.
    Semi,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Int(i) => write!(f, "{i}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Let => write!(f, "let"),
            Token::In => write!(f, "in"),
            Token::If => write!(f, "if"),
            Token::Then => write!(f, "then"),
            Token::Else => write!(f, "else"),
            Token::True => write!(f, "true"),
            Token::False => write!(f, "false"),
            Token::Unit => write!(f, "unit"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LOrSet => write!(f, "<|"),
            Token::ROrSet => write!(f, "|>"),
            Token::Comma => write!(f, ","),
            Token::Bar => write!(f, "|"),
            Token::Arrow => write!(f, "<-"),
            Token::Assign => write!(f, "="),
            Token::Eq => write!(f, "=="),
            Token::Neq => write!(f, "!="),
            Token::Leq => write!(f, "<="),
            Token::Geq => write!(f, ">="),
            Token::Lt => write!(f, "<"),
            Token::Gt => write!(f, ">"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
            Token::Bang => write!(f, "!"),
            Token::Semi => write!(f, ";"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A lexing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the error.
    pub position: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a source string.
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '#' => {
                // comment to end of line
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '{' => {
                tokens.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                tokens.push(Token::RBrace);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semi);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Eq);
                    i += 2;
                } else {
                    tokens.push(Token::Assign);
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Neq);
                    i += 2;
                } else {
                    tokens.push(Token::Bang);
                    i += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    tokens.push(Token::AndAnd);
                    i += 2;
                } else {
                    return Err(LexError {
                        position: i,
                        message: "expected '&&'".to_string(),
                    });
                }
            }
            '|' => match bytes.get(i + 1) {
                Some(&b'|') => {
                    tokens.push(Token::OrOr);
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Token::ROrSet);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Bar);
                    i += 1;
                }
            },
            '<' => match bytes.get(i + 1) {
                Some(&b'|') => {
                    tokens.push(Token::LOrSet);
                    i += 2;
                }
                Some(&b'-') => {
                    tokens.push(Token::Arrow);
                    i += 2;
                }
                Some(&b'=') => {
                    tokens.push(Token::Leq);
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Geq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError {
                        position: i,
                        message: "unterminated string literal".to_string(),
                    });
                }
                tokens.push(Token::Str(src[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let value = text.parse::<i64>().map_err(|_| LexError {
                    position: start,
                    message: format!("integer literal {text} out of range"),
                })?;
                tokens.push(Token::Int(value));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                tokens.push(match word {
                    "let" => Token::Let,
                    "in" => Token::In,
                    "if" => Token::If,
                    "then" => Token::Then,
                    "else" => Token::Else,
                    "true" => Token::True,
                    "false" => Token::False,
                    "unit" => Token::Unit,
                    _ => Token::Ident(word.to_string()),
                });
            }
            other => {
                return Err(LexError {
                    position: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_comprehension() {
        let toks = tokenize("<| x | x <- normalize(db), cost(x) <= 100 |>").unwrap();
        assert!(toks.contains(&Token::LOrSet));
        assert!(toks.contains(&Token::ROrSet));
        assert!(toks.contains(&Token::Arrow));
        assert!(toks.contains(&Token::Leq));
        assert_eq!(*toks.last().unwrap(), Token::Eof);
    }

    #[test]
    fn distinguishes_angle_like_tokens() {
        assert_eq!(
            tokenize("< <= <- <| |> |").unwrap(),
            vec![
                Token::Lt,
                Token::Leq,
                Token::Arrow,
                Token::LOrSet,
                Token::ROrSet,
                Token::Bar,
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_literals_keywords_and_comments() {
        let toks = tokenize("let x = 42 in # comment\n \"hi\" == x").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Let,
                Token::Ident("x".to_string()),
                Token::Assign,
                Token::Int(42),
                Token::In,
                Token::Str("hi".to_string()),
                Token::Eq,
                Token::Ident("x".to_string()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn reports_errors_with_positions() {
        let err = tokenize("1 $ 2").unwrap_err();
        assert_eq!(err.position, 2);
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("a & b").is_err());
    }

    #[test]
    fn lexes_operators() {
        let toks = tokenize("1 + 2 * 3 - 4 >= 5 && !true || false != x").unwrap();
        assert!(toks.contains(&Token::Plus));
        assert!(toks.contains(&Token::Star));
        assert!(toks.contains(&Token::Minus));
        assert!(toks.contains(&Token::Geq));
        assert!(toks.contains(&Token::AndAnd));
        assert!(toks.contains(&Token::OrOr));
        assert!(toks.contains(&Token::Bang));
        assert!(toks.contains(&Token::Neq));
    }
}
