//! Direct compilation of OrQL set queries over **relation bindings** into
//! multi-input physical plans.
//!
//! The morphism route (`compile_query` + `or_nra::optimize::lower`) can only
//! express queries over a *single* relation — a morphism has one input.  This
//! module bypasses the morphism for the query shapes whose generators read
//! session bindings directly, producing a [`PhysicalPlan`] in which
//! `Scan(i)` reads the `i`-th referenced binding:
//!
//! * `{ head | x <- db1, y <- db2, …, guards… }` — one scan per generator
//!   (cartesian-chained), guards become filters over the accumulated row
//!   tuple, the head becomes the final projection.  A guard sitting directly
//!   on a cartesian product is fused into a [`PhysicalPlan::Join`], where
//!   equality predicates additionally take the engine's hash fast path.
//!   A **dependent** generator (`{ x | xs <- db, x <- xs }`) projects each
//!   row to its set of `(row, element)` pairs (`ρ₂`) and streams them with
//!   [`PhysicalPlan::Flatten`] — carrying only the small accumulated row
//!   tuple, where the morphism route's environment scaffolding would pair
//!   every row with the entire input relation (quadratic);
//! * `union(a, b)` — [`PhysicalPlan::Union`] of the two planned arms;
//! * `flatten(e)` — [`PhysicalPlan::Flatten`];
//! * a bare binding reference `db` — the scan itself.
//!
//! Row-level expressions (guards, heads) are compiled by the ordinary
//! categorical environment translation ([`compile_with_env`]) and
//! pre-composed with an **adapter** morphism that reshapes the engine's
//! left-nested row tuple `((r₀, r₁), r₂)` into the compiler's environment
//! tuple `(((unit, r₀), r₁), r₂)`.
//!
//! Everything outside these shapes returns a [`PlanError`] whose reason the
//! session records as the statement's fallback reason.

use std::fmt;

use or_nra::morphism::Morphism as M;
use or_nra::optimize::simplified;
use or_nra::physical::PhysicalPlan;

use crate::ast::{BinOp, Builtin, Expr, Qualifier};
use crate::compile::compile_with_env;

/// A physical plan over named session bindings: `Scan(i)` reads the relation
/// bound to `inputs[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedQuery {
    /// The multi-input plan.
    pub plan: PhysicalPlan,
    /// Binding names, one per input slot, in first-reference order.
    pub inputs: Vec<String>,
}

/// Why an expression could not be planned directly.  The session surfaces
/// the reason in its fallback statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// Human-readable description of the unsupported shape.
    pub reason: String,
    /// Whether the expression *looked like* a relational query (a
    /// comprehension, `union`, `flatten`) that the planner nevertheless
    /// could not handle.  Sessions retain only noteworthy reasons in their
    /// bounded fallback diagnostics — a `let` of a literal or a scalar
    /// expression is an expected interpreter statement, and recording it
    /// would evict the reasons the diagnostics exist to surface.
    pub noteworthy: bool,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.reason)
    }
}

impl std::error::Error for PlanError {}

fn err<T>(reason: impl Into<String>) -> Result<T, PlanError> {
    Err(PlanError {
        reason: reason.into(),
        noteworthy: true,
    })
}

/// Plan a set-valued query over relation bindings.  See the module docs for
/// the accepted shapes.
pub fn plan_query(expr: &Expr) -> Result<PlannedQuery, PlanError> {
    let mut inputs = Vec::new();
    let plan = plan_expr(expr, &mut inputs)?;
    Ok(PlannedQuery {
        plan: fuse_joins(plan),
        inputs,
    })
}

/// The input slot for binding `name`, allocating one on first reference.
fn slot_of(inputs: &mut Vec<String>, name: &str) -> usize {
    match inputs.iter().position(|s| s == name) {
        Some(i) => i,
        None => {
            inputs.push(name.to_string());
            inputs.len() - 1
        }
    }
}

fn plan_expr(expr: &Expr, inputs: &mut Vec<String>) -> Result<PhysicalPlan, PlanError> {
    match expr {
        Expr::Var(name) => Ok(PhysicalPlan::scan(slot_of(inputs, name))),
        Expr::Call(Builtin::Union, args) if args.len() == 2 => {
            let left = plan_expr(&args[0], inputs)?;
            let right = plan_expr(&args[1], inputs)?;
            Ok(left.union_with(right))
        }
        Expr::Call(Builtin::Flatten, args) if args.len() == 1 => {
            Ok(plan_expr(&args[0], inputs)?.flatten())
        }
        Expr::SetComp { head, qualifiers } => plan_comprehension(head, qualifiers, inputs),
        Expr::OrSetComp { .. } => err("or-set comprehension (the engine computes set queries)"),
        other => Err(PlanError {
            reason: format!(
                "expression shape is not a relation pipeline ({})",
                shape_name(other)
            ),
            // set-algebra operators over relations are genuine engine gaps
            // worth surfacing; literals, scalar expressions etc. are
            // ordinary interpreter statements, not missed opportunities
            noteworthy: matches!(
                other,
                Expr::Call(Builtin::Intersect | Builtin::Difference, _)
            ),
        }),
    }
}

/// A short human-readable description of an expression's outermost shape,
/// used in fallback reasons.
fn shape_name(expr: &Expr) -> &'static str {
    match expr {
        Expr::Unit | Expr::Int(_) | Expr::Bool(_) | Expr::Str(_) => "constant",
        Expr::Var(_) => "variable",
        Expr::Pair(..) => "pair expression",
        Expr::SetLit(_) => "set literal",
        Expr::OrSetLit(_) => "or-set literal",
        Expr::SetComp { .. } => "set comprehension",
        Expr::OrSetComp { .. } => "or-set comprehension",
        Expr::Let { .. } => "let expression",
        Expr::If { .. } => "conditional",
        Expr::BinOp(..) => "operator expression",
        Expr::Not(_) => "negation",
        Expr::Call(builtin, _) => builtin.name(),
    }
}

fn plan_comprehension(
    head: &Expr,
    qualifiers: &[Qualifier],
    inputs: &mut Vec<String>,
) -> Result<PhysicalPlan, PlanError> {
    let mut vars: Vec<String> = Vec::new();
    let mut plan: Option<PhysicalPlan> = None;
    for q in qualifiers {
        match q {
            Qualifier::Generator(name, source) => {
                match source {
                    // independent generator over a session binding: a scan,
                    // cartesian-chained onto the row built so far
                    Expr::Var(rel) if !vars.iter().any(|v| v == rel) => {
                        let scan = PhysicalPlan::scan(slot_of(inputs, rel));
                        plan = Some(match plan {
                            None => scan,
                            Some(p) => p.cartesian(scan),
                        });
                    }
                    // dependent generator: the source reads earlier
                    // generator variables, so each row projects to the set
                    // of `(row, element)` pairs (`ρ₂`) and `Flatten`
                    // streams them.  Crucially the pair carries only the
                    // small accumulated row tuple — not the morphism
                    // route's environment tuple, which drags the entire
                    // input relation through every row.
                    _ => {
                        let Some(p) = plan else {
                            return err("first generator must range over a relation binding");
                        };
                        let src = row_morphism(source, &vars)?;
                        plan = Some(p.project(M::pair(M::Id, src).then(M::Rho2)).flatten());
                    }
                }
                vars.push(name.clone());
            }
            Qualifier::Guard(guard) => {
                let Some(p) = plan else {
                    return err("guard before the first generator");
                };
                plan = Some(p.filter(row_morphism(guard, &vars)?));
            }
        }
    }
    let Some(plan) = plan else {
        return err("comprehension has no generator");
    };
    let head_m = row_morphism(head, &vars)?;
    Ok(plan.project(head_m))
}

/// Compile `expr` (free variables ⊆ the generator variables `vars`) into a
/// morphism over the engine's left-nested row tuple.  Equality guards are
/// compiled side-by-side so they surface as `eq ∘ ⟨f, g⟩` — the shape the
/// engine's equi-join detector recognizes for the hash fast path.
fn row_morphism(expr: &Expr, vars: &[String]) -> Result<M, PlanError> {
    if let Expr::BinOp(BinOp::Eq, a, b) = expr {
        let ca = side_morphism(a, vars)?;
        let cb = side_morphism(b, vars)?;
        return Ok(M::pair(ca, cb).then(M::Eq));
    }
    side_morphism(expr, vars)
}

/// `adapter ; compile(expr)`, simplified so that pure projection chains
/// collapse (letting the equi-join detector see through them).
fn side_morphism(expr: &Expr, vars: &[String]) -> Result<M, PlanError> {
    let body = compile_with_env(expr, vars).map_err(|e| PlanError {
        reason: format!("row expression is not compilable over the generators: {e}"),
        noteworthy: true,
    })?;
    Ok(simplified(&adapter(vars.len()).then(body)))
}

/// Reshape the engine's left-nested row tuple of `n` generator values into
/// the compiler's environment tuple (same nesting with a `unit` at the
/// bottom): `((r₀, r₁), r₂) ↦ (((unit, r₀), r₁), r₂)`.
fn adapter(n: usize) -> M {
    match n {
        0 => M::Bang,
        1 => M::pair(M::Bang, M::Id),
        _ => M::pair(M::Proj1.then(adapter(n - 1)), M::Proj2),
    }
}

/// Fuse every filter sitting directly on a cartesian product into a join —
/// the join operator evaluates the same predicate over the same pairs, and
/// equality predicates then take the engine's hash path instead of
/// enumerating the product.
fn fuse_joins(plan: PhysicalPlan) -> PhysicalPlan {
    match plan {
        PhysicalPlan::Filter { predicate, input } => match fuse_joins(*input) {
            PhysicalPlan::Cartesian { left, right } => PhysicalPlan::Join {
                predicate,
                left,
                right,
            },
            other => PhysicalPlan::Filter {
                predicate,
                input: Box::new(other),
            },
        },
        PhysicalPlan::Project { f, input } => PhysicalPlan::Project {
            f,
            input: Box::new(fuse_joins(*input)),
        },
        PhysicalPlan::Cartesian { left, right } => PhysicalPlan::Cartesian {
            left: Box::new(fuse_joins(*left)),
            right: Box::new(fuse_joins(*right)),
        },
        PhysicalPlan::Union { left, right } => PhysicalPlan::Union {
            left: Box::new(fuse_joins(*left)),
            right: Box::new(fuse_joins(*right)),
        },
        PhysicalPlan::Flatten { input } => PhysicalPlan::Flatten {
            input: Box::new(fuse_joins(*input)),
        },
        // the planner itself only emits the variants above; anything else
        // (joins it already fused, scans) passes through unchanged
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn planned(src: &str) -> PlannedQuery {
        plan_query(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn single_generator_comprehensions_plan_to_scan_pipelines() {
        let pq = planned("{ fst(p) | p <- db, snd(p) <= 20 }");
        assert_eq!(pq.inputs, vec!["db".to_string()]);
        let rendered = pq.plan.to_string();
        assert!(rendered.contains("Project"), "plan: {rendered}");
        assert!(rendered.contains("Filter"), "plan: {rendered}");
        assert!(rendered.contains("Scan(#0)"), "plan: {rendered}");
    }

    #[test]
    fn multi_binding_comprehensions_plan_to_multi_input_joins() {
        let pq = planned("{ (fst(u), snd(g)) | u <- users, g <- groups, snd(u) == fst(g) }");
        assert_eq!(pq.inputs, vec!["users".to_string(), "groups".to_string()]);
        assert_eq!(pq.plan.input_arity(), 2);
        let rendered = pq.plan.to_string();
        // the equality guard fuses the cartesian product into a join
        assert!(rendered.contains("Join"), "plan: {rendered}");
        assert!(!rendered.contains("Cartesian"), "plan: {rendered}");
    }

    #[test]
    fn repeated_bindings_share_a_slot() {
        let pq = planned("{ (x, y) | x <- db, y <- db }");
        assert_eq!(pq.inputs, vec!["db".to_string()]);
        assert!(pq.plan.to_string().contains("Cartesian"));
    }

    #[test]
    fn union_and_flatten_of_bindings_plan_directly() {
        let pq = planned("union({ fst(p) | p <- a }, { fst(q) | q <- b })");
        assert_eq!(pq.inputs, vec!["a".to_string(), "b".to_string()]);
        assert!(pq.plan.to_string().contains("Union"));
        let pq = planned("flatten(nested)");
        assert!(pq.plan.to_string().contains("Flatten"));
    }

    #[test]
    fn dependent_generators_plan_to_flatten_pipelines() {
        let pq = planned("{ x | xs <- db, x <- xs }");
        assert_eq!(pq.inputs, vec!["db".to_string()]);
        let rendered = pq.plan.to_string();
        assert!(rendered.contains("Flatten"), "plan: {rendered}");
        assert!(rendered.contains("Scan(#0)"), "plan: {rendered}");
        // a dependent generator mid-chain, with a guard afterwards
        let pq = planned("{ (fst(r), x) | r <- db, x <- snd(r), x != fst(r) }");
        assert_eq!(pq.inputs, vec!["db".to_string()]);
        assert!(pq.plan.to_string().contains("Flatten"));
    }

    #[test]
    fn unsupported_shapes_report_reasons() {
        // a leading dependent generator has no relation to scan
        let e = plan_query(&parse("{ x | xs <- {{1}}, x <- xs }").unwrap()).unwrap_err();
        assert!(e.reason.contains("first generator"), "{e}");
        // or-set comprehension
        let e = plan_query(&parse("<| x | x <- db |>").unwrap()).unwrap_err();
        assert!(e.reason.contains("or-set"), "{e}");
        // guard reading a binding that is not streamed through the row
        let e = plan_query(&parse("{ x | x <- db, member(x, other) }").unwrap()).unwrap_err();
        assert!(e.reason.contains("not compilable"), "{e}");
    }
}
