//! The abstract syntax of OrQL.

use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Structural equality.
    Eq,
    /// Structural inequality.
    Neq,
    /// Integer less-or-equal.
    Leq,
    /// Integer strictly-less.
    Lt,
    /// Integer greater-or-equal.
    Geq,
    /// Integer strictly-greater.
    Gt,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
}

impl BinOp {
    /// Surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Eq => "==",
            BinOp::Neq => "!=",
            BinOp::Leq => "<=",
            BinOp::Lt => "<",
            BinOp::Geq => ">=",
            BinOp::Gt => ">",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Built-in functions of OrQL.  Each corresponds to an or-NRA(⁺) operator or
/// to a member of the derived library (the OR-SML "libraries of derived
/// functions" of Section 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Builtin {
    /// `normalize(e)` — the or-NRA⁺ primitive.
    Normalize,
    /// `alpha(e)` — combine a set of or-sets.
    Alpha,
    /// `flatten(e)` — `μ` on sets of sets.
    Flatten,
    /// `orflatten(e)` — `orμ` on or-sets of or-sets.
    OrFlatten,
    /// `union(a, b)`.
    Union,
    /// `orunion(a, b)`.
    OrUnion,
    /// `member(x, s)`.
    Member,
    /// `ormember(x, s)`.
    OrMember,
    /// `subset(a, b)`.
    Subset,
    /// `intersect(a, b)`.
    Intersect,
    /// `difference(a, b)`.
    Difference,
    /// `powerset(e)` (the Abiteboul–Beeri baseline primitive).
    Powerset,
    /// `toset(e)` — `ortoset`.
    ToSet,
    /// `toorset(e)` — `settoor`.
    ToOrSet,
    /// `isempty(e)` on sets.
    IsEmpty,
    /// `orisempty(e)` on or-sets.
    OrIsEmpty,
    /// `fst(e)`.
    Fst,
    /// `snd(e)`.
    Snd,
}

impl Builtin {
    /// Surface name of the builtin.
    pub fn name(self) -> &'static str {
        match self {
            Builtin::Normalize => "normalize",
            Builtin::Alpha => "alpha",
            Builtin::Flatten => "flatten",
            Builtin::OrFlatten => "orflatten",
            Builtin::Union => "union",
            Builtin::OrUnion => "orunion",
            Builtin::Member => "member",
            Builtin::OrMember => "ormember",
            Builtin::Subset => "subset",
            Builtin::Intersect => "intersect",
            Builtin::Difference => "difference",
            Builtin::Powerset => "powerset",
            Builtin::ToSet => "toset",
            Builtin::ToOrSet => "toorset",
            Builtin::IsEmpty => "isempty",
            Builtin::OrIsEmpty => "orisempty",
            Builtin::Fst => "fst",
            Builtin::Snd => "snd",
        }
    }

    /// Number of arguments the builtin expects.
    pub fn arity(self) -> usize {
        match self {
            Builtin::Union
            | Builtin::OrUnion
            | Builtin::Member
            | Builtin::OrMember
            | Builtin::Subset
            | Builtin::Intersect
            | Builtin::Difference => 2,
            _ => 1,
        }
    }

    /// Look up a builtin by surface name.
    pub fn by_name(name: &str) -> Option<Builtin> {
        use Builtin::*;
        let all = [
            Normalize, Alpha, Flatten, OrFlatten, Union, OrUnion, Member, OrMember, Subset,
            Intersect, Difference, Powerset, ToSet, ToOrSet, IsEmpty, OrIsEmpty, Fst, Snd,
        ];
        all.into_iter().find(|b| b.name() == name)
    }
}

/// A comprehension qualifier: a generator `x <- e` or a boolean guard.
#[derive(Debug, Clone, PartialEq)]
pub enum Qualifier {
    /// `x <- e`.
    Generator(String, Expr),
    /// A boolean guard expression.
    Guard(Expr),
}

/// An OrQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// The unit constant.
    Unit,
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// Variable reference.
    Var(String),
    /// Pair `(a, b)`.
    Pair(Box<Expr>, Box<Expr>),
    /// Set literal `{e₁, …, eₙ}`.
    SetLit(Vec<Expr>),
    /// Or-set literal `<| e₁, …, eₙ |>`.
    OrSetLit(Vec<Expr>),
    /// Set comprehension `{ head | qualifiers }`.
    SetComp {
        /// The head expression.
        head: Box<Expr>,
        /// The qualifiers, evaluated left to right.
        qualifiers: Vec<Qualifier>,
    },
    /// Or-set comprehension `<| head | qualifiers |>`.
    OrSetComp {
        /// The head expression.
        head: Box<Expr>,
        /// The qualifiers, evaluated left to right.
        qualifiers: Vec<Qualifier>,
    },
    /// `let name = value in body`.
    Let {
        /// Bound variable.
        name: String,
        /// Bound expression.
        value: Box<Expr>,
        /// Body in which the variable is visible.
        body: Box<Expr>,
    },
    /// `if cond then a else b`.
    If {
        /// Condition.
        cond: Box<Expr>,
        /// Then-branch.
        then_branch: Box<Expr>,
        /// Else-branch.
        else_branch: Box<Expr>,
    },
    /// Binary operation.
    BinOp(BinOp, Box<Expr>, Box<Expr>),
    /// Boolean negation `!e`.
    Not(Box<Expr>),
    /// Builtin application.
    Call(Builtin, Vec<Expr>),
}

impl Expr {
    /// Number of AST nodes (used in statistics and tests).
    pub fn size(&self) -> usize {
        match self {
            Expr::Unit | Expr::Int(_) | Expr::Bool(_) | Expr::Str(_) | Expr::Var(_) => 1,
            Expr::Pair(a, b) | Expr::BinOp(_, a, b) => 1 + a.size() + b.size(),
            Expr::Not(a) => 1 + a.size(),
            Expr::SetLit(items) | Expr::OrSetLit(items) => {
                1 + items.iter().map(Expr::size).sum::<usize>()
            }
            Expr::SetComp { head, qualifiers } | Expr::OrSetComp { head, qualifiers } => {
                1 + head.size()
                    + qualifiers
                        .iter()
                        .map(|q| match q {
                            Qualifier::Generator(_, e) | Qualifier::Guard(e) => e.size(),
                        })
                        .sum::<usize>()
            }
            Expr::Let { value, body, .. } => 1 + value.size() + body.size(),
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => 1 + cond.size() + then_branch.size() + else_branch.size(),
            Expr::Call(_, args) => 1 + args.iter().map(Expr::size).sum::<usize>(),
        }
    }

    /// The free variables of the expression, in sorted order.
    ///
    /// `let` and comprehension generators bind; a generator's source is
    /// evaluated *before* its variable comes into scope, and later
    /// qualifiers see the variables of earlier generators.
    pub fn free_vars(&self) -> Vec<String> {
        let mut out = std::collections::BTreeSet::new();
        let mut bound: Vec<String> = Vec::new();
        collect_free(self, &mut bound, &mut out);
        return out.into_iter().collect();

        fn collect_free(
            e: &Expr,
            bound: &mut Vec<String>,
            out: &mut std::collections::BTreeSet<String>,
        ) {
            match e {
                Expr::Unit | Expr::Int(_) | Expr::Bool(_) | Expr::Str(_) => {}
                Expr::Var(name) => {
                    if !bound.iter().any(|b| b == name) {
                        out.insert(name.clone());
                    }
                }
                Expr::Pair(a, b) | Expr::BinOp(_, a, b) => {
                    collect_free(a, bound, out);
                    collect_free(b, bound, out);
                }
                Expr::Not(a) => collect_free(a, bound, out),
                Expr::SetLit(items) | Expr::OrSetLit(items) => {
                    for item in items {
                        collect_free(item, bound, out);
                    }
                }
                Expr::SetComp { head, qualifiers } | Expr::OrSetComp { head, qualifiers } => {
                    let depth = bound.len();
                    for q in qualifiers {
                        match q {
                            Qualifier::Generator(name, source) => {
                                collect_free(source, bound, out);
                                bound.push(name.clone());
                            }
                            Qualifier::Guard(g) => collect_free(g, bound, out),
                        }
                    }
                    collect_free(head, bound, out);
                    bound.truncate(depth);
                }
                Expr::Let { name, value, body } => {
                    collect_free(value, bound, out);
                    bound.push(name.clone());
                    collect_free(body, bound, out);
                    bound.pop();
                }
                Expr::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    collect_free(cond, bound, out);
                    collect_free(then_branch, bound, out);
                    collect_free(else_branch, bound, out);
                }
                Expr::Call(_, args) => {
                    for arg in args {
                        collect_free(arg, bound, out);
                    }
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn list(f: &mut fmt::Formatter<'_>, items: &[Expr]) -> fmt::Result {
            for (i, e) in items.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{e}")?;
            }
            Ok(())
        }
        fn quals(f: &mut fmt::Formatter<'_>, qs: &[Qualifier]) -> fmt::Result {
            for (i, q) in qs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                match q {
                    Qualifier::Generator(x, e) => write!(f, "{x} <- {e}")?,
                    Qualifier::Guard(e) => write!(f, "{e}")?,
                }
            }
            Ok(())
        }
        match self {
            Expr::Unit => write!(f, "unit"),
            Expr::Int(i) => write!(f, "{i}"),
            Expr::Bool(b) => write!(f, "{b}"),
            Expr::Str(s) => write!(f, "{s:?}"),
            Expr::Var(x) => write!(f, "{x}"),
            Expr::Pair(a, b) => write!(f, "({a}, {b})"),
            Expr::SetLit(items) => {
                write!(f, "{{")?;
                list(f, items)?;
                write!(f, "}}")
            }
            Expr::OrSetLit(items) => {
                write!(f, "<|")?;
                list(f, items)?;
                write!(f, "|>")
            }
            Expr::SetComp { head, qualifiers } => {
                write!(f, "{{ {head} | ")?;
                quals(f, qualifiers)?;
                write!(f, " }}")
            }
            Expr::OrSetComp { head, qualifiers } => {
                write!(f, "<| {head} | ")?;
                quals(f, qualifiers)?;
                write!(f, " |>")
            }
            Expr::Let { name, value, body } => write!(f, "let {name} = {value} in {body}"),
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => write!(f, "if {cond} then {then_branch} else {else_branch}"),
            Expr::BinOp(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Expr::Not(a) => write!(f, "!{a}"),
            Expr::Call(b, args) => {
                write!(f, "{}(", b.name())?;
                list(f, args)?;
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_lookup_by_name() {
        assert_eq!(Builtin::by_name("normalize"), Some(Builtin::Normalize));
        assert_eq!(Builtin::by_name("union"), Some(Builtin::Union));
        assert_eq!(Builtin::by_name("nosuch"), None);
        assert_eq!(Builtin::Union.arity(), 2);
        assert_eq!(Builtin::Normalize.arity(), 1);
    }

    #[test]
    fn display_round_trips_informally() {
        let e = Expr::OrSetComp {
            head: Box::new(Expr::Var("x".into())),
            qualifiers: vec![
                Qualifier::Generator(
                    "x".into(),
                    Expr::Call(Builtin::Normalize, vec![Expr::Var("db".into())]),
                ),
                Qualifier::Guard(Expr::BinOp(
                    BinOp::Leq,
                    Box::new(Expr::Var("x".into())),
                    Box::new(Expr::Int(100)),
                )),
            ],
        };
        assert_eq!(e.to_string(), "<| x | x <- normalize(db), (x <= 100) |>");
        assert!(e.size() > 4);
    }
}
