//! Stateful OrQL sessions: the engine behind the `orql` REPL.
//!
//! A [`Session`] holds named bindings (values with their types), evaluates
//! statements, and reports both the value and the inferred type of every
//! expression — like the OR-SML top level the paper describes.
//!
//! ## Execution modes
//!
//! The session can route queries through three executors:
//!
//! * [`ExecMode::Interp`] (default) — the direct tree-walking interpreter;
//! * [`ExecMode::Engine`] — **engine-first**: compile the expression to a
//!   physical plan (either directly over the referenced relation bindings
//!   via [`crate::plan`], or through an or-NRA⁺ morphism and
//!   [`lower`](or_nra::optimize::lower)) and run it on the streaming
//!   parallel engine (`or-engine`) as the *primary* executor.  The
//!   interpreter runs only for statements outside the engine's fragment;
//!   [`Session::engine_stats`] reports how often each path ran and *why*
//!   the last fallbacks happened;
//! * [`ExecMode::EngineChecked`] — the engine result is additionally
//!   **cross-checked** against the interpreter (the pre-engine-first
//!   behaviour); a disagreement is reported as
//!   [`SessionError::EngineMismatch`] rather than returned as data.  This
//!   mode pays for both executions and exists for differential testing —
//!   the proptest suites drive sessions in this mode.
//!
//! The engine's fragment covers comprehensions over one *or several*
//! set-valued bindings (multi-generator comprehensions become multi-input
//! cartesian/join plans), `union`/`flatten` pipelines over them, dependent
//! generators (via the `Flatten` lowering), and per-row α-expansion
//! pipelines.  Or-monad statements (`normalize(db)` at the top level,
//! or-set comprehensions) fall back to the interpreter.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use or_engine::{EngineInputs, ExecConfig, Executor};
use or_object::intern::{InternId, Interner};
use or_object::{Type, Value};

use crate::check::{infer_type, CheckError, TypeEnv};
use crate::compile::compile_query;
use crate::interp::{interpret, Env, InterpError};
use crate::parser::{parse_statement, ParseError, Statement};
use crate::plan::{plan_query, PlanError};

/// The result of evaluating one statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionResult {
    /// The computed value.
    pub value: Value,
    /// Its inferred type.
    pub ty: Type,
    /// The name the value was bound to, if the statement was a binding.
    pub bound: Option<String>,
}

/// Errors from session evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// Syntax error.
    Parse(ParseError),
    /// Type error.
    Check(CheckError),
    /// Runtime error.
    Runtime(InterpError),
    /// The physical engine failed on a query the lowering accepted.
    Engine(String),
    /// The engine and the interpreter disagreed on a query result — a bug in
    /// one of them; the query and both answers are reported.  Only raised in
    /// [`ExecMode::EngineChecked`].
    EngineMismatch {
        /// The offending query source.
        query: String,
        /// What the engine produced.
        engine: String,
        /// What the interpreter produced.
        interp: String,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Parse(e) => write!(f, "{e}"),
            SessionError::Check(e) => write!(f, "{e}"),
            SessionError::Runtime(e) => write!(f, "{e}"),
            SessionError::Engine(e) => write!(f, "engine error: {e}"),
            SessionError::EngineMismatch {
                query,
                engine,
                interp,
            } => write!(
                f,
                "engine/interpreter mismatch on `{query}`: engine produced \
                 {engine}, interpreter produced {interp}"
            ),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ParseError> for SessionError {
    fn from(e: ParseError) -> Self {
        SessionError::Parse(e)
    }
}

impl From<CheckError> for SessionError {
    fn from(e: CheckError) -> Self {
        SessionError::Check(e)
    }
}

impl From<InterpError> for SessionError {
    fn from(e: InterpError) -> Self {
        SessionError::Runtime(e)
    }
}

/// How the session executes queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// The direct tree-walking interpreter (the default).
    #[default]
    Interp,
    /// Engine-first: run plannable queries on the streaming parallel engine
    /// and fall back to the interpreter only outside its fragment.
    Engine,
    /// Like [`ExecMode::Engine`], but every engine result is re-computed on
    /// the interpreter and compared — the differential-testing mode.
    EngineChecked,
}

/// Counters and diagnostics for the engine routing (see
/// [`Session::engine_stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Statements executed on the physical engine.
    pub engine: u64,
    /// Statements that fell back to the interpreter (not in the plannable
    /// fragment).
    pub fallback: u64,
    /// The most recent *noteworthy* fallback reasons (oldest first, at most
    /// [`EngineStats::MAX_REASONS`]), each tagged with the statement source.
    /// Statements that merely look nothing like a relational query —
    /// literals, scalar expressions, bare binding echoes — count toward
    /// [`EngineStats::fallback`] but are not recorded here, so they cannot
    /// evict the reasons worth reading.
    pub fallback_reasons: Vec<String>,
}

impl EngineStats {
    /// How many fallback reasons are retained.
    pub const MAX_REASONS: usize = 8;
}

/// A stateful OrQL session.
///
/// Sessions own a long-lived interning arena: every set-valued binding is
/// interned **once**, when bound (`let` or [`Session::bind`]), and each
/// engine-served query overlays a throwaway query arena on top of the
/// session arena — so repeated queries over the same bindings pay the
/// interning cost zero times after the first.
#[derive(Debug)]
pub struct Session {
    values: Env,
    types: HashMap<String, Type>,
    mode: ExecMode,
    engine_config: ExecConfig,
    stats: EngineStats,
    /// The session's interning arena (frozen from the engine's point of
    /// view; grown in place between queries as bindings change).
    arena: Arc<Interner>,
    /// Per-binding interned row ids, valid in `arena`.
    interned: HashMap<String, Vec<InternId>>,
    /// Rows orphaned in the arena by rebinds since the last compaction;
    /// when they rival the live rows the arena is rebuilt, so memory stays
    /// proportional to the live bindings at amortized O(1) per bound row.
    stale_rows: usize,
}

impl Default for Session {
    fn default() -> Session {
        Session {
            values: Env::default(),
            types: HashMap::new(),
            mode: ExecMode::default(),
            engine_config: ExecConfig::default(),
            stats: EngineStats::default(),
            arena: Arc::new(Interner::new()),
            interned: HashMap::new(),
            stale_rows: 0,
        }
    }
}

impl Session {
    /// Create an empty session.
    pub fn new() -> Session {
        Session::default()
    }

    /// Create a session that serves queries from the physical engine
    /// (engine-first; see [`ExecMode::Engine`]).
    pub fn with_engine(config: ExecConfig) -> Session {
        Session {
            mode: ExecMode::Engine,
            engine_config: config,
            ..Session::default()
        }
    }

    /// Create a session that runs the engine *and* cross-checks every result
    /// against the interpreter (see [`ExecMode::EngineChecked`]).
    pub fn with_engine_checked(config: ExecConfig) -> Session {
        Session {
            mode: ExecMode::EngineChecked,
            engine_config: config,
            ..Session::default()
        }
    }

    /// Switch the execution mode.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.mode = mode;
    }

    /// Set the worker count for subsequent engine-served queries.
    ///
    /// Workers are **pinned** ([`ExecConfig::with_pinned_workers`]): a
    /// session caller asking for `n` workers gets `n` worker threads even on
    /// inputs below the executor's [`ExecConfig::min_parallel_rows`]
    /// sequential-fallback threshold.  To keep the threshold heuristic
    /// instead, construct the session with
    /// [`Session::with_engine`]`(ExecConfig::parallel())`.
    pub fn set_engine_workers(&mut self, workers: usize) {
        self.engine_config = self.engine_config.with_pinned_workers(workers);
    }

    /// The engine configuration used for engine-served queries.
    pub fn engine_config(&self) -> ExecConfig {
        self.engine_config
    }

    /// The current execution mode.
    pub fn exec_mode(&self) -> ExecMode {
        self.mode
    }

    /// How many statements ran on the engine vs. the interpreter, and the
    /// most recent fallback reasons.
    pub fn engine_stats(&self) -> EngineStats {
        self.stats.clone()
    }

    /// Bind a pre-built value under a name (its type is inferred from the
    /// value; values containing nulls cannot be bound this way).
    pub fn bind(&mut self, name: impl Into<String>, value: Value) {
        let name = name.into();
        if let Ok(ty) = value.infer_type() {
            self.types.insert(name.clone(), ty);
        }
        self.cache_binding(&name, &value);
        self.values.insert(name, value);
    }

    /// Intern a set-valued binding's rows into the session arena (once, at
    /// bind time) so every later engine query reuses the ids.  Queries only
    /// ever *overlay* the arena, so between statements this session holds
    /// the sole reference and `make_mut` grows it in place.
    ///
    /// Rebinding a name that was interned orphans the superseded rows'
    /// nodes.  Orphans are tracked, and once they rival the live rows the
    /// arena is **compacted** (rebuilt from the live bindings only), so
    /// session memory stays proportional to what is currently bound while
    /// each individual rebind stays proportional to the rebound binding —
    /// the compaction cost is amortized over the rows that made it
    /// necessary.
    fn cache_binding(&mut self, name: &str, value: &Value) {
        if let Some(old) = self.interned.remove(name) {
            self.stale_rows += old.len().max(1);
        }
        // non-set bindings carry no interned rows
        if let Value::Set(rows) = value {
            let arena = Arc::make_mut(&mut self.arena);
            let ids: Vec<InternId> = rows.iter().map(|r| arena.intern(r)).collect();
            self.interned.insert(name.to_string(), ids);
        }
        let live: usize = self.interned.values().map(Vec::len).sum();
        if self.stale_rows > 0 && self.stale_rows * 2 >= live.max(1) {
            self.compact_arena(name, value);
        }
    }

    /// Rebuild the session arena from the live bindings.  `self.values`
    /// still holds the superseded binding for `changed`, so its rows come
    /// from `new_value` instead.
    fn compact_arena(&mut self, changed: &str, new_value: &Value) {
        let mut arena = Interner::new();
        let mut interned = HashMap::with_capacity(self.interned.len());
        for (n, v) in &self.values {
            if n == changed {
                continue;
            }
            if let Value::Set(rows) = v {
                let ids: Vec<InternId> = rows.iter().map(|r| arena.intern(r)).collect();
                interned.insert(n.clone(), ids);
            }
        }
        if let Value::Set(rows) = new_value {
            let ids: Vec<InternId> = rows.iter().map(|r| arena.intern(r)).collect();
            interned.insert(changed.to_string(), ids);
        }
        self.arena = Arc::new(arena);
        self.interned = interned;
        self.stale_rows = 0;
    }

    /// The current bindings, sorted by name.
    pub fn bindings(&self) -> Vec<(String, Type)> {
        let mut out: Vec<(String, Type)> = self
            .types
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        out.sort();
        out
    }

    fn type_env(&self) -> TypeEnv {
        let mut env: TypeEnv = self
            .types
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        env.sort_by(|a, b| a.0.cmp(&b.0));
        env
    }

    /// Parse, type-check and evaluate one statement, updating the session
    /// state if it is a binding.
    pub fn run(&mut self, source: &str) -> Result<SessionResult, SessionError> {
        let statement = parse_statement(source)?;
        match statement {
            Statement::Expr(expr) => {
                let ty = infer_type(&expr, &self.type_env())?;
                let value = self.evaluate(source, &expr)?;
                Ok(SessionResult {
                    value,
                    ty,
                    bound: None,
                })
            }
            Statement::Bind(name, expr) => {
                let ty = infer_type(&expr, &self.type_env())?;
                let value = self.evaluate(source, &expr)?;
                self.types.insert(name.clone(), ty.clone());
                self.cache_binding(&name, &value);
                self.values.insert(name.clone(), value.clone());
                Ok(SessionResult {
                    value,
                    ty,
                    bound: Some(name),
                })
            }
        }
    }

    /// Evaluate an expression under the current execution mode.
    fn evaluate(&mut self, source: &str, expr: &crate::ast::Expr) -> Result<Value, SessionError> {
        match self.mode {
            ExecMode::Interp => Ok(interpret(expr, &self.values)?),
            // Engine-first: the engine is the serving path; the interpreter
            // runs only when the statement is outside the plannable fragment.
            ExecMode::Engine => match self.try_engine(expr)? {
                Ok(value) => {
                    self.stats.engine += 1;
                    Ok(value)
                }
                Err(reason) => {
                    self.record_fallback(source, reason);
                    Ok(interpret(expr, &self.values)?)
                }
            },
            // Differential mode: both executors run, answers must agree.
            ExecMode::EngineChecked => {
                let interpreted = interpret(expr, &self.values)?;
                match self.try_engine(expr)? {
                    Ok(engine_value) => {
                        if engine_value != interpreted {
                            return Err(SessionError::EngineMismatch {
                                query: source.to_string(),
                                engine: engine_value.to_string(),
                                interp: interpreted.to_string(),
                            });
                        }
                        self.stats.engine += 1;
                    }
                    Err(reason) => self.record_fallback(source, reason),
                }
                Ok(interpreted)
            }
        }
    }

    fn record_fallback(&mut self, source: &str, fallback: PlanError) {
        self.stats.fallback += 1;
        if !fallback.noteworthy {
            return;
        }
        if self.stats.fallback_reasons.len() >= EngineStats::MAX_REASONS {
            self.stats.fallback_reasons.remove(0);
        }
        self.stats
            .fallback_reasons
            .push(format!("`{source}`: {}", fallback.reason));
    }

    /// Try to run `expr` on the physical engine.  The inner `Err(fallback)`
    /// means the statement is outside the engine's fragment (caller falls
    /// back to the interpreter and, for `noteworthy` errors, records the
    /// reason); the outer error is a genuine engine failure on a statement
    /// the planner accepted.
    fn try_engine(
        &self,
        expr: &crate::ast::Expr,
    ) -> Result<Result<Value, PlanError>, SessionError> {
        let noteworthy = |reason: String| PlanError {
            reason,
            noteworthy: true,
        };
        // A bare binding reference is an O(1) environment lookup: running
        // the engine would clone the whole relation through a scan, re-sort
        // an already-canonical set, and count the echo as "engine-served".
        if matches!(expr, crate::ast::Expr::Var(_)) {
            return Ok(Err(PlanError {
                reason: "bare binding reference (environment lookup)".to_string(),
                noteworthy: false,
            }));
        }
        // 1. The direct route: comprehensions / union / flatten over one or
        //    several set-valued bindings become a multi-input plan.  Every
        //    referenced binding was interned into the session arena at bind
        //    time; the engine overlays a query arena on it and re-interns
        //    nothing.
        let plan_fallback = match plan_query(expr) {
            Ok(pq) => {
                let mut inputs = EngineInputs::with_base(self.arena.clone());
                for name in &pq.inputs {
                    match self.values.get(name) {
                        Some(Value::Set(rows)) => match self.interned.get(name) {
                            Some(ids) => inputs.push_interned(rows, ids),
                            None => inputs.push_rows(rows),
                        },
                        Some(_) => {
                            return Ok(Err(noteworthy(format!(
                                "binding `{name}` is not a set relation"
                            ))))
                        }
                        None => return Ok(Err(noteworthy(format!("unbound relation `{name}`")))),
                    }
                }
                return match Executor::new(self.engine_config)
                    .run_inputs_to_value(&pq.plan, &inputs)
                {
                    Ok(value) => Ok(Ok(value)),
                    Err(e) => Err(SessionError::Engine(e.to_string())),
                };
            }
            Err(e) => e,
        };
        // 2. The morphism route: a query over exactly one set-valued binding
        //    is compiled to a morphism and lowered; this covers shapes the
        //    direct planner does not (α-expansion pipelines, environment
        //    scaffolding).
        let free = expr.free_vars();
        let [var] = free.as_slice() else {
            return Ok(Err(plan_fallback));
        };
        let Some(Value::Set(rows)) = self.values.get(var) else {
            return Ok(Err(noteworthy(format!(
                "binding `{var}` is not a set relation"
            ))));
        };
        let morphism = match compile_query(expr, var) {
            Ok(m) => m,
            Err(e) => return Ok(Err(noteworthy(e.to_string()))),
        };
        let plan = match or_nra::optimize::lower(&morphism) {
            Ok(plan) => plan,
            // keep the lowering's own description of what stopped it
            Err(e) => return Ok(Err(noteworthy(e.to_string()))),
        };
        let mut inputs = EngineInputs::with_base(self.arena.clone());
        match self.interned.get(var) {
            Some(ids) => inputs.push_interned(rows, ids),
            None => inputs.push_rows(rows),
        }
        // lowering already happened above, so any executor error here is a
        // genuine engine failure, not a fragment gap
        match Executor::new(self.engine_config).run_inputs_to_value(&plan, &inputs) {
            Ok(value) => Ok(Ok(value)),
            Err(e) => Err(SessionError::Engine(e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bindings_persist_across_statements() {
        let mut s = Session::new();
        let r = s.run("let db = { <|1,2|>, <|3|> }").unwrap();
        assert_eq!(r.bound.as_deref(), Some("db"));
        assert_eq!(r.ty, Type::set(Type::orset(Type::Int)));
        let r = s.run("normalize(db)").unwrap();
        assert_eq!(r.ty, Type::orset(Type::set(Type::Int)));
        assert_eq!(
            r.value,
            Value::orset([Value::int_set([1, 3]), Value::int_set([2, 3])])
        );
        assert_eq!(s.bindings().len(), 1);
    }

    #[test]
    fn external_values_can_be_bound() {
        let mut s = Session::new();
        s.bind("x", Value::Int(41));
        assert_eq!(s.run("x + 1").unwrap().value, Value::Int(42));
    }

    #[test]
    fn errors_are_classified() {
        let mut s = Session::new();
        assert!(matches!(s.run("1 +"), Err(SessionError::Parse(_))));
        assert!(matches!(s.run("1 + true"), Err(SessionError::Check(_))));
        assert!(matches!(s.run("nosuchvar"), Err(SessionError::Check(_))));
    }

    #[test]
    fn engine_mode_serves_set_queries_from_the_engine() {
        let mut s = Session::with_engine(ExecConfig::default().with_workers(2));
        assert_eq!(s.exec_mode(), ExecMode::Engine);
        s.run("let db = { (1, 10), (2, 20), (3, 30), (4, 40) }")
            .unwrap();
        let r = s.run("{ fst(p) | p <- db, snd(p) <= 20 }").unwrap();
        assert_eq!(r.value, Value::int_set([1, 2]));
        let stats = s.engine_stats();
        assert!(
            stats.engine >= 1,
            "query should have taken the engine path: {stats:?}"
        );
    }

    #[test]
    fn set_engine_workers_pins_the_worker_count() {
        let mut s = Session::with_engine(ExecConfig::default());
        s.set_engine_workers(4);
        let config = s.engine_config();
        assert_eq!(config.workers, 4);
        assert!(
            config.pin_workers,
            "session-requested workers must bypass the min_parallel_rows fallback"
        );
        // Pinned workers still serve small engine queries correctly.
        s.run("let db = { (1, 10), (2, 20), (3, 30), (4, 40) }")
            .unwrap();
        let r = s.run("{ fst(p) | p <- db, snd(p) <= 20 }").unwrap();
        assert_eq!(r.value, Value::int_set([1, 2]));
        assert!(s.engine_stats().engine >= 1);
    }

    #[test]
    fn engine_checked_mode_cross_checks_set_queries() {
        let mut s = Session::with_engine_checked(ExecConfig::default().with_workers(2));
        assert_eq!(s.exec_mode(), ExecMode::EngineChecked);
        s.run("let db = { (1, 10), (2, 20), (3, 30), (4, 40) }")
            .unwrap();
        let r = s.run("{ fst(p) | p <- db, snd(p) <= 20 }").unwrap();
        assert_eq!(r.value, Value::int_set([1, 2]));
        assert!(s.engine_stats().engine >= 1);
    }

    #[test]
    fn engine_mode_serves_multi_binding_comprehensions() {
        let mut s = Session::with_engine(ExecConfig::default().with_workers(2));
        s.run("let users = { (1, 10), (2, 20), (3, 10) }").unwrap();
        s.run("let groups = { (10, \"a\"), (20, \"b\") }").unwrap();
        let r = s
            .run("{ (fst(u), snd(g)) | u <- users, g <- groups, snd(u) == fst(g) }")
            .unwrap();
        assert_eq!(
            r.value,
            Value::set([
                Value::pair(Value::Int(1), Value::str("a")),
                Value::pair(Value::Int(2), Value::str("b")),
                Value::pair(Value::Int(3), Value::str("a")),
            ])
        );
        let stats = s.engine_stats();
        assert!(
            stats.engine >= 1,
            "multi-binding join should be engine-served: {stats:?}"
        );
    }

    #[test]
    fn engine_mode_serves_union_and_dependent_generators() {
        let mut s = Session::with_engine(ExecConfig::default());
        s.run("let a = { 1, 2, 3 }").unwrap();
        s.run("let b = { 3, 4 }").unwrap();
        let engine_before = s.engine_stats().engine;
        let r = s
            .run("union({ x | x <- a, x <= 2 }, { y | y <- b })")
            .unwrap();
        assert_eq!(r.value, Value::int_set([1, 2, 3, 4]));
        s.run("let nested = { {1, 2}, {2, 5} }").unwrap();
        let r = s.run("{ x | xs <- nested, x <- xs }").unwrap();
        assert_eq!(r.value, Value::int_set([1, 2, 5]));
        assert!(
            s.engine_stats().engine >= engine_before + 2,
            "union and dependent-generator statements should be engine-served: {:?}",
            s.engine_stats()
        );
    }

    #[test]
    fn engine_mode_falls_back_outside_the_fragment_with_reasons() {
        let mut s = Session::with_engine(ExecConfig::default());
        s.run("let db = { <|1,2|>, <|3|> }").unwrap();
        // or-monad pipeline: interpretable but not lowerable
        let r = s.run("normalize(db)").unwrap();
        assert_eq!(
            r.value,
            Value::orset([Value::int_set([1, 3]), Value::int_set([2, 3])])
        );
        let stats = s.engine_stats();
        assert!(stats.fallback >= 1);
        assert!(
            stats
                .fallback_reasons
                .iter()
                .any(|r| r.contains("normalize(db)")),
            "fallback reasons should name the statement: {stats:?}"
        );
    }

    #[test]
    fn fallback_reasons_are_capped_and_skip_trivial_statements() {
        let mut s = Session::with_engine(ExecConfig::default());
        s.run("let odb = <| 1, 2, 3 |>").unwrap();
        // the or-set literal binding is a fallback, but not a noteworthy one
        let baseline = s.engine_stats().fallback;
        assert!(s.engine_stats().fallback_reasons.is_empty());
        let n = EngineStats::MAX_REASONS as i64 + 5;
        for i in 0..n {
            // or-set comprehensions look like queries but are outside the
            // engine's set fragment: each records a reason
            s.run(&format!("<| x | x <- odb, {i} <= x |>")).unwrap();
        }
        // scalar statements keep counting without evicting the diagnostics
        s.run("1 + 1").unwrap();
        let stats = s.engine_stats();
        assert_eq!(stats.fallback, baseline + n as u64 + 1);
        assert_eq!(stats.fallback_reasons.len(), EngineStats::MAX_REASONS);
        // the retained reasons are the most recent noteworthy ones
        let last = stats.fallback_reasons.last().unwrap();
        assert!(last.contains(&format!("{} <= x", n - 1)), "{last}");
    }

    #[test]
    fn bare_binding_references_skip_the_engine() {
        let mut s = Session::with_engine(ExecConfig::default());
        s.run("let db = { 1, 2, 3 }").unwrap();
        let r = s.run("db").unwrap();
        assert_eq!(r.value, Value::int_set([1, 2, 3]));
        let stats = s.engine_stats();
        // the echo is an environment lookup, not an engine run, and leaves
        // no noteworthy reason behind
        assert_eq!(stats.engine, 0);
        assert!(stats.fallback_reasons.is_empty(), "{stats:?}");
    }

    #[test]
    fn engine_mode_agrees_with_interp_mode_on_a_session_script() {
        let script = [
            "let db = { (\"a\", 1), (\"b\", 2), (\"c\", 3) }",
            "{ snd(r) | r <- db }",
            "{ r | r <- db, snd(r) <= 2 }",
            "{ (snd(r), fst(r)) | r <- db, fst(r) != \"b\" }",
            "union({ snd(r) | r <- db }, { 9 })",
        ];
        let mut interp = Session::new();
        let mut engine = Session::with_engine(ExecConfig::default().with_workers(3));
        let mut checked = Session::with_engine_checked(ExecConfig::default().with_workers(3));
        for stmt in script {
            let a = interp.run(stmt).unwrap();
            let b = engine.run(stmt).unwrap();
            let c = checked.run(stmt).unwrap();
            assert_eq!(a.value, b.value, "disagreement on `{stmt}`");
            assert_eq!(a.value, c.value, "disagreement on `{stmt}` (checked)");
            assert_eq!(a.ty, b.ty);
        }
        assert!(engine.engine_stats().engine >= 3);
        assert!(checked.engine_stats().engine >= 3);
    }

    #[test]
    fn bindings_are_interned_once_and_reused_across_statements() {
        let mut s = Session::with_engine(ExecConfig::default());
        s.run("let db = { (1, 10), (2, 20), (3, 30) }").unwrap();
        assert!(s.interned.contains_key("db"), "let interns set bindings");
        let after_bind = s.arena.len();
        assert!(after_bind > 0);
        // engine-served queries overlay the session arena: it must not grow
        s.run("{ fst(p) | p <- db, snd(p) <= 20 }").unwrap();
        s.run("{ snd(p) | p <- db }").unwrap();
        assert_eq!(
            s.arena.len(),
            after_bind,
            "queries must reuse the session arena, not grow it"
        );
        assert!(s.engine_stats().engine >= 2);
        // rebinding refreshes the cache AND compacts the arena: the
        // superseded rows' nodes are dropped, so session memory tracks the
        // live bindings, not everything ever bound
        s.run("let db = { (9, 9) }").unwrap();
        assert_eq!(s.interned["db"].len(), 1);
        assert!(
            s.arena.len() < after_bind,
            "rebind must rebuild the arena from live bindings ({} >= {})",
            s.arena.len(),
            after_bind
        );
        let rebound = s.run("{ fst(p) | p <- db }").unwrap();
        assert_eq!(rebound.value, Value::int_set([9]));
        s.run("let db = 7").unwrap();
        assert!(!s.interned.contains_key("db"));
    }

    #[test]
    fn session_reports_types_of_query_results() {
        let mut s = Session::new();
        s.run("let design = <| 120, 80 |>").unwrap();
        let r = s.run("<| x | x <- normalize(design), x <= 100 |>").unwrap();
        assert_eq!(r.ty, Type::orset(Type::Int));
        assert_eq!(r.value, Value::int_orset([80]));
    }
}
