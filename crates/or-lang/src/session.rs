//! Stateful OrQL sessions: the engine behind the `orql` REPL.
//!
//! A [`Session`] holds named bindings (values with their types), evaluates
//! statements, and reports both the value and the inferred type of every
//! expression — like the OR-SML top level the paper describes.

use std::collections::HashMap;
use std::fmt;

use or_object::{Type, Value};

use crate::check::{infer_type, CheckError, TypeEnv};
use crate::interp::{interpret, Env, InterpError};
use crate::parser::{parse_statement, ParseError, Statement};

/// The result of evaluating one statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionResult {
    /// The computed value.
    pub value: Value,
    /// Its inferred type.
    pub ty: Type,
    /// The name the value was bound to, if the statement was a binding.
    pub bound: Option<String>,
}

/// Errors from session evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// Syntax error.
    Parse(ParseError),
    /// Type error.
    Check(CheckError),
    /// Runtime error.
    Runtime(InterpError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Parse(e) => write!(f, "{e}"),
            SessionError::Check(e) => write!(f, "{e}"),
            SessionError::Runtime(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ParseError> for SessionError {
    fn from(e: ParseError) -> Self {
        SessionError::Parse(e)
    }
}

impl From<CheckError> for SessionError {
    fn from(e: CheckError) -> Self {
        SessionError::Check(e)
    }
}

impl From<InterpError> for SessionError {
    fn from(e: InterpError) -> Self {
        SessionError::Runtime(e)
    }
}

/// A stateful OrQL session.
#[derive(Debug, Default)]
pub struct Session {
    values: Env,
    types: HashMap<String, Type>,
}

impl Session {
    /// Create an empty session.
    pub fn new() -> Session {
        Session::default()
    }

    /// Bind a pre-built value under a name (its type is inferred from the
    /// value; values containing nulls cannot be bound this way).
    pub fn bind(&mut self, name: impl Into<String>, value: Value) {
        let name = name.into();
        if let Ok(ty) = value.infer_type() {
            self.types.insert(name.clone(), ty);
        }
        self.values.insert(name, value);
    }

    /// The current bindings, sorted by name.
    pub fn bindings(&self) -> Vec<(String, Type)> {
        let mut out: Vec<(String, Type)> = self.types.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        out.sort();
        out
    }

    fn type_env(&self) -> TypeEnv {
        let mut env: TypeEnv = self.types.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        env.sort_by(|a, b| a.0.cmp(&b.0));
        env
    }

    /// Parse, type-check and evaluate one statement, updating the session
    /// state if it is a binding.
    pub fn run(&mut self, source: &str) -> Result<SessionResult, SessionError> {
        let statement = parse_statement(source)?;
        match statement {
            Statement::Expr(expr) => {
                let ty = infer_type(&expr, &self.type_env())?;
                let value = interpret(&expr, &self.values)?;
                Ok(SessionResult {
                    value,
                    ty,
                    bound: None,
                })
            }
            Statement::Bind(name, expr) => {
                let ty = infer_type(&expr, &self.type_env())?;
                let value = interpret(&expr, &self.values)?;
                self.types.insert(name.clone(), ty.clone());
                self.values.insert(name.clone(), value.clone());
                Ok(SessionResult {
                    value,
                    ty,
                    bound: Some(name),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bindings_persist_across_statements() {
        let mut s = Session::new();
        let r = s.run("let db = { <|1,2|>, <|3|> }").unwrap();
        assert_eq!(r.bound.as_deref(), Some("db"));
        assert_eq!(r.ty, Type::set(Type::orset(Type::Int)));
        let r = s.run("normalize(db)").unwrap();
        assert_eq!(r.ty, Type::orset(Type::set(Type::Int)));
        assert_eq!(
            r.value,
            Value::orset([Value::int_set([1, 3]), Value::int_set([2, 3])])
        );
        assert_eq!(s.bindings().len(), 1);
    }

    #[test]
    fn external_values_can_be_bound() {
        let mut s = Session::new();
        s.bind("x", Value::Int(41));
        assert_eq!(s.run("x + 1").unwrap().value, Value::Int(42));
    }

    #[test]
    fn errors_are_classified() {
        let mut s = Session::new();
        assert!(matches!(s.run("1 +"), Err(SessionError::Parse(_))));
        assert!(matches!(s.run("1 + true"), Err(SessionError::Check(_))));
        assert!(matches!(s.run("nosuchvar"), Err(SessionError::Check(_))));
    }

    #[test]
    fn session_reports_types_of_query_results() {
        let mut s = Session::new();
        s.run("let design = <| 120, 80 |>").unwrap();
        let r = s.run("<| x | x <- normalize(design), x <= 100 |>").unwrap();
        assert_eq!(r.ty, Type::orset(Type::Int));
        assert_eq!(r.value, Value::int_orset([80]));
    }
}
