//! Stateful OrQL sessions: the engine behind the `orql` REPL and the
//! `or-server` service.
//!
//! A [`Session`] holds named bindings (values with their types), evaluates
//! statements, and reports both the value and the inferred type of every
//! expression — like the OR-SML top level the paper describes.
//!
//! ## The core/shell split
//!
//! All binding state lives in a [`SessionCore`]: the value environment, the
//! type environment, and a frozen-arena [`Snapshot`] of every set-valued
//! binding's interned rows.  Evaluation on a core is **read-only** —
//! [`SessionCore::eval_statement`] takes `&self`, runs the statement to a
//! complete [`Evaluated`] outcome (value, type, routing decision), and
//! mutates nothing; [`SessionCore::commit`] then applies the outcome's
//! binding, if any.  This split is what makes sessions shareable: a server
//! can hand one `Arc<SessionCore>` to any number of concurrent readers
//! (each engine query chains a private overlay arena on the core's frozen
//! snapshot base), while writers clone-and-swap the core.  It is also what
//! makes error handling atomic — a statement that fails mid-evaluation has
//! by construction published nothing: no partial `let` binding, no partial
//! statistics, because both are applied only after evaluation succeeded.
//!
//! [`Session`] is the single-threaded shell over a core: it adds the
//! execution mode, the engine configuration, and the [`EngineStats`]
//! counters, and drives eval-then-commit per statement.
//!
//! ## Execution modes
//!
//! The session can route queries through three executors:
//!
//! * [`ExecMode::Interp`] (default) — the direct tree-walking interpreter;
//! * [`ExecMode::Engine`] — **engine-first**: compile the expression to a
//!   physical plan (either directly over the referenced relation bindings
//!   via [`crate::plan`], or through an or-NRA⁺ morphism and
//!   [`lower`](or_nra::optimize::lower)) and run it on the streaming
//!   parallel engine (`or-engine`) as the *primary* executor.  The
//!   interpreter runs only for statements outside the engine's fragment;
//!   [`Session::engine_stats`] reports how often each path ran and *why*
//!   the last fallbacks happened;
//! * [`ExecMode::EngineChecked`] — the engine result is additionally
//!   **cross-checked** against the interpreter (the pre-engine-first
//!   behaviour); a disagreement is reported as
//!   [`SessionError::EngineMismatch`] rather than returned as data.  This
//!   mode pays for both executions and exists for differential testing —
//!   the proptest suites drive sessions in this mode.
//!
//! The engine's fragment covers comprehensions over one *or several*
//! set-valued bindings (multi-generator comprehensions become multi-input
//! cartesian/join plans), `union`/`flatten` pipelines over them, dependent
//! generators (via the `Flatten` lowering), and per-row α-expansion
//! pipelines.  Or-monad statements (`normalize(db)` at the top level,
//! or-set comprehensions) fall back to the interpreter.
//!
//! ## The statement-shape plan cache
//!
//! Engine-served statements are compiled once per *shape*: the core keeps a
//! cache keyed by the normalized statement expression (the binding name of a
//! `let` is stripped, so `let out = q` and `q` share an entry) mapping to
//! the compiled — and, when verification is on, verified — physical plan
//! plus the input bindings it scans and their row types.  A repeated
//! statement skips planning, lowering, optimization and re-verification
//! entirely and goes straight to execution.  Hits are validated per lookup:
//! every input must still be a published relation with the row type the plan
//! was compiled against, so a rebind that changes a relation's record type
//! can never be served a stale plan (type-changing rebinds also eagerly
//! invalidate the affected entries).  Rebinds that keep the type *hit* the
//! cache and see the fresh rows — plans reference bindings by name and read
//! the snapshot at execution time.  The cache is shared across clones of a
//! core (an `Arc`), so a server's copy-on-write binding swaps keep it warm.
//! Hit/miss counts ride on each statement's [`Route`] and are tallied into
//! [`EngineStats`] only when the statement succeeds.
//!
//! ## Per-query budgets
//!
//! [`QueryBudget`] carries per-query admission limits — an α-expansion
//! denotation cap and a wall-clock budget — that tighten the session's
//! engine configuration for one statement ([`Session::run_budgeted`],
//! or the `budget` parameter of [`SessionCore::eval_statement`]).  Budgets
//! are enforced on the **engine** path (a zero time budget rejects an
//! engine-served statement at admission, before any row work); statements
//! the engine cannot serve fall back to the un-budgeted interpreter, so a
//! serving layer that needs hard limits should also bound what it accepts.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use or_engine::{EngineError, EngineInputs, ExecConfig, Executor};
use or_nra::physical::PhysicalPlan;
use or_nra::verify::{first_deny, verify_plan, VerifyConfig};
use or_object::snapshot::Snapshot;
use or_object::{Type, Value};

use crate::check::{infer_type, CheckError, TypeEnv};
use crate::compile::compile_query;
use crate::interp::{interpret_limited, Env, InterpError, InterpLimits};
use crate::parser::{parse_statement, ParseError, Statement};
use crate::plan::{plan_query, PlanError};

/// The result of evaluating one statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionResult {
    /// The computed value.
    pub value: Value,
    /// Its inferred type.
    pub ty: Type,
    /// The name the value was bound to, if the statement was a binding.
    pub bound: Option<String>,
}

/// Errors from session evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// Syntax error.
    Parse(ParseError),
    /// Type error.
    Check(CheckError),
    /// Runtime error.
    Runtime(InterpError),
    /// The physical engine failed on a query the lowering accepted —
    /// including a query rejected or cancelled by its [`QueryBudget`].
    Engine(String),
    /// The engine and the interpreter disagreed on a query result — a bug in
    /// one of them; the query and both answers are reported.  Only raised in
    /// [`ExecMode::EngineChecked`].
    EngineMismatch {
        /// The offending query source.
        query: String,
        /// What the engine produced.
        engine: String,
        /// What the interpreter produced.
        interp: String,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Parse(e) => write!(f, "{e}"),
            SessionError::Check(e) => write!(f, "{e}"),
            SessionError::Runtime(e) => write!(f, "{e}"),
            SessionError::Engine(e) => write!(f, "engine error: {e}"),
            SessionError::EngineMismatch {
                query,
                engine,
                interp,
            } => write!(
                f,
                "engine/interpreter mismatch on `{query}`: engine produced \
                 {engine}, interpreter produced {interp}"
            ),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ParseError> for SessionError {
    fn from(e: ParseError) -> Self {
        SessionError::Parse(e)
    }
}

impl From<CheckError> for SessionError {
    fn from(e: CheckError) -> Self {
        SessionError::Check(e)
    }
}

impl From<InterpError> for SessionError {
    fn from(e: InterpError) -> Self {
        SessionError::Runtime(e)
    }
}

/// How the session executes queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// The direct tree-walking interpreter (the default).
    #[default]
    Interp,
    /// Engine-first: run plannable queries on the streaming parallel engine
    /// and fall back to the interpreter only outside its fragment.
    Engine,
    /// Like [`ExecMode::Engine`], but every engine result is re-computed on
    /// the interpreter and compared — the differential-testing mode.
    EngineChecked,
}

/// Per-query admission limits, layered over the session's
/// [`ExecConfig`] for one statement.  Both limits **tighten** the config:
/// when the config already carries a budget, the smaller of the two wins.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryBudget {
    /// Cap on per-row α-expansion denotations
    /// ([`ExecConfig::or_budget`]); exceeding it fails the statement with
    /// [`SessionError::Engine`].
    pub denotations: Option<u64>,
    /// Wall-clock budget for the whole query
    /// ([`ExecConfig::time_budget`]).  Checked at admission — a zero
    /// budget deterministically rejects the statement before any row work
    /// — and at every batch boundary thereafter.
    pub time: Option<std::time::Duration>,
}

impl QueryBudget {
    /// No limits (the default).
    pub fn unlimited() -> QueryBudget {
        QueryBudget::default()
    }

    /// Cap the per-row denotation count.
    pub fn with_denotations(mut self, denotations: u64) -> QueryBudget {
        self.denotations = Some(denotations);
        self
    }

    /// Cap the wall-clock time.
    pub fn with_time(mut self, time: std::time::Duration) -> QueryBudget {
        self.time = Some(time);
        self
    }

    /// Tighten `config` with this budget's limits.
    fn apply_to(&self, mut config: ExecConfig) -> ExecConfig {
        if let Some(denotations) = self.denotations {
            config.or_budget = Some(match config.or_budget {
                Some(existing) => existing.min(denotations),
                None => denotations,
            });
        }
        if let Some(time) = self.time {
            config.time_budget = Some(match config.time_budget {
                Some(existing) => existing.min(time),
                None => time,
            });
        }
        config
    }
}

/// How a statement was executed — the routing decision
/// [`SessionCore::eval_statement`] reports and [`EngineStats::record`]
/// tallies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// Interpreter mode: no routing decision was made.
    Interp,
    /// Served by the physical engine.
    Engine {
        /// Whether the physical plan came from the statement-shape cache
        /// (skipping plan/lower/optimize, and verification when the entry
        /// was already verified under the same budget).
        cache_hit: bool,
        /// Batches the engine's columnar kernels served for this statement.
        columnar_batches: u64,
        /// Batches that fell back to the per-row scalar loop.
        scalar_fallback_batches: u64,
    },
    /// Outside the engine's fragment; the interpreter served it.  `reason`
    /// is the formatted diagnostic for *noteworthy* fallbacks (`None` for
    /// statements that merely look nothing like a relational query).
    Fallback {
        /// Diagnostic text, already tagged with the statement source.
        reason: Option<String>,
    },
}

impl Route {
    fn from_fallback(source: &str, fallback: PlanError) -> Route {
        Route::Fallback {
            reason: fallback
                .noteworthy
                .then(|| format!("`{source}`: {}", fallback.reason)),
        }
    }
}

/// A fully evaluated statement, not yet committed: the value and type to
/// report, the name to bind (for `let` statements), and the routing
/// decision to tally.  Produced read-only by
/// [`SessionCore::eval_statement`]; nothing becomes visible to later
/// statements until [`SessionCore::commit`] applies it.
#[derive(Debug, Clone)]
pub struct Evaluated {
    /// The computed value.
    pub value: Value,
    /// Its inferred type.
    pub ty: Type,
    /// The name to bind, if the statement was a `let`.
    pub bound: Option<String>,
    /// How the statement was executed.
    pub route: Route,
}

/// Counters and diagnostics for the engine routing (see
/// [`Session::engine_stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Statements executed on the physical engine.
    pub engine: u64,
    /// Statements that fell back to the interpreter (not in the plannable
    /// fragment).
    pub fallback: u64,
    /// The most recent *noteworthy* fallback reasons (oldest first, at most
    /// [`EngineStats::MAX_REASONS`]), each tagged with the statement source.
    /// Statements that merely look nothing like a relational query —
    /// literals, scalar expressions, bare binding echoes — count toward
    /// [`EngineStats::fallback`] but are not recorded here, so they cannot
    /// evict the reasons worth reading.
    pub fallback_reasons: Vec<String>,
    /// Engine-served statements whose plan came from the statement-shape
    /// cache.
    pub plan_cache_hits: u64,
    /// Engine-served statements that compiled (and cached) a fresh plan.
    pub plan_cache_misses: u64,
    /// Batches served by the columnar kernels across engine-served
    /// statements (see [`or_engine::ExecStats`]).
    pub columnar_batches: u64,
    /// Batches that fell back to the per-row scalar loop.
    pub scalar_fallback_batches: u64,
}

impl EngineStats {
    /// How many fallback reasons are retained.
    pub const MAX_REASONS: usize = 8;

    /// Tally one successfully evaluated statement's routing decision.
    /// Callers record only *after* the statement fully succeeded, so a
    /// failed statement never leaves a partial increment behind.
    pub fn record(&mut self, route: &Route) {
        match route {
            Route::Interp => {}
            Route::Engine {
                cache_hit,
                columnar_batches,
                scalar_fallback_batches,
            } => {
                self.engine += 1;
                self.plan_cache_hits += u64::from(*cache_hit);
                self.plan_cache_misses += u64::from(!*cache_hit);
                self.columnar_batches += columnar_batches;
                self.scalar_fallback_batches += scalar_fallback_batches;
            }
            Route::Fallback { reason } => {
                self.fallback += 1;
                if let Some(reason) = reason {
                    if self.fallback_reasons.len() >= EngineStats::MAX_REASONS {
                        self.fallback_reasons.remove(0);
                    }
                    self.fallback_reasons.push(reason.clone());
                }
            }
        }
    }
}

/// One statement shape's compiled plan, with the context needed to decide
/// whether it is still current: which bindings feed its scan slots and the
/// row types it was compiled (and possibly verified) against.
#[derive(Debug, Clone)]
struct CachedPlan {
    plan: PhysicalPlan,
    inputs: Vec<String>,
    row_types: Vec<Option<Type>>,
    /// The `or_budget` the plan was statically verified under, when it was
    /// — a hit under the same budget skips re-verification.
    verified_under: Option<Option<u64>>,
}

/// The statement-shape plan cache: normalized statement expression →
/// [`CachedPlan`].  Purely a memo — entries are validated against the
/// live bindings on every lookup, so dropping the whole cache is always
/// safe (and is the capacity-eviction strategy).
#[derive(Debug, Default)]
struct PlanCache {
    plans: Mutex<HashMap<String, CachedPlan>>,
}

impl PlanCache {
    /// How many statement shapes are retained before the cache is dropped
    /// wholesale and rebuilt from use.
    const CAPACITY: usize = 128;

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, CachedPlan>> {
        self.plans.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn get(&self, shape: &str) -> Option<CachedPlan> {
        self.lock().get(shape).cloned()
    }

    fn remove(&self, shape: &str) {
        self.lock().remove(shape);
    }

    fn insert(&self, shape: String, plan: CachedPlan) {
        let mut plans = self.lock();
        if plans.len() >= PlanCache::CAPACITY && !plans.contains_key(&shape) {
            plans.clear();
        }
        plans.insert(shape, plan);
    }

    fn mark_verified(&self, shape: &str, or_budget: Option<u64>) {
        if let Some(entry) = self.lock().get_mut(shape) {
            entry.verified_under = Some(or_budget);
        }
    }

    /// Drop every entry that scans `name` — the eager half of rebind
    /// invalidation (the per-lookup row-type check is the backstop).
    fn invalidate_referencing(&self, name: &str) {
        self.lock()
            .retain(|_, plan| !plan.inputs.iter().any(|input| input == name));
    }
}

/// The shareable heart of a session: bindings (values + types) and the
/// frozen-arena [`Snapshot`] holding every set-valued binding's interned
/// rows.
///
/// Evaluation is read-only (`&self`), so one core behind an `Arc` serves
/// any number of concurrent readers — each engine-served query chains a
/// private overlay arena on the snapshot's frozen base and drops it when
/// done.  Mutation is explicit and separate: [`SessionCore::commit`] (or
/// [`SessionCore::bind`]) publishes a binding, with the snapshot's
/// copy-on-write semantics protecting readers that hold an older clone.
#[derive(Debug, Clone, Default)]
pub struct SessionCore {
    values: Env,
    types: HashMap<String, Type>,
    /// Interned rows of every set-valued binding, against a frozen base
    /// arena shared by all engine-served queries.  Rebinds accrue garbage
    /// that the snapshot compacts once it rivals the live nodes, so
    /// [`SessionCore::arena_nodes`] stays proportional to the live
    /// bindings.
    snapshot: Snapshot,
    /// Statement-shape plan cache, shared (`Arc`) across clones of the
    /// core so copy-on-write binding swaps keep it warm.  A memo, not
    /// state: every lookup re-validates the entry against the live
    /// bindings, so it is exempt from the eval-then-commit atomicity
    /// story.
    plans: Arc<PlanCache>,
}

impl SessionCore {
    /// An empty core.
    pub fn new() -> SessionCore {
        SessionCore::default()
    }

    /// The current bindings, sorted by name.
    pub fn bindings(&self) -> Vec<(String, Type)> {
        let mut out: Vec<(String, Type)> = self
            .types
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        out.sort();
        out
    }

    /// Look up a binding's value.
    pub fn value(&self, name: &str) -> Option<&Value> {
        self.values.get(name)
    }

    /// The interned-relation snapshot behind the core.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// Total nodes in the session arena (live bindings plus rebind garbage
    /// not yet compacted).
    pub fn arena_nodes(&self) -> usize {
        self.snapshot.arena_nodes()
    }

    /// Bind a pre-built value under a name (its type is inferred from the
    /// value; values containing nulls cannot be bound this way).
    pub fn bind(&mut self, name: impl Into<String>, value: Value) {
        let name = name.into();
        if let Ok(ty) = value.infer_type() {
            if self.types.get(&name) != Some(&ty) {
                self.plans.invalidate_referencing(&name);
            }
            self.types.insert(name.clone(), ty);
        }
        self.publish(&name, &value);
        self.values.insert(name, value);
    }

    /// Publish a binding's rows into the snapshot (set values) or retract
    /// any stale publication (non-set values, which carry no interned
    /// rows).  The snapshot's node-accurate garbage accounting compacts the
    /// arena once rebind garbage rivals the live nodes.
    fn publish(&mut self, name: &str, value: &Value) {
        match value {
            Value::Set(rows) => self.snapshot.publish(name, rows.clone()),
            _ => {
                self.snapshot.retract(name);
            }
        }
    }

    /// Parse, type-check and evaluate one statement **without mutating
    /// anything** — bindings, snapshot and statistics are untouched no
    /// matter how the statement fares.  On success the returned
    /// [`Evaluated`] carries everything a later [`SessionCore::commit`]
    /// needs; on error the core is exactly as it was, so the same
    /// statement can be retried (the error-atomicity guarantee the
    /// concurrent server relies on).
    pub fn eval_statement(
        &self,
        source: &str,
        mode: ExecMode,
        config: ExecConfig,
        budget: QueryBudget,
    ) -> Result<Evaluated, SessionError> {
        let statement = parse_statement(source)?;
        let (expr, bound) = match statement {
            Statement::Expr(expr) => (expr, None),
            Statement::Bind(name, expr) => (expr, Some(name)),
        };
        let ty = infer_type(&expr, &self.type_env())?;
        let mut config = budget.apply_to(config);
        // Differential mode is the session's checked mode: the static plan
        // verifier gates every engine-served statement regardless of build
        // profile.
        if matches!(mode, ExecMode::EngineChecked) {
            config.verify = true;
        }
        // The interpreter honors the same admission budgets as the engine,
        // on every route it can serve: Interp mode, the Engine-mode
        // fallback, and the EngineChecked cross-check.  The deadline clock
        // starts here, per statement.
        let limits = InterpLimits::new(config.or_budget, config.time_budget);
        let (value, route) = match mode {
            ExecMode::Interp => (
                interpret_limited(&expr, &self.values, &limits)?,
                Route::Interp,
            ),
            // Engine-first: the engine is the serving path; the interpreter
            // runs only when the statement is outside the plannable fragment.
            ExecMode::Engine => match self.try_engine(&expr, config)? {
                Ok((value, route)) => (value, route),
                Err(fallback) => (
                    interpret_limited(&expr, &self.values, &limits)?,
                    Route::from_fallback(source, fallback),
                ),
            },
            // Differential mode: both executors run, answers must agree.
            ExecMode::EngineChecked => {
                let interpreted = interpret_limited(&expr, &self.values, &limits)?;
                match self.try_engine(&expr, config)? {
                    Ok((engine_value, route)) => {
                        if engine_value != interpreted {
                            return Err(SessionError::EngineMismatch {
                                query: source.to_string(),
                                engine: engine_value.to_string(),
                                interp: interpreted.to_string(),
                            });
                        }
                        (interpreted, route)
                    }
                    Err(fallback) => (interpreted, Route::from_fallback(source, fallback)),
                }
            }
        };
        Ok(Evaluated {
            value,
            ty,
            bound,
            route,
        })
    }

    /// Apply a successful evaluation's binding (if it was a `let`) and
    /// return the reportable result.  This is the *only* place statement
    /// evaluation mutates the core — callers that evaluated on a shared
    /// core decide here whether (and into which clone) to commit.
    pub fn commit(&mut self, evaluated: Evaluated) -> SessionResult {
        let Evaluated {
            value, ty, bound, ..
        } = evaluated;
        if let Some(name) = &bound {
            if self.types.get(name) != Some(&ty) {
                self.plans.invalidate_referencing(name);
            }
            self.types.insert(name.clone(), ty.clone());
            self.publish(name, &value);
            self.values.insert(name.clone(), value.clone());
        }
        SessionResult { value, ty, bound }
    }

    fn type_env(&self) -> TypeEnv {
        let mut env: TypeEnv = self
            .types
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        env.sort_by(|a, b| a.0.cmp(&b.0));
        env
    }

    /// The engine-level row type of a set-relation binding, when the
    /// session's type table knows it.
    fn row_type_of(&self, name: &str) -> Option<Type> {
        match self.types.get(name) {
            Some(Type::Set(elem)) => Some((**elem).clone()),
            _ => None,
        }
    }

    /// Schema-aware static verification of an engine plan against the
    /// session's type table (`ExecConfig::verify` gate).  The session is
    /// the one caller that knows both the plan *and* the bindings' row
    /// types, so the whole typed rule catalog engages here.  A
    /// `Deny`-severity violation is an outer error: the statement fails
    /// and — by eval-then-commit atomicity — publishes nothing.
    fn verify_typed(
        &self,
        plan: &PhysicalPlan,
        input_names: &[&str],
        config: &ExecConfig,
    ) -> Result<(), SessionError> {
        if !config.verify {
            return Ok(());
        }
        let vconfig = VerifyConfig {
            provided_inputs: Some(input_names.len()),
            row_types: input_names.iter().map(|n| self.row_type_of(n)).collect(),
            or_budget: config.or_budget,
            require_budgets: false,
            assume_consistent: false,
        };
        let violations = verify_plan(plan, &vconfig);
        match first_deny(&violations) {
            Some(v) => Err(SessionError::Engine(
                EngineError::from_violation(v).to_string(),
            )),
            None => Ok(()),
        }
    }

    /// The plan [`SessionCore::eval_statement`] would hand the engine for
    /// `source`, without executing anything — `None` when the statement is
    /// outside the plannable fragment (the interpreter would serve it).
    /// Mirrors [`try_engine`](SessionCore::eval_statement)'s two routes:
    /// the direct multi-input planner, then single-binding morphism
    /// compilation + lowering.  This is the entry point `or-analyze
    /// verify-plans` uses to check whole scripts statement by statement.
    pub fn plan_statement(&self, source: &str) -> Result<Option<PlannedStatement>, SessionError> {
        let statement = parse_statement(source)?;
        let expr = match statement {
            Statement::Expr(expr) => expr,
            Statement::Bind(_, expr) => expr,
        };
        infer_type(&expr, &self.type_env())?;
        if matches!(expr, crate::ast::Expr::Var(_)) {
            return Ok(None); // bare binding echo: environment lookup
        }
        if let Ok(pq) = plan_query(&expr) {
            if !pq.inputs.iter().all(|n| self.snapshot.get(n).is_some()) {
                return Ok(None); // some input is not a published relation
            }
            let row_types = pq.inputs.iter().map(|n| self.row_type_of(n)).collect();
            return Ok(Some(PlannedStatement {
                plan: pq.plan,
                inputs: pq.inputs,
                row_types,
            }));
        }
        let free = expr.free_vars();
        let [var] = free.as_slice() else {
            return Ok(None);
        };
        if self.snapshot.get(var).is_none() {
            return Ok(None);
        }
        let Ok(morphism) = compile_query(&expr, var) else {
            return Ok(None);
        };
        let Ok(plan) = or_nra::optimize::lower(&morphism) else {
            return Ok(None);
        };
        Ok(Some(PlannedStatement {
            row_types: vec![self.row_type_of(var)],
            inputs: vec![var.clone()],
            plan,
        }))
    }

    /// Whether a cached plan may serve under the current bindings: every
    /// input it scans must still be a published set relation with the row
    /// type the plan was compiled against.  (Row *contents* are free to
    /// differ — plans reference bindings by name and read the snapshot at
    /// execution time.)
    fn cached_plan_current(&self, cached: &CachedPlan) -> bool {
        cached.inputs.len() == cached.row_types.len()
            && cached
                .inputs
                .iter()
                .zip(&cached.row_types)
                .all(|(name, ty)| {
                    self.snapshot.get(name).is_some() && self.row_type_of(name) == *ty
                })
    }

    /// Verify (unless the entry is already verified under this budget),
    /// execute, and memoize one statement-shape plan.  On a miss the entry
    /// is inserted after verification passes, so a statement that later
    /// fails at admission (a budget, say) still leaves a valid memo for the
    /// retry.
    fn run_plan(
        &self,
        shape: &str,
        mut cached: CachedPlan,
        config: ExecConfig,
        cache_hit: bool,
    ) -> Result<(Value, Route), SessionError> {
        if config.verify && cached.verified_under != Some(config.or_budget) {
            let names: Vec<&str> = cached.inputs.iter().map(String::as_str).collect();
            self.verify_typed(&cached.plan, &names, &config)?;
            cached.verified_under = Some(config.or_budget);
            if cache_hit {
                self.plans.mark_verified(shape, config.or_budget);
            }
        }
        let mut inputs = EngineInputs::with_base(self.snapshot.arena().clone());
        for name in &cached.inputs {
            let published = self
                .snapshot
                .get(name)
                .expect("plan inputs were checked against the snapshot");
            inputs.push_interned(published.rows(), published.ids());
        }
        if !cache_hit {
            self.plans.insert(shape.to_string(), cached.clone());
        }
        match Executor::new(config).run_inputs_to_value_with_stats(&cached.plan, &inputs) {
            Ok((value, stats)) => Ok((
                value,
                Route::Engine {
                    cache_hit,
                    columnar_batches: stats.columnar_batches,
                    scalar_fallback_batches: stats.scalar_fallback_batches,
                },
            )),
            Err(e) => Err(SessionError::Engine(e.to_string())),
        }
    }

    /// Try to run `expr` on the physical engine.  The inner `Err(fallback)`
    /// means the statement is outside the engine's fragment (caller falls
    /// back to the interpreter and, for `noteworthy` errors, records the
    /// reason); the outer error is a genuine engine failure on a statement
    /// the planner accepted.
    fn try_engine(
        &self,
        expr: &crate::ast::Expr,
        config: ExecConfig,
    ) -> Result<Result<(Value, Route), PlanError>, SessionError> {
        let noteworthy = |reason: String| PlanError {
            reason,
            noteworthy: true,
        };
        // A bare binding reference is an O(1) environment lookup: running
        // the engine would clone the whole relation through a scan, re-sort
        // an already-canonical set, and count the echo as "engine-served".
        if matches!(expr, crate::ast::Expr::Var(_)) {
            return Ok(Err(PlanError {
                reason: "bare binding reference (environment lookup)".to_string(),
                noteworthy: false,
            }));
        }
        // 0. The statement-shape cache: a statement whose normalized
        //    expression was planned before — against inputs that still
        //    carry the same row types — skips planning, lowering and
        //    (same-budget) verification entirely.
        let shape = format!("{expr:?}");
        if let Some(cached) = self.plans.get(&shape) {
            if self.cached_plan_current(&cached) {
                return self.run_plan(&shape, cached, config, true).map(Ok);
            }
            self.plans.remove(&shape);
        }
        // 1. The direct route: comprehensions / union / flatten over one or
        //    several set-valued bindings become a multi-input plan.  Every
        //    referenced binding was published into the snapshot at bind
        //    time; the engine overlays a query arena on its frozen base and
        //    re-interns nothing.
        let plan_fallback = match plan_query(expr) {
            Ok(pq) => {
                for name in &pq.inputs {
                    match self.snapshot.get(name) {
                        Some(_) => {}
                        None if self.values.contains_key(name) => {
                            return Ok(Err(noteworthy(format!(
                                "binding `{name}` is not a set relation"
                            ))))
                        }
                        None => return Ok(Err(noteworthy(format!("unbound relation `{name}`")))),
                    }
                }
                let row_types = pq.inputs.iter().map(|n| self.row_type_of(n)).collect();
                let cached = CachedPlan {
                    plan: pq.plan,
                    inputs: pq.inputs,
                    row_types,
                    verified_under: None,
                };
                return self.run_plan(&shape, cached, config, false).map(Ok);
            }
            Err(e) => e,
        };
        // 2. The morphism route: a query over exactly one set-valued binding
        //    is compiled to a morphism and lowered; this covers shapes the
        //    direct planner does not (α-expansion pipelines, environment
        //    scaffolding).
        let free = expr.free_vars();
        let [var] = free.as_slice() else {
            return Ok(Err(plan_fallback));
        };
        if self.snapshot.get(var).is_none() {
            return Ok(Err(noteworthy(format!(
                "binding `{var}` is not a set relation"
            ))));
        }
        let morphism = match compile_query(expr, var) {
            Ok(m) => m,
            Err(e) => return Ok(Err(noteworthy(e.to_string()))),
        };
        let plan = match or_nra::optimize::lower(&morphism) {
            Ok(plan) => plan,
            // keep the lowering's own description of what stopped it
            Err(e) => return Ok(Err(noteworthy(e.to_string()))),
        };
        let cached = CachedPlan {
            row_types: vec![self.row_type_of(var)],
            inputs: vec![var.clone()],
            plan,
            verified_under: None,
        };
        self.run_plan(&shape, cached, config, false).map(Ok)
    }
}

/// The engine plan a statement would execute, with the session context a
/// static verifier needs: which binding feeds each scan slot and its row
/// type.  Produced by [`SessionCore::plan_statement`].
#[derive(Debug, Clone)]
pub struct PlannedStatement {
    /// The physical plan the engine would run.
    pub plan: PhysicalPlan,
    /// The binding name per scan slot.
    pub inputs: Vec<String>,
    /// The row type per scan slot, when the session's type table knows it.
    pub row_types: Vec<Option<Type>>,
}

/// A script run's failure: which line, which statement, what went wrong.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptError {
    /// 1-based line number of the failing statement.
    pub line: usize,
    /// The failing statement's source.
    pub source: String,
    /// The underlying session error.
    pub error: SessionError,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: `{}`: {}", self.line, self.source, self.error)
    }
}

impl std::error::Error for ScriptError {}

/// A stateful OrQL session: a [`SessionCore`] plus the execution mode,
/// engine configuration, and routing statistics.
///
/// Sessions own a long-lived interning arena (the core's snapshot): every
/// set-valued binding is interned **once**, when bound (`let` or
/// [`Session::bind`]), and each engine-served query overlays a throwaway
/// query arena on top — so repeated queries over the same bindings pay the
/// interning cost zero times after the first.
#[derive(Debug, Default)]
pub struct Session {
    core: SessionCore,
    mode: ExecMode,
    engine_config: ExecConfig,
    stats: EngineStats,
}

impl Session {
    /// Create an empty session.
    pub fn new() -> Session {
        Session::default()
    }

    /// Create a session that serves queries from the physical engine
    /// (engine-first; see [`ExecMode::Engine`]).
    pub fn with_engine(config: ExecConfig) -> Session {
        Session {
            mode: ExecMode::Engine,
            engine_config: config,
            ..Session::default()
        }
    }

    /// Create a session that runs the engine *and* cross-checks every result
    /// against the interpreter (see [`ExecMode::EngineChecked`]).
    pub fn with_engine_checked(config: ExecConfig) -> Session {
        Session {
            mode: ExecMode::EngineChecked,
            engine_config: config,
            ..Session::default()
        }
    }

    /// Wrap an existing core (for example one loaded by a server) in a
    /// session shell.
    pub fn from_core(core: SessionCore, mode: ExecMode, config: ExecConfig) -> Session {
        Session {
            core,
            mode,
            engine_config: config,
            stats: EngineStats::default(),
        }
    }

    /// The shareable core holding this session's bindings.
    pub fn core(&self) -> &SessionCore {
        &self.core
    }

    /// Consume the session, keeping its core (to freeze behind an `Arc`
    /// and serve, say).
    pub fn into_core(self) -> SessionCore {
        self.core
    }

    /// Switch the execution mode.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.mode = mode;
    }

    /// Set the worker count for subsequent engine-served queries.
    ///
    /// Workers are **pinned** ([`ExecConfig::with_pinned_workers`]): a
    /// session caller asking for `n` workers gets `n` worker threads even on
    /// inputs below the executor's [`ExecConfig::min_parallel_rows`]
    /// sequential-fallback threshold.  To keep the threshold heuristic
    /// instead, construct the session with
    /// [`Session::with_engine`]`(ExecConfig::parallel())`.
    pub fn set_engine_workers(&mut self, workers: usize) {
        self.engine_config = self.engine_config.with_pinned_workers(workers);
    }

    /// The engine configuration used for engine-served queries.
    pub fn engine_config(&self) -> ExecConfig {
        self.engine_config
    }

    /// The current execution mode.
    pub fn exec_mode(&self) -> ExecMode {
        self.mode
    }

    /// How many statements ran on the engine vs. the interpreter, and the
    /// most recent fallback reasons.
    pub fn engine_stats(&self) -> EngineStats {
        self.stats.clone()
    }

    /// Bind a pre-built value under a name (its type is inferred from the
    /// value; values containing nulls cannot be bound this way).
    pub fn bind(&mut self, name: impl Into<String>, value: Value) {
        self.core.bind(name, value);
    }

    /// The current bindings, sorted by name.
    pub fn bindings(&self) -> Vec<(String, Type)> {
        self.core.bindings()
    }

    /// Parse, type-check and evaluate one statement, updating the session
    /// state if it is a binding.
    pub fn run(&mut self, source: &str) -> Result<SessionResult, SessionError> {
        self.run_budgeted(source, QueryBudget::unlimited())
    }

    /// [`Session::run`] with per-statement admission limits.  Evaluation is
    /// atomic: on error, no binding is published and no statistic is
    /// incremented — the session is exactly as it was, and the same
    /// statement can be retried (with a different budget, say).
    pub fn run_budgeted(
        &mut self,
        source: &str,
        budget: QueryBudget,
    ) -> Result<SessionResult, SessionError> {
        let evaluated = self
            .core
            .eval_statement(source, self.mode, self.engine_config, budget)?;
        self.stats.record(&evaluated.route);
        Ok(self.core.commit(evaluated))
    }

    /// Run a multi-statement script: one statement per line, with blank
    /// lines and `--` comment lines skipped.  Statements run in order; the
    /// first failure stops the run and reports the 1-based line number and
    /// source of the failing statement (what `orql --script` prints before
    /// exiting non-zero).
    pub fn run_script(&mut self, script: &str) -> Result<Vec<SessionResult>, ScriptError> {
        let mut results = Vec::new();
        for (index, line) in script.lines().enumerate() {
            let statement = line.trim();
            if statement.is_empty() || statement.starts_with("--") {
                continue;
            }
            match self.run(statement) {
                Ok(result) => results.push(result),
                Err(error) => {
                    return Err(ScriptError {
                        line: index + 1,
                        source: statement.to_string(),
                        error,
                    })
                }
            }
        }
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn bindings_persist_across_statements() {
        let mut s = Session::new();
        let r = s.run("let db = { <|1,2|>, <|3|> }").unwrap();
        assert_eq!(r.bound.as_deref(), Some("db"));
        assert_eq!(r.ty, Type::set(Type::orset(Type::Int)));
        let r = s.run("normalize(db)").unwrap();
        assert_eq!(r.ty, Type::orset(Type::set(Type::Int)));
        assert_eq!(
            r.value,
            Value::orset([Value::int_set([1, 3]), Value::int_set([2, 3])])
        );
        assert_eq!(s.bindings().len(), 1);
    }

    #[test]
    fn external_values_can_be_bound() {
        let mut s = Session::new();
        s.bind("x", Value::Int(41));
        assert_eq!(s.run("x + 1").unwrap().value, Value::Int(42));
    }

    #[test]
    fn errors_are_classified() {
        let mut s = Session::new();
        assert!(matches!(s.run("1 +"), Err(SessionError::Parse(_))));
        assert!(matches!(s.run("1 + true"), Err(SessionError::Check(_))));
        assert!(matches!(s.run("nosuchvar"), Err(SessionError::Check(_))));
    }

    #[test]
    fn engine_mode_serves_set_queries_from_the_engine() {
        let mut s = Session::with_engine(ExecConfig::default().with_workers(2));
        assert_eq!(s.exec_mode(), ExecMode::Engine);
        s.run("let db = { (1, 10), (2, 20), (3, 30), (4, 40) }")
            .unwrap();
        let r = s.run("{ fst(p) | p <- db, snd(p) <= 20 }").unwrap();
        assert_eq!(r.value, Value::int_set([1, 2]));
        let stats = s.engine_stats();
        assert!(
            stats.engine >= 1,
            "query should have taken the engine path: {stats:?}"
        );
    }

    #[test]
    fn set_engine_workers_pins_the_worker_count() {
        let mut s = Session::with_engine(ExecConfig::default());
        s.set_engine_workers(4);
        let config = s.engine_config();
        assert_eq!(config.workers, 4);
        assert!(
            config.pin_workers,
            "session-requested workers must bypass the min_parallel_rows fallback"
        );
        // Pinned workers still serve small engine queries correctly.
        s.run("let db = { (1, 10), (2, 20), (3, 30), (4, 40) }")
            .unwrap();
        let r = s.run("{ fst(p) | p <- db, snd(p) <= 20 }").unwrap();
        assert_eq!(r.value, Value::int_set([1, 2]));
        assert!(s.engine_stats().engine >= 1);
    }

    #[test]
    fn engine_checked_mode_cross_checks_set_queries() {
        let mut s = Session::with_engine_checked(ExecConfig::default().with_workers(2));
        assert_eq!(s.exec_mode(), ExecMode::EngineChecked);
        s.run("let db = { (1, 10), (2, 20), (3, 30), (4, 40) }")
            .unwrap();
        let r = s.run("{ fst(p) | p <- db, snd(p) <= 20 }").unwrap();
        assert_eq!(r.value, Value::int_set([1, 2]));
        assert!(s.engine_stats().engine >= 1);
    }

    #[test]
    fn engine_mode_serves_multi_binding_comprehensions() {
        let mut s = Session::with_engine(ExecConfig::default().with_workers(2));
        s.run("let users = { (1, 10), (2, 20), (3, 10) }").unwrap();
        s.run("let groups = { (10, \"a\"), (20, \"b\") }").unwrap();
        let r = s
            .run("{ (fst(u), snd(g)) | u <- users, g <- groups, snd(u) == fst(g) }")
            .unwrap();
        assert_eq!(
            r.value,
            Value::set([
                Value::pair(Value::Int(1), Value::str("a")),
                Value::pair(Value::Int(2), Value::str("b")),
                Value::pair(Value::Int(3), Value::str("a")),
            ])
        );
        let stats = s.engine_stats();
        assert!(
            stats.engine >= 1,
            "multi-binding join should be engine-served: {stats:?}"
        );
    }

    #[test]
    fn engine_mode_serves_union_and_dependent_generators() {
        let mut s = Session::with_engine(ExecConfig::default());
        s.run("let a = { 1, 2, 3 }").unwrap();
        s.run("let b = { 3, 4 }").unwrap();
        let engine_before = s.engine_stats().engine;
        let r = s
            .run("union({ x | x <- a, x <= 2 }, { y | y <- b })")
            .unwrap();
        assert_eq!(r.value, Value::int_set([1, 2, 3, 4]));
        s.run("let nested = { {1, 2}, {2, 5} }").unwrap();
        let r = s.run("{ x | xs <- nested, x <- xs }").unwrap();
        assert_eq!(r.value, Value::int_set([1, 2, 5]));
        assert!(
            s.engine_stats().engine >= engine_before + 2,
            "union and dependent-generator statements should be engine-served: {:?}",
            s.engine_stats()
        );
    }

    #[test]
    fn engine_mode_falls_back_outside_the_fragment_with_reasons() {
        let mut s = Session::with_engine(ExecConfig::default());
        s.run("let db = { <|1,2|>, <|3|> }").unwrap();
        // or-monad pipeline: interpretable but not lowerable
        let r = s.run("normalize(db)").unwrap();
        assert_eq!(
            r.value,
            Value::orset([Value::int_set([1, 3]), Value::int_set([2, 3])])
        );
        let stats = s.engine_stats();
        assert!(stats.fallback >= 1);
        assert!(
            stats
                .fallback_reasons
                .iter()
                .any(|r| r.contains("normalize(db)")),
            "fallback reasons should name the statement: {stats:?}"
        );
    }

    #[test]
    fn fallback_reasons_are_capped_and_skip_trivial_statements() {
        let mut s = Session::with_engine(ExecConfig::default());
        s.run("let odb = <| 1, 2, 3 |>").unwrap();
        // the or-set literal binding is a fallback, but not a noteworthy one
        let baseline = s.engine_stats().fallback;
        assert!(s.engine_stats().fallback_reasons.is_empty());
        let n = EngineStats::MAX_REASONS as i64 + 5;
        for i in 0..n {
            // or-set comprehensions look like queries but are outside the
            // engine's set fragment: each records a reason
            s.run(&format!("<| x | x <- odb, {i} <= x |>")).unwrap();
        }
        // scalar statements keep counting without evicting the diagnostics
        s.run("1 + 1").unwrap();
        let stats = s.engine_stats();
        assert_eq!(stats.fallback, baseline + n as u64 + 1);
        assert_eq!(stats.fallback_reasons.len(), EngineStats::MAX_REASONS);
        // the retained reasons are the most recent noteworthy ones
        let last = stats.fallback_reasons.last().unwrap();
        assert!(last.contains(&format!("{} <= x", n - 1)), "{last}");
    }

    #[test]
    fn bare_binding_references_skip_the_engine() {
        let mut s = Session::with_engine(ExecConfig::default());
        s.run("let db = { 1, 2, 3 }").unwrap();
        let r = s.run("db").unwrap();
        assert_eq!(r.value, Value::int_set([1, 2, 3]));
        let stats = s.engine_stats();
        // the echo is an environment lookup, not an engine run, and leaves
        // no noteworthy reason behind
        assert_eq!(stats.engine, 0);
        assert!(stats.fallback_reasons.is_empty(), "{stats:?}");
    }

    #[test]
    fn engine_mode_agrees_with_interp_mode_on_a_session_script() {
        let script = [
            "let db = { (\"a\", 1), (\"b\", 2), (\"c\", 3) }",
            "{ snd(r) | r <- db }",
            "{ r | r <- db, snd(r) <= 2 }",
            "{ (snd(r), fst(r)) | r <- db, fst(r) != \"b\" }",
            "union({ snd(r) | r <- db }, { 9 })",
        ];
        let mut interp = Session::new();
        let mut engine = Session::with_engine(ExecConfig::default().with_workers(3));
        let mut checked = Session::with_engine_checked(ExecConfig::default().with_workers(3));
        for stmt in script {
            let a = interp.run(stmt).unwrap();
            let b = engine.run(stmt).unwrap();
            let c = checked.run(stmt).unwrap();
            assert_eq!(a.value, b.value, "disagreement on `{stmt}`");
            assert_eq!(a.value, c.value, "disagreement on `{stmt}` (checked)");
            assert_eq!(a.ty, b.ty);
        }
        assert!(engine.engine_stats().engine >= 3);
        assert!(checked.engine_stats().engine >= 3);
    }

    #[test]
    fn bindings_are_interned_once_and_reused_across_statements() {
        let mut s = Session::with_engine(ExecConfig::default());
        s.run("let db = { (1, 10), (2, 20), (3, 30) }").unwrap();
        assert!(
            s.core().snapshot().get("db").is_some(),
            "let publishes set bindings into the snapshot"
        );
        let after_bind = s.core().arena_nodes();
        assert!(after_bind > 0);
        // engine-served queries overlay the session arena: it must not grow
        s.run("{ fst(p) | p <- db, snd(p) <= 20 }").unwrap();
        s.run("{ snd(p) | p <- db }").unwrap();
        assert_eq!(
            s.core().arena_nodes(),
            after_bind,
            "queries must reuse the session arena, not grow it"
        );
        assert!(s.engine_stats().engine >= 2);
        // rebinding refreshes the published rows
        s.run("let db = { (9, 9) }").unwrap();
        assert_eq!(s.core().snapshot().get("db").unwrap().rows().len(), 1);
        let rebound = s.run("{ fst(p) | p <- db }").unwrap();
        assert_eq!(rebound.value, Value::int_set([9]));
        // a non-set rebind retracts the publication
        s.run("let db = 7").unwrap();
        assert!(s.core().snapshot().get("db").is_none());
    }

    /// The rebind-growth satellite: `let db = …` in a loop must not grow
    /// the session arena without bound.  The snapshot's node-accurate
    /// garbage accounting re-freezes once stranded nodes rival the live
    /// ones, so the high-water mark stays within a small multiple of one
    /// binding's size — not the sum over every rebind.
    #[test]
    fn repeated_rebinds_keep_the_session_arena_bounded() {
        let mut s = Session::with_engine(ExecConfig::default());
        s.run("let probe = { 1, 2, 3 }").unwrap();
        let mut high_water = 0;
        for round in 0..40i64 {
            // disjoint values each round, so every rebind strands the
            // previous round's nodes
            let base = 1_000 + round * 10_000;
            let rows: Vec<String> = (base..base + 1_500).map(|i| i.to_string()).collect();
            s.run(&format!("let db = {{ {} }}", rows.join(", ")))
                .unwrap();
            high_water = high_water.max(s.core().arena_nodes());
        }
        // live data is ~1 503 nodes; 40 uncompacted rebinds would be ~60k
        assert!(
            high_water < 3 * 4_096,
            "arena high-water {high_water} suggests rebind garbage is never compacted"
        );
        // the live bindings still serve correctly after compactions
        let r = s.run("{ x | x <- probe, 2 <= x }").unwrap();
        assert_eq!(r.value, Value::int_set([2, 3]));
        let r = s.run("{ x | x <- db, x <= 391004 }").unwrap();
        assert_eq!(
            r.value,
            Value::set((391_000..=391_004).map(Value::Int).collect::<Vec<_>>())
        );
    }

    /// The error-atomicity satellite: a statement that fails mid-evaluation
    /// (here: rejected by a zero time budget at engine admission) must
    /// leave no partial binding and no partial statistics, and the same
    /// statement must rerun successfully afterwards.
    #[test]
    fn failed_statement_leaves_session_uncorrupted() {
        let mut s = Session::with_engine(ExecConfig::default());
        s.run("let db = { (1, 10), (2, 20), (3, 30), (4, 40) }")
            .unwrap();
        let stats_before = s.engine_stats();
        let bindings_before = s.bindings();
        let nodes_before = s.core().arena_nodes();

        let statement = "let out = { fst(p) | p <- db, snd(p) <= 20 }";
        let err = s.run_budgeted(
            statement,
            QueryBudget::unlimited().with_time(Duration::ZERO),
        );
        match err {
            Err(SessionError::Engine(e)) => assert!(e.contains("time budget"), "{e}"),
            other => panic!("expected an engine budget error, got {other:?}"),
        }

        // no partial binding became visible …
        assert_eq!(s.bindings(), bindings_before);
        assert!(
            matches!(s.run("out"), Err(SessionError::Check(_))),
            "partial `let` binding must not be visible after a failed statement"
        );
        // … no partial statistics were recorded, and the arena is untouched
        assert_eq!(s.engine_stats(), stats_before);
        assert_eq!(s.core().arena_nodes(), nodes_before);

        // the very same statement reruns successfully without the budget
        let r = s.run(statement).unwrap();
        assert_eq!(r.value, Value::int_set([1, 2]));
        assert_eq!(r.bound.as_deref(), Some("out"));
        assert_eq!(s.run("out").unwrap().value, Value::int_set([1, 2]));
    }

    /// Budgets tighten, never loosen: a session config that already carries
    /// an or-budget keeps the smaller of the two.
    #[test]
    fn budgets_tighten_the_session_config() {
        let config = ExecConfig::default().with_or_budget(4);
        let tightened = QueryBudget::unlimited()
            .with_denotations(16)
            .apply_to(config);
        assert_eq!(tightened.or_budget, Some(4));
        let tightened = QueryBudget::unlimited()
            .with_denotations(2)
            .apply_to(config);
        assert_eq!(tightened.or_budget, Some(2));
        let timed = QueryBudget::unlimited()
            .with_time(Duration::from_millis(5))
            .apply_to(ExecConfig::default().with_time_budget(Duration::from_millis(50)));
        assert_eq!(timed.time_budget, Some(Duration::from_millis(5)));
    }

    /// One frozen core serves concurrent readers: evaluation is `&self`,
    /// so threads sharing an `Arc<SessionCore>` need no locking at all.
    #[test]
    fn shared_core_serves_concurrent_readers() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SessionCore>();

        let mut s = Session::with_engine(ExecConfig::default());
        s.run("let db = { (1, 10), (2, 20), (3, 30), (4, 40) }")
            .unwrap();
        let core = Arc::new(s.into_core());
        let config = ExecConfig::default().with_workers(2);
        let results: Vec<Value> = std::thread::scope(|scope| {
            (0..4)
                .map(|i| {
                    let core = Arc::clone(&core);
                    scope.spawn(move || {
                        let statement = format!("{{ fst(p) | p <- db, snd(p) <= {}0 }}", i + 1);
                        core.eval_statement(
                            &statement,
                            ExecMode::Engine,
                            config,
                            QueryBudget::unlimited(),
                        )
                        .unwrap()
                        .value
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for (i, value) in results.iter().enumerate() {
            assert_eq!(
                value,
                &Value::set((1..=i as i64 + 1).map(Value::Int).collect::<Vec<_>>())
            );
        }
    }

    /// The statement-shape plan cache: a repeated statement skips
    /// plan/lower/verify (observable as a cache hit), and the `let`-bound
    /// variant of the same expression shares the entry because the binding
    /// name is stripped from the shape key.
    #[test]
    fn repeated_statements_hit_the_plan_cache() {
        let mut s = Session::with_engine(ExecConfig::default());
        s.run("let db = { (1, 10), (2, 20), (3, 30) }").unwrap();
        let q = "{ fst(p) | p <- db, snd(p) <= 20 }";
        assert_eq!(s.run(q).unwrap().value, Value::int_set([1, 2]));
        assert_eq!(s.run(q).unwrap().value, Value::int_set([1, 2]));
        let r = s.run(&format!("let out = {q}")).unwrap();
        assert_eq!(r.value, Value::int_set([1, 2]));
        let stats = s.engine_stats();
        assert_eq!(stats.plan_cache_misses, 1, "{stats:?}");
        assert_eq!(stats.plan_cache_hits, 2, "{stats:?}");
        // the benchmark-shaped filter+project runs fully columnar
        assert!(stats.columnar_batches >= 1, "{stats:?}");
        assert_eq!(stats.scalar_fallback_batches, 0, "{stats:?}");
    }

    /// Rebinding an input with the *same* record type keeps the cache warm
    /// and serves the fresh rows — plans reference bindings by name and
    /// read the snapshot at execution time.
    #[test]
    fn plan_cache_survives_same_type_rebinds_and_serves_fresh_rows() {
        let mut s = Session::with_engine(ExecConfig::default());
        s.run("let db = { (1, 10), (2, 20) }").unwrap();
        let q = "{ fst(p) | p <- db, snd(p) <= 20 }";
        assert_eq!(s.run(q).unwrap().value, Value::int_set([1, 2]));
        s.run("let db = { (7, 10), (8, 99) }").unwrap();
        assert_eq!(s.run(q).unwrap().value, Value::int_set([7]));
        let stats = s.engine_stats();
        assert_eq!(stats.plan_cache_hits, 1, "{stats:?}");
        assert_eq!(stats.plan_cache_misses, 1, "{stats:?}");
    }

    /// The staleness guarantee: a rebind that *changes* a relation's record
    /// type must never be served the old plan — the statement recompiles
    /// (a miss), both eagerly (commit invalidates referencing entries) and
    /// as a backstop (every lookup re-checks the input row types).
    #[test]
    fn cached_plans_are_not_served_across_type_changing_rebinds() {
        let mut s = Session::with_engine(ExecConfig::default());
        s.run("let db = { (1, 10), (2, 20) }").unwrap();
        let q = "{ fst(p) | p <- db }";
        assert_eq!(s.run(q).unwrap().value, Value::int_set([1, 2]));
        // same statement, new record type: still well-typed, fresh plan
        s.run("let db = { ((5, 6), 7) }").unwrap();
        let r = s.run(q).unwrap();
        assert_eq!(
            r.value,
            Value::set([Value::pair(Value::Int(5), Value::Int(6))])
        );
        let stats = s.engine_stats();
        assert_eq!(stats.plan_cache_hits, 0, "{stats:?}");
        assert_eq!(stats.plan_cache_misses, 2, "{stats:?}");
        // the backstop alone also holds: plant the stale entry again via a
        // shared core clone, whose cache is the same Arc
        let clone = s.core().clone();
        assert!(Arc::ptr_eq(&clone.plans, &s.core().plans));
    }

    #[test]
    fn scripts_report_the_failing_line() {
        let mut s = Session::new();
        let script = "\
-- a comment, then a blank line

let db = { 1, 2, 3 }
{ x | x <- db, x <= 2 }
{ x | x <- nosuchbinding }
{ x | x <- db }";
        let err = s.run_script(script).unwrap_err();
        assert_eq!(err.line, 5);
        assert_eq!(err.source, "{ x | x <- nosuchbinding }");
        assert!(matches!(err.error, SessionError::Check(_)));
        // statements before the failure committed; the one after did not run
        assert_eq!(s.bindings().len(), 1);
        // a clean script returns every result
        let mut s = Session::new();
        let results = s.run_script("let a = { 1 }\n{ x | x <- a }").unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[1].value, Value::int_set([1]));
    }

    #[test]
    fn session_reports_types_of_query_results() {
        let mut s = Session::new();
        s.run("let design = <| 120, 80 |>").unwrap();
        let r = s.run("<| x | x <- normalize(design), x <= 100 |>").unwrap();
        assert_eq!(r.ty, Type::orset(Type::Int));
        assert_eq!(r.value, Value::int_orset([80]));
    }
}
