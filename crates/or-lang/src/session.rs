//! Stateful OrQL sessions: the engine behind the `orql` REPL.
//!
//! A [`Session`] holds named bindings (values with their types), evaluates
//! statements, and reports both the value and the inferred type of every
//! expression — like the OR-SML top level the paper describes.
//!
//! ## Execution modes
//!
//! The session can route queries through two executors:
//!
//! * [`ExecMode::Interp`] (default) — the direct tree-walking interpreter;
//! * [`ExecMode::Engine`] — compile the expression to an or-NRA⁺ morphism,
//!   [`lower`](or_nra::optimize::lower) it to a physical plan, and run it on
//!   the streaming parallel engine (`or-engine`).  Only queries over a
//!   single set-valued binding fall inside the lowerable fragment; anything
//!   else silently falls back to the interpreter ([`Session::engine_stats`]
//!   reports how often each path ran).  Every engine result is
//!   **cross-checked** against the interpreter; a disagreement is reported
//!   as [`SessionError::EngineMismatch`] rather than returned as data.

use std::collections::HashMap;
use std::fmt;

use or_engine::{run_morphism_on_value, EngineError, ExecConfig};
use or_object::{Type, Value};

use crate::check::{infer_type, CheckError, TypeEnv};
use crate::compile::compile_query;
use crate::interp::{interpret, Env, InterpError};
use crate::parser::{parse_statement, ParseError, Statement};

/// The result of evaluating one statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionResult {
    /// The computed value.
    pub value: Value,
    /// Its inferred type.
    pub ty: Type,
    /// The name the value was bound to, if the statement was a binding.
    pub bound: Option<String>,
}

/// Errors from session evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// Syntax error.
    Parse(ParseError),
    /// Type error.
    Check(CheckError),
    /// Runtime error.
    Runtime(InterpError),
    /// The physical engine failed on a query the lowering accepted.
    Engine(String),
    /// The engine and the interpreter disagreed on a query result — a bug in
    /// one of them; the query and both answers are reported.
    EngineMismatch {
        /// The offending query source.
        query: String,
        /// What the engine produced.
        engine: String,
        /// What the interpreter produced.
        interp: String,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Parse(e) => write!(f, "{e}"),
            SessionError::Check(e) => write!(f, "{e}"),
            SessionError::Runtime(e) => write!(f, "{e}"),
            SessionError::Engine(e) => write!(f, "engine error: {e}"),
            SessionError::EngineMismatch {
                query,
                engine,
                interp,
            } => write!(
                f,
                "engine/interpreter mismatch on `{query}`: engine produced \
                 {engine}, interpreter produced {interp}"
            ),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ParseError> for SessionError {
    fn from(e: ParseError) -> Self {
        SessionError::Parse(e)
    }
}

impl From<CheckError> for SessionError {
    fn from(e: CheckError) -> Self {
        SessionError::Check(e)
    }
}

impl From<InterpError> for SessionError {
    fn from(e: InterpError) -> Self {
        SessionError::Runtime(e)
    }
}

/// How the session executes queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// The direct tree-walking interpreter (the default).
    #[default]
    Interp,
    /// Route lowerable queries through the streaming parallel engine,
    /// cross-checking every result against the interpreter.
    Engine,
}

/// Counters for the engine routing (see [`Session::engine_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Statements executed (and verified) on the physical engine.
    pub engine: u64,
    /// Statements that fell back to the interpreter (not in the lowerable
    /// fragment, or not a single-set-binding query).
    pub fallback: u64,
}

/// A stateful OrQL session.
#[derive(Debug, Default)]
pub struct Session {
    values: Env,
    types: HashMap<String, Type>,
    mode: ExecMode,
    engine_config: ExecConfig,
    stats: EngineStats,
}

impl Session {
    /// Create an empty session.
    pub fn new() -> Session {
        Session::default()
    }

    /// Create a session that routes queries through the physical engine.
    pub fn with_engine(config: ExecConfig) -> Session {
        Session {
            mode: ExecMode::Engine,
            engine_config: config,
            ..Session::default()
        }
    }

    /// Switch the execution mode.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.mode = mode;
    }

    /// The current execution mode.
    pub fn exec_mode(&self) -> ExecMode {
        self.mode
    }

    /// How many statements ran on the engine vs. the interpreter.
    pub fn engine_stats(&self) -> EngineStats {
        self.stats
    }

    /// Bind a pre-built value under a name (its type is inferred from the
    /// value; values containing nulls cannot be bound this way).
    pub fn bind(&mut self, name: impl Into<String>, value: Value) {
        let name = name.into();
        if let Ok(ty) = value.infer_type() {
            self.types.insert(name.clone(), ty);
        }
        self.values.insert(name, value);
    }

    /// The current bindings, sorted by name.
    pub fn bindings(&self) -> Vec<(String, Type)> {
        let mut out: Vec<(String, Type)> = self
            .types
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        out.sort();
        out
    }

    fn type_env(&self) -> TypeEnv {
        let mut env: TypeEnv = self
            .types
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        env.sort_by(|a, b| a.0.cmp(&b.0));
        env
    }

    /// Parse, type-check and evaluate one statement, updating the session
    /// state if it is a binding.
    pub fn run(&mut self, source: &str) -> Result<SessionResult, SessionError> {
        let statement = parse_statement(source)?;
        match statement {
            Statement::Expr(expr) => {
                let ty = infer_type(&expr, &self.type_env())?;
                let value = self.evaluate(source, &expr)?;
                Ok(SessionResult {
                    value,
                    ty,
                    bound: None,
                })
            }
            Statement::Bind(name, expr) => {
                let ty = infer_type(&expr, &self.type_env())?;
                let value = self.evaluate(source, &expr)?;
                self.types.insert(name.clone(), ty.clone());
                self.values.insert(name.clone(), value.clone());
                Ok(SessionResult {
                    value,
                    ty,
                    bound: Some(name),
                })
            }
        }
    }

    /// Evaluate an expression under the current execution mode.
    ///
    /// In [`ExecMode::Engine`], lowerable queries additionally run on the
    /// physical engine, and the two answers are compared.
    fn evaluate(&mut self, source: &str, expr: &crate::ast::Expr) -> Result<Value, SessionError> {
        let interpreted = interpret(expr, &self.values)?;
        if self.mode == ExecMode::Engine {
            match self.try_engine(expr)? {
                Some(engine_value) => {
                    if engine_value != interpreted {
                        return Err(SessionError::EngineMismatch {
                            query: source.to_string(),
                            engine: engine_value.to_string(),
                            interp: interpreted.to_string(),
                        });
                    }
                    self.stats.engine += 1;
                }
                None => self.stats.fallback += 1,
            }
        }
        Ok(interpreted)
    }

    /// Try to run `expr` on the physical engine.  `Ok(None)` means the query
    /// is outside the engine's fragment (caller falls back); a genuine
    /// engine failure is an error.
    fn try_engine(&self, expr: &crate::ast::Expr) -> Result<Option<Value>, SessionError> {
        // The engine executes queries over a single set-valued binding.
        let free = expr.free_vars();
        let [var] = free.as_slice() else {
            return Ok(None);
        };
        let Some(input @ Value::Set(_)) = self.values.get(var) else {
            return Ok(None);
        };
        let Ok(morphism) = compile_query(expr, var) else {
            return Ok(None);
        };
        match run_morphism_on_value(input, &morphism, self.engine_config) {
            Ok(value) => Ok(Some(value)),
            Err(EngineError::Lower(_)) => Ok(None),
            Err(e) => Err(SessionError::Engine(e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bindings_persist_across_statements() {
        let mut s = Session::new();
        let r = s.run("let db = { <|1,2|>, <|3|> }").unwrap();
        assert_eq!(r.bound.as_deref(), Some("db"));
        assert_eq!(r.ty, Type::set(Type::orset(Type::Int)));
        let r = s.run("normalize(db)").unwrap();
        assert_eq!(r.ty, Type::orset(Type::set(Type::Int)));
        assert_eq!(
            r.value,
            Value::orset([Value::int_set([1, 3]), Value::int_set([2, 3])])
        );
        assert_eq!(s.bindings().len(), 1);
    }

    #[test]
    fn external_values_can_be_bound() {
        let mut s = Session::new();
        s.bind("x", Value::Int(41));
        assert_eq!(s.run("x + 1").unwrap().value, Value::Int(42));
    }

    #[test]
    fn errors_are_classified() {
        let mut s = Session::new();
        assert!(matches!(s.run("1 +"), Err(SessionError::Parse(_))));
        assert!(matches!(s.run("1 + true"), Err(SessionError::Check(_))));
        assert!(matches!(s.run("nosuchvar"), Err(SessionError::Check(_))));
    }

    #[test]
    fn engine_mode_executes_and_cross_checks_set_queries() {
        let mut s = Session::with_engine(ExecConfig::default().with_workers(2));
        assert_eq!(s.exec_mode(), ExecMode::Engine);
        s.run("let db = { (1, 10), (2, 20), (3, 30), (4, 40) }")
            .unwrap();
        let r = s.run("{ fst(p) | p <- db, snd(p) <= 20 }").unwrap();
        assert_eq!(r.value, Value::int_set([1, 2]));
        let stats = s.engine_stats();
        assert!(
            stats.engine >= 1,
            "query should have taken the engine path: {stats:?}"
        );
    }

    #[test]
    fn engine_mode_falls_back_outside_the_fragment() {
        let mut s = Session::with_engine(ExecConfig::default());
        s.run("let db = { <|1,2|>, <|3|> }").unwrap();
        // or-monad pipeline: interpretable but not lowerable
        let r = s.run("normalize(db)").unwrap();
        assert_eq!(
            r.value,
            Value::orset([Value::int_set([1, 3]), Value::int_set([2, 3])])
        );
        assert!(s.engine_stats().fallback >= 1);
    }

    #[test]
    fn engine_mode_agrees_with_interp_mode_on_a_session_script() {
        let script = [
            "let db = { (\"a\", 1), (\"b\", 2), (\"c\", 3) }",
            "{ snd(r) | r <- db }",
            "{ r | r <- db, snd(r) <= 2 }",
            "{ (snd(r), fst(r)) | r <- db, fst(r) != \"b\" }",
        ];
        let mut interp = Session::new();
        let mut engine = Session::with_engine(ExecConfig::default().with_workers(3));
        for stmt in script {
            let a = interp.run(stmt).unwrap();
            let b = engine.run(stmt).unwrap();
            assert_eq!(a.value, b.value, "disagreement on `{stmt}`");
            assert_eq!(a.ty, b.ty);
        }
        assert!(engine.engine_stats().engine >= 3);
    }

    #[test]
    fn session_reports_types_of_query_results() {
        let mut s = Session::new();
        s.run("let design = <| 120, 80 |>").unwrap();
        let r = s.run("<| x | x <- normalize(design), x <= 100 |>").unwrap();
        assert_eq!(r.ty, Type::orset(Type::Int));
        assert_eq!(r.value, Value::int_orset([80]));
    }
}
