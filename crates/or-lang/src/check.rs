//! The OrQL type checker.
//!
//! OrQL is explicitly first-order and monomorphic: every expression has an
//! object type of or-NRA (`bool`, `int`, `string`, `unit`, products, sets,
//! or-sets), and the checker computes it in a single syntax-directed pass.
//! Empty collection literals are given element type `unit`; contexts that
//! need a different element type must mention at least one element (the same
//! convention as the monomorphic checker of `or-nra`).

use std::fmt;

use or_object::Type;

use crate::ast::{BinOp, Builtin, Expr, Qualifier};

/// A type error in an OrQL expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckError {
    /// Description of the problem.
    pub message: String,
}

impl CheckError {
    fn new(message: impl Into<String>) -> CheckError {
        CheckError {
            message: message.into(),
        }
    }
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.message)
    }
}

impl std::error::Error for CheckError {}

/// A typing environment: variables in scope with their types (innermost
/// binding last).
pub type TypeEnv = Vec<(String, Type)>;

fn lookup(env: &TypeEnv, name: &str) -> Option<Type> {
    env.iter()
        .rev()
        .find(|(n, _)| n == name)
        .map(|(_, t)| t.clone())
}

/// Infer the type of an expression in the given environment.
pub fn infer_type(expr: &Expr, env: &TypeEnv) -> Result<Type, CheckError> {
    match expr {
        Expr::Unit => Ok(Type::Unit),
        Expr::Int(_) => Ok(Type::Int),
        Expr::Bool(_) => Ok(Type::Bool),
        Expr::Str(_) => Ok(Type::Str),
        Expr::Var(name) => {
            lookup(env, name).ok_or_else(|| CheckError::new(format!("unbound variable {name}")))
        }
        Expr::Pair(a, b) => Ok(Type::prod(infer_type(a, env)?, infer_type(b, env)?)),
        Expr::SetLit(items) => Ok(Type::set(collection_element_type(items, env)?)),
        Expr::OrSetLit(items) => Ok(Type::orset(collection_element_type(items, env)?)),
        Expr::SetComp { head, qualifiers } => {
            let inner_env = check_qualifiers(qualifiers, env, CollectionKind::Set)?;
            Ok(Type::set(infer_type(head, &inner_env)?))
        }
        Expr::OrSetComp { head, qualifiers } => {
            let inner_env = check_qualifiers(qualifiers, env, CollectionKind::OrSet)?;
            Ok(Type::orset(infer_type(head, &inner_env)?))
        }
        Expr::Let { name, value, body } => {
            let value_ty = infer_type(value, env)?;
            let mut inner = env.clone();
            inner.push((name.clone(), value_ty));
            infer_type(body, &inner)
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            expect(cond, env, &Type::Bool, "the condition of if")?;
            let t = infer_type(then_branch, env)?;
            let e = infer_type(else_branch, env)?;
            if t != e {
                return Err(CheckError::new(format!(
                    "branches of if have different types: {t} vs {e}"
                )));
            }
            Ok(t)
        }
        Expr::BinOp(op, a, b) => {
            let ta = infer_type(a, env)?;
            let tb = infer_type(b, env)?;
            match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul => {
                    require(&ta, &Type::Int, "arithmetic operand")?;
                    require(&tb, &Type::Int, "arithmetic operand")?;
                    Ok(Type::Int)
                }
                BinOp::Leq | BinOp::Lt | BinOp::Geq | BinOp::Gt => {
                    require(&ta, &Type::Int, "comparison operand")?;
                    require(&tb, &Type::Int, "comparison operand")?;
                    Ok(Type::Bool)
                }
                BinOp::And | BinOp::Or => {
                    require(&ta, &Type::Bool, "boolean operand")?;
                    require(&tb, &Type::Bool, "boolean operand")?;
                    Ok(Type::Bool)
                }
                BinOp::Eq | BinOp::Neq => {
                    if ta != tb {
                        return Err(CheckError::new(format!(
                            "cannot compare values of different types {ta} and {tb}"
                        )));
                    }
                    Ok(Type::Bool)
                }
            }
        }
        Expr::Not(a) => {
            expect(a, env, &Type::Bool, "the operand of !")?;
            Ok(Type::Bool)
        }
        Expr::Call(builtin, args) => infer_call(*builtin, args, env),
    }
}

/// Check an expression against an expected type.
pub fn check_type(expr: &Expr, env: &TypeEnv, expected: &Type) -> Result<(), CheckError> {
    let actual = infer_type(expr, env)?;
    if &actual == expected {
        Ok(())
    } else {
        Err(CheckError::new(format!(
            "expected {expected}, found {actual} in {expr}"
        )))
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum CollectionKind {
    Set,
    OrSet,
}

fn check_qualifiers(
    qualifiers: &[Qualifier],
    env: &TypeEnv,
    kind: CollectionKind,
) -> Result<TypeEnv, CheckError> {
    let mut inner = env.clone();
    for q in qualifiers {
        match q {
            Qualifier::Generator(name, source) => {
                let source_ty = infer_type(source, &inner)?;
                let elem = match (kind, &source_ty) {
                    (CollectionKind::Set, Type::Set(t)) => (**t).clone(),
                    (CollectionKind::OrSet, Type::OrSet(t)) => (**t).clone(),
                    (CollectionKind::Set, other) => {
                        return Err(CheckError::new(format!(
                            "a set comprehension generator must range over a set, found {other}"
                        )))
                    }
                    (CollectionKind::OrSet, other) => {
                        return Err(CheckError::new(format!(
                            "an or-set comprehension generator must range over an or-set, \
                             found {other}"
                        )))
                    }
                };
                inner.push((name.clone(), elem));
            }
            Qualifier::Guard(g) => {
                expect(g, &inner, &Type::Bool, "a comprehension guard")?;
            }
        }
    }
    Ok(inner)
}

fn collection_element_type(items: &[Expr], env: &TypeEnv) -> Result<Type, CheckError> {
    match items.first() {
        None => Ok(Type::Unit),
        Some(first) => {
            let t = infer_type(first, env)?;
            for item in &items[1..] {
                let other = infer_type(item, env)?;
                if other != t {
                    return Err(CheckError::new(format!(
                        "heterogeneous collection literal: {t} vs {other}"
                    )));
                }
            }
            Ok(t)
        }
    }
}

fn require(actual: &Type, expected: &Type, what: &str) -> Result<(), CheckError> {
    if actual == expected {
        Ok(())
    } else {
        Err(CheckError::new(format!(
            "{what} must have type {expected}, found {actual}"
        )))
    }
}

fn expect(expr: &Expr, env: &TypeEnv, expected: &Type, what: &str) -> Result<(), CheckError> {
    let actual = infer_type(expr, env)?;
    require(&actual, expected, what)
}

fn infer_call(builtin: Builtin, args: &[Expr], env: &TypeEnv) -> Result<Type, CheckError> {
    let arg = |i: usize| infer_type(&args[i], env);
    let set_elem = |t: &Type, what: &str| -> Result<Type, CheckError> {
        match t {
            Type::Set(inner) => Ok((**inner).clone()),
            other => Err(CheckError::new(format!(
                "{what} expects a set, found {other}"
            ))),
        }
    };
    let orset_elem = |t: &Type, what: &str| -> Result<Type, CheckError> {
        match t {
            Type::OrSet(inner) => Ok((**inner).clone()),
            other => Err(CheckError::new(format!(
                "{what} expects an or-set, found {other}"
            ))),
        }
    };
    match builtin {
        Builtin::Normalize => Ok(arg(0)?.normal_form()),
        Builtin::Alpha => {
            let elem = set_elem(&arg(0)?, "alpha")?;
            let inner = orset_elem(&elem, "alpha")?;
            Ok(Type::orset(Type::set(inner)))
        }
        Builtin::Flatten => {
            let elem = set_elem(&arg(0)?, "flatten")?;
            let inner = set_elem(&elem, "flatten")?;
            Ok(Type::set(inner))
        }
        Builtin::OrFlatten => {
            let elem = orset_elem(&arg(0)?, "orflatten")?;
            let inner = orset_elem(&elem, "orflatten")?;
            Ok(Type::orset(inner))
        }
        Builtin::Union | Builtin::Intersect | Builtin::Difference => {
            let a = arg(0)?;
            let b = arg(1)?;
            set_elem(&a, builtin.name())?;
            if a != b {
                return Err(CheckError::new(format!(
                    "{} expects two sets of the same type, found {a} and {b}",
                    builtin.name()
                )));
            }
            Ok(a)
        }
        Builtin::OrUnion => {
            let a = arg(0)?;
            let b = arg(1)?;
            orset_elem(&a, "orunion")?;
            if a != b {
                return Err(CheckError::new(format!(
                    "orunion expects two or-sets of the same type, found {a} and {b}"
                )));
            }
            Ok(a)
        }
        Builtin::Member => {
            let x = arg(0)?;
            let s = arg(1)?;
            let elem = set_elem(&s, "member")?;
            if x != elem {
                return Err(CheckError::new(format!(
                    "member: element type {x} does not match set element type {elem}"
                )));
            }
            Ok(Type::Bool)
        }
        Builtin::OrMember => {
            let x = arg(0)?;
            let s = arg(1)?;
            let elem = orset_elem(&s, "ormember")?;
            if x != elem {
                return Err(CheckError::new(format!(
                    "ormember: element type {x} does not match or-set element type {elem}"
                )));
            }
            Ok(Type::Bool)
        }
        Builtin::Subset => {
            let a = arg(0)?;
            let b = arg(1)?;
            set_elem(&a, "subset")?;
            if a != b {
                return Err(CheckError::new(format!(
                    "subset expects two sets of the same type, found {a} and {b}"
                )));
            }
            Ok(Type::Bool)
        }
        Builtin::Powerset => {
            let elem = set_elem(&arg(0)?, "powerset")?;
            Ok(Type::set(Type::set(elem)))
        }
        Builtin::ToSet => Ok(Type::set(orset_elem(&arg(0)?, "toset")?)),
        Builtin::ToOrSet => Ok(Type::orset(set_elem(&arg(0)?, "toorset")?)),
        Builtin::IsEmpty => {
            set_elem(&arg(0)?, "isempty")?;
            Ok(Type::Bool)
        }
        Builtin::OrIsEmpty => {
            orset_elem(&arg(0)?, "orisempty")?;
            Ok(Type::Bool)
        }
        Builtin::Fst => match arg(0)? {
            Type::Prod(a, _) => Ok(*a),
            other => Err(CheckError::new(format!(
                "fst expects a pair, found {other}"
            ))),
        },
        Builtin::Snd => match arg(0)? {
            Type::Prod(_, b) => Ok(*b),
            other => Err(CheckError::new(format!(
                "snd expects a pair, found {other}"
            ))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn ty(src: &str, env: &TypeEnv) -> Result<Type, CheckError> {
        infer_type(&parse(src).unwrap(), env)
    }

    #[test]
    fn literals_and_operators() {
        let env = TypeEnv::new();
        assert_eq!(ty("1 + 2 * 3", &env).unwrap(), Type::Int);
        assert_eq!(ty("1 <= 2 && true", &env).unwrap(), Type::Bool);
        assert_eq!(
            ty("(1, \"a\")", &env).unwrap(),
            Type::prod(Type::Int, Type::Str)
        );
        assert_eq!(ty("{1, 2}", &env).unwrap(), Type::set(Type::Int));
        assert_eq!(ty("<|1, 2|>", &env).unwrap(), Type::orset(Type::Int));
        assert!(ty("1 + true", &env).is_err());
        assert!(ty("{1, true}", &env).is_err());
    }

    #[test]
    fn comprehensions_bind_variables() {
        let env = TypeEnv::new();
        assert_eq!(
            ty("{ x + 1 | x <- {1,2,3}, x <= 2 }", &env).unwrap(),
            Type::set(Type::Int)
        );
        assert_eq!(
            ty("<| (x, y) | x <- <|1,2|>, y <- <|true|> |>", &env).unwrap(),
            Type::orset(Type::prod(Type::Int, Type::Bool))
        );
        // a set generator inside an or-set comprehension is rejected
        assert!(ty("<| x | x <- {1,2} |>", &env).is_err());
        assert!(ty("{ x | x <- <|1,2|> }", &env).is_err());
    }

    #[test]
    fn normalize_produces_the_normal_form_type() {
        let env = vec![("db".to_string(), Type::set(Type::orset(Type::Int)))];
        assert_eq!(
            ty("normalize(db)", &env).unwrap(),
            Type::orset(Type::set(Type::Int))
        );
        assert_eq!(
            ty("<| x | x <- normalize(db), isempty(x) |>", &env).unwrap(),
            Type::orset(Type::set(Type::Int))
        );
    }

    #[test]
    fn builtins_are_checked() {
        let env = TypeEnv::new();
        assert_eq!(ty("union({1}, {2})", &env).unwrap(), Type::set(Type::Int));
        assert_eq!(ty("member(1, {1,2})", &env).unwrap(), Type::Bool);
        assert_eq!(
            ty("alpha({<|1,2|>, <|3|>})", &env).unwrap(),
            Type::orset(Type::set(Type::Int))
        );
        assert_eq!(ty("fst((1, true))", &env).unwrap(), Type::Int);
        assert!(ty("member(true, {1})", &env).is_err());
        assert!(ty("union({1}, <|2|>)", &env).is_err());
        assert!(ty("flatten({1})", &env).is_err());
    }

    #[test]
    fn let_if_and_scope() {
        let env = TypeEnv::new();
        assert_eq!(
            ty("let s = {1,2} in if member(1, s) then 1 else 0", &env).unwrap(),
            Type::Int
        );
        assert!(ty("if 1 then 2 else 3", &env).is_err());
        assert!(ty("if true then 2 else false", &env).is_err());
        assert!(ty("x + 1", &env).is_err());
    }

    #[test]
    fn empty_collections_default_to_unit_elements() {
        let env = TypeEnv::new();
        assert_eq!(ty("{}", &env).unwrap(), Type::set(Type::Unit));
        assert_eq!(ty("<| |>", &env).unwrap(), Type::orset(Type::Unit));
    }
}
