//! End-to-end smoke test: a real `Server` on an ephemeral port, concurrent
//! HTTP clients driving `/query`, `/stats`, and `/healthz`, then a graceful
//! `POST /shutdown` that must let `serve()` return cleanly.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use or_server::{Json, Server, ServerConfig};

/// A deliberately tiny HTTP/1.1 client: send one request, read the whole
/// response (the server closes the connection), return (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("recv");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn query_body(db: &str, statement: &str) -> String {
    Json::obj([("db", Json::str(db)), ("statement", Json::str(statement))]).to_string()
}

#[test]
fn concurrent_clients_then_graceful_shutdown() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    server
        .load_db(
            "example",
            "let people = { (1, 10), (2, 20), (3, 30), (4, 40) }\n\
             let ages = { snd(p) | p <- people }",
        )
        .expect("load example db");
    let addr = server.local_addr().expect("local addr");
    let serving = std::thread::spawn(move || server.serve());

    // several client threads hammer all three read endpoints concurrently,
    // sharing the one frozen snapshot
    let failures = Arc::new(std::sync::Mutex::new(Vec::<String>::new()));
    let clients: Vec<_> = (0..6)
        .map(|i| {
            let failures = Arc::clone(&failures);
            std::thread::spawn(move || {
                for round in 0..5 {
                    let (status, body) = match (i + round) % 3 {
                        0 => http(
                            addr,
                            "POST",
                            "/query",
                            &query_body("example", "{ fst(p) | p <- people, snd(p) <= 30 }"),
                        ),
                        1 => http(addr, "GET", "/stats", ""),
                        _ => http(addr, "GET", "/healthz", ""),
                    };
                    if status != 200 {
                        failures
                            .lock()
                            .unwrap()
                            .push(format!("client {i} round {round}: {status} {body}"));
                    } else if (i + round) % 3 == 0 && !body.contains("{1, 2, 3}") {
                        failures
                            .lock()
                            .unwrap()
                            .push(format!("client {i} round {round}: bad value: {body}"));
                    }
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }
    assert!(
        failures.lock().unwrap().is_empty(),
        "{:?}",
        failures.lock().unwrap()
    );

    // a write, visible to subsequent readers
    let (status, body) = http(
        addr,
        "POST",
        "/query",
        &query_body("example", "let adults = { p | p <- people, snd(p) >= 20 }"),
    );
    assert_eq!(status, 200, "{body}");
    let (status, body) = http(
        addr,
        "POST",
        "/query",
        &query_body("example", "{ fst(p) | p <- adults }"),
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("{2, 3, 4}"), "{body}");

    // budget admission control over the wire
    let over_budget = r#"{"db": "example", "statement": "{ p | p <- people }",
                          "budget": {"time_ms": 0}}"#;
    let (status, body) = http(addr, "POST", "/query", over_budget);
    assert_eq!(status, 422, "{body}");
    assert!(body.contains("time budget"), "{body}");

    // stats reflect the traffic
    let (status, body) = http(addr, "GET", "/stats", "");
    assert_eq!(status, 200, "{body}");
    let parsed = Json::parse(&body).expect("stats json");
    let example = parsed
        .get("dbs")
        .and_then(|d| d.get("example"))
        .expect("example stats");
    assert!(example.get("queries").and_then(Json::as_u64).unwrap() >= 12);
    assert_eq!(example.get("errors").and_then(Json::as_u64), Some(1));
    assert_eq!(example.get("relations").and_then(Json::as_u64), Some(3));

    // unknown endpoints and unknown databases are client errors
    let (status, _) = http(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "POST", "/query", &query_body("nope", "1"));
    assert_eq!(status, 404);

    // graceful shutdown: the endpoint acknowledges, serve() returns Ok
    let (status, body) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("shutting down"), "{body}");
    serving
        .join()
        .expect("serve thread")
        .expect("serve exits cleanly");
    // and the listener is really gone (give the OS a beat to close it)
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener still accepting after shutdown"
    );
}
