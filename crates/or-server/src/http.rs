//! A minimal HTTP/1.1 server-side codec: parse one request from a stream,
//! write one response, close.  One request per connection keeps the
//! concurrency story trivial (no keep-alive pipelining state) — clients
//! that care about latency amortize elsewhere, and the thread pool absorbs
//! the connection churn.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// A parsed HTTP request: method, path, body.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// The request target, query string stripped.
    pub path: String,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: String,
}

/// Largest accepted request body; bigger requests are rejected rather than
/// buffered (a statement that big is not a query, it is a mistake).
pub const MAX_BODY_BYTES: usize = 4 << 20;

/// Read and parse one request from the stream.  `Err` means the connection
/// is unusable (malformed request line, oversized body, IO error) and
/// should just be dropped after a `400`.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m.to_string(), t.to_string()),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "malformed request line",
            ))
        }
    };
    let path = target
        .split_once('?')
        .map(|(p, _)| p.to_string())
        .unwrap_or(target);

    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                })?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "request body is not UTF-8"))?;
    Ok(Request { method, path, body })
}

/// Write one `application/json` response and flush.  `Connection: close`
/// matches the one-request-per-connection policy.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        _ => "Internal Server Error",
    };
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: application/json\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\
         \r\n\
         {body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn parses_a_posted_body_and_writes_a_response() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let body = r#"{"db":"d"}"#;
            let request = format!(
                "POST /query?trace=1 HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
                body.len(),
                body
            );
            stream.write_all(request.as_bytes()).unwrap();
            let mut response = String::new();
            stream.read_to_string(&mut response).unwrap();
            response
        });
        let (mut stream, _) = listener.accept().unwrap();
        let request = read_request(&mut stream).unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/query");
        assert_eq!(request.body, r#"{"db":"d"}"#);
        write_response(&mut stream, 200, r#"{"ok":true}"#).unwrap();
        drop(stream);
        let response = client.join().unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.ends_with(r#"{"ok":true}"#), "{response}");
    }
}
