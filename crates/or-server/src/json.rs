//! A minimal JSON encoder/decoder — exactly the subset the server's
//! request/response bodies need, with no dependencies (the build
//! environment is offline, so `serde` is not an option).
//!
//! Decoding accepts any standard JSON document (objects, arrays, strings
//! with escapes, integer and fractional numbers, `true`/`false`/`null`).
//! Encoding is driven through [`Json`] constructors plus its `Display`
//! impl (`to_string()`); object member order is preserved, strings are
//! escaped per RFC 8259.

use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; integers survive up to `i64` precision via
    /// [`Json::as_u64`]-style accessors.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, member order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value.
    pub fn int(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parse a JSON document (must consume the whole input).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(JsonError::trailing(parser.pos));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(members) => {
                write!(f, "{{")?;
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, key)?;
                    write!(f, ":{value}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// A JSON parse error with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl JsonError {
    fn new(message: impl Into<String>, at: usize) -> JsonError {
        JsonError {
            message: message.into(),
            at,
        }
    }

    fn trailing(at: usize) -> JsonError {
        JsonError::new("trailing characters after the document", at)
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(
                format!("expected `{}`", byte as char),
                self.pos,
            ))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(JsonError::new(format!("expected `{text}`"), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(JsonError::new("expected a JSON value", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(JsonError::new("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::new("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(JsonError::new("unterminated string", self.pos));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(escape) = self.peek() else {
                        return Err(JsonError::new("unterminated escape", self.pos));
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| JsonError::new("invalid \\u escape", self.pos))?;
                            self.pos += 4;
                            // surrogate pairs: a high surrogate must be
                            // followed by `\uDC00..DFFF`
                            let code = if (0xD800..0xDC00).contains(&hex) {
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(JsonError::new("lone high surrogate", self.pos));
                                }
                                self.pos += 2;
                                let low = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .ok_or_else(|| {
                                        JsonError::new("invalid \\u escape", self.pos)
                                    })?;
                                self.pos += 4;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(JsonError::new("invalid low surrogate", self.pos));
                                }
                                0x10000 + ((hex - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                hex
                            };
                            out.push(
                                char::from_u32(code).ok_or_else(|| {
                                    JsonError::new("invalid code point", self.pos)
                                })?,
                            );
                        }
                        _ => return Err(JsonError::new("unknown escape", self.pos)),
                    }
                }
                _ => {
                    // copy the full UTF-8 sequence starting here
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| JsonError::new("invalid UTF-8", start))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| JsonError::new("invalid number", start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_request_body() {
        let body = r#"{"db": "example", "statement": "{ x | x <- db, x <= 2 }",
                       "budget": {"denotations": 100, "time_ms": 250}}"#;
        let parsed = Json::parse(body).unwrap();
        assert_eq!(parsed.get("db").unwrap().as_str(), Some("example"));
        assert_eq!(
            parsed.get("statement").unwrap().as_str(),
            Some("{ x | x <- db, x <= 2 }")
        );
        let budget = parsed.get("budget").unwrap();
        assert_eq!(budget.get("denotations").unwrap().as_u64(), Some(100));
        assert_eq!(budget.get("time_ms").unwrap().as_u64(), Some(250));
        // re-encode → re-parse is stable
        assert_eq!(Json::parse(&parsed.to_string()).unwrap(), parsed);
    }

    #[test]
    fn escapes_survive_the_round_trip() {
        let original = Json::obj([("s", Json::str("a \"quoted\"\nline\twith \\ and ünïcode"))]);
        let reparsed = Json::parse(&original.to_string()).unwrap();
        assert_eq!(reparsed, original);
        // escaped input decodes
        let decoded = Json::parse(r#""Aé😀""#).unwrap();
        assert_eq!(decoded.as_str(), Some("Aé😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\" 1}",
            "[1,]",
            "\"unterminated",
            "nul",
            "{}extra",
        ] {
            assert!(Json::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn arrays_booleans_and_null_parse() {
        let parsed = Json::parse(r#"[true, false, null, -2.5, []]"#).unwrap();
        let Json::Arr(items) = &parsed else {
            panic!("expected array")
        };
        assert_eq!(items.len(), 5);
        assert_eq!(items[0].as_bool(), Some(true));
        assert_eq!(items[3], Json::Num(-2.5));
    }
}
