//! The or-database service: named databases resident as frozen
//! [`SessionCore`] snapshots, served over HTTP by a small thread pool.
//!
//! ## Concurrency model
//!
//! Each database is one `RwLock<Arc<SessionCore>>` plus a writer mutex:
//!
//! * **Reads** (expression statements) clone the `Arc` out of the lock —
//!   held for nanoseconds — and then evaluate entirely lock-free:
//!   [`SessionCore::eval_statement`] takes `&self`, and every engine-served
//!   query chains a private overlay arena on the core's frozen snapshot
//!   base.  Any number of queries run concurrently against one snapshot.
//! * **Writes** (`let` statements) serialize on the writer mutex, evaluate
//!   against the latest core, commit into a *clone* of it, and swap the
//!   `Arc` — copy-on-write at session granularity, with the snapshot layer
//!   sharing the interned relation rows underneath.  In-flight readers
//!   keep the core they started with; new readers see the new one.
//!
//! Statement evaluation is atomic (eval-then-commit, see
//! `or_lang::session`), so a failed statement — budget rejection, engine
//! error, worker panic — publishes nothing and corrupts nothing; the
//! client can simply retry.
//!
//! ## Graceful shutdown
//!
//! `POST /shutdown` (or [`ServerHandle::shutdown`]) stops the accept loop;
//! already-accepted connections drain through the pool, the workers are
//! joined, and [`Server::serve`] returns.

use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use or_engine::ExecConfig;
use or_lang::parser::{parse_statement, Statement};
use or_lang::session::{
    EngineStats, ExecMode, QueryBudget, Route, ScriptError, Session, SessionCore, SessionError,
    SessionResult,
};

use crate::http::{read_request, write_response, Request};
use crate::json::Json;

/// Recover a lock guard even when a previous holder panicked.  Every
/// shared structure behind these locks is updated atomically (the per-db
/// core is swapped whole under the writer protocol; stats records are
/// plain counters), so a poisoned guard still holds consistent data — a
/// panicking handler thread must not wedge every later request.
fn relock<T>(result: Result<T, std::sync::PoisonError<T>>) -> T {
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}
/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// HTTP worker threads (each serves one connection at a time; engine
    /// queries may fan out further via `exec.workers`).
    pub http_workers: usize,
    /// How statements are executed ([`ExecMode::Engine`] by default).
    pub mode: ExecMode,
    /// Engine configuration for every query, including the server-wide
    /// default budgets ([`ExecConfig::or_budget`],
    /// [`ExecConfig::time_budget`]); per-request budgets tighten these,
    /// never loosen them.
    pub exec: ExecConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            http_workers: 4,
            mode: ExecMode::Engine,
            exec: ExecConfig::default(),
        }
    }
}

/// One resident database.
struct Db {
    /// The serving snapshot.  Readers clone the `Arc` and evaluate
    /// lock-free; writers swap in a new core.
    core: RwLock<Arc<SessionCore>>,
    /// Serializes writers (`let` statements) so commits never race.
    write: Mutex<()>,
    /// Engine/fallback routing counters, recorded only for statements that
    /// fully succeeded.
    stats: Mutex<EngineStats>,
    queries: AtomicU64,
    errors: AtomicU64,
}

struct State {
    dbs: RwLock<BTreeMap<String, Arc<Db>>>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    started: Instant,
}

/// A handle that can stop a running server from another thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Request a graceful shutdown: the accept loop stops, in-flight
    /// connections drain, [`Server::serve`] returns.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// The or-database HTTP service.  See the module docs for the concurrency
/// model and `docs/SERVER.md` for the endpoint reference.
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

impl Server {
    /// Bind to `addr` (e.g. `"127.0.0.1:7171"`, or port `0` for an
    /// ephemeral port — see [`Server::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            state: Arc::new(State {
                dbs: RwLock::new(BTreeMap::new()),
                config,
                shutdown: Arc::new(AtomicBool::new(false)),
                started: Instant::now(),
            }),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown handle, cloneable across threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shutdown: Arc::clone(&self.state.shutdown),
        }
    }

    /// Load (or replace) a named database from an OrQL script (one
    /// statement per line, `--` comments).  The script runs in a private
    /// session under the server's mode/config; its final bindings become
    /// the database's first serving snapshot.
    pub fn load_db(&self, name: &str, script: &str) -> Result<(), ScriptError> {
        let mut session = Session::from_core(
            SessionCore::new(),
            self.state.config.mode,
            self.state.config.exec,
        );
        session.run_script(script)?;
        let db = Arc::new(Db {
            core: RwLock::new(Arc::new(session.into_core())),
            write: Mutex::new(()),
            stats: Mutex::new(EngineStats::default()),
            queries: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        });
        relock(self.state.dbs.write()).insert(name.to_string(), db);
        Ok(())
    }

    /// Names of the resident databases.
    pub fn db_names(&self) -> Vec<String> {
        relock(self.state.dbs.read()).keys().cloned().collect()
    }

    /// Serve until shutdown is requested, then drain and return.  Blocks
    /// the calling thread; use [`Server::handle`] (or `POST /shutdown`)
    /// from elsewhere to stop it.
    pub fn serve(self) -> io::Result<()> {
        let Server { listener, state } = self;
        listener.set_nonblocking(true)?;
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<_> = (0..state.config.http_workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let state = Arc::clone(&state);
                std::thread::spawn(move || loop {
                    let next = relock(rx.lock()).recv();
                    match next {
                        Ok(stream) => handle_connection(&state, stream),
                        // the accept loop dropped the sender: shutdown
                        Err(_) => break,
                    }
                })
            })
            .collect();

        while !state.shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _)) => {
                    // workers only exit when the channel closes, so the
                    // send cannot fail while this loop runs
                    let _ = tx.send(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(e),
            }
        }
        // graceful drain: close the queue, let every worker finish its
        // in-flight connection, then join
        drop(tx);
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Serve one connection: parse, route, respond, close.
fn handle_connection(state: &State, mut stream: TcpStream) {
    // a wedged client must not hold a pool worker hostage
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let request = match read_request(&mut stream) {
        Ok(request) => request,
        Err(_) => {
            let body = error_body("malformed request");
            let _ = write_response(&mut stream, 400, &body);
            return;
        }
    };
    let (status, body) = route(state, &request);
    let _ = write_response(&mut stream, status, &body);
}

fn error_body(message: &str) -> String {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::str(message))]).to_string()
}

fn route(state: &State, request: &Request) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => healthz(state),
        ("GET", "/stats") => stats(state),
        ("POST", "/query") => query(state, &request.body),
        ("POST", "/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            (
                200,
                Json::obj([
                    ("ok", Json::Bool(true)),
                    ("status", Json::str("shutting down")),
                ])
                .to_string(),
            )
        }
        ("GET" | "POST", _) => (404, error_body("no such endpoint")),
        _ => (405, error_body("method not allowed")),
    }
}

fn healthz(state: &State) -> (u16, String) {
    let dbs = relock(state.dbs.read()).len();
    let body = Json::obj([
        ("ok", Json::Bool(true)),
        ("status", Json::str("serving")),
        ("dbs", Json::int(dbs as u64)),
        (
            "uptime_ms",
            Json::int(state.started.elapsed().as_millis() as u64),
        ),
    ]);
    (200, body.to_string())
}

fn stats(state: &State) -> (u16, String) {
    let dbs = relock(state.dbs.read());
    let mut entries: Vec<(String, Json)> = Vec::with_capacity(dbs.len());
    for (name, db) in dbs.iter() {
        let engine_stats = relock(db.stats.lock()).clone();
        let core = relock(db.core.read()).clone();
        entries.push((
            name.clone(),
            Json::Obj(vec![
                (
                    "queries".into(),
                    Json::int(db.queries.load(Ordering::Relaxed)),
                ),
                (
                    "errors".into(),
                    Json::int(db.errors.load(Ordering::Relaxed)),
                ),
                ("engine".into(), Json::int(engine_stats.engine)),
                ("fallback".into(), Json::int(engine_stats.fallback)),
                (
                    "plan_cache_hits".into(),
                    Json::int(engine_stats.plan_cache_hits),
                ),
                (
                    "plan_cache_misses".into(),
                    Json::int(engine_stats.plan_cache_misses),
                ),
                (
                    "columnar_batches".into(),
                    Json::int(engine_stats.columnar_batches),
                ),
                (
                    "scalar_fallback_batches".into(),
                    Json::int(engine_stats.scalar_fallback_batches),
                ),
                (
                    "fallback_reasons".into(),
                    Json::Arr(
                        engine_stats
                            .fallback_reasons
                            .iter()
                            .map(Json::str)
                            .collect(),
                    ),
                ),
                ("relations".into(), Json::int(core.snapshot().len() as u64)),
                ("arena_nodes".into(), Json::int(core.arena_nodes() as u64)),
            ]),
        ));
    }
    let body = Json::obj([("ok", Json::Bool(true)), ("dbs", Json::Obj(entries))]);
    (200, body.to_string())
}

/// `POST /query` body: `{"db": name, "statement": orql, "budget":
/// {"denotations": n, "time_ms": n}}` (budget optional, tightens the
/// server defaults).
fn query(state: &State, body: &str) -> (u16, String) {
    let parsed = match Json::parse(body) {
        Ok(parsed) => parsed,
        Err(e) => return (400, error_body(&format!("invalid request body: {e}"))),
    };
    let Some(db_name) = parsed.get("db").and_then(Json::as_str) else {
        return (400, error_body("missing string field `db`"));
    };
    let Some(statement) = parsed.get("statement").and_then(Json::as_str) else {
        return (400, error_body("missing string field `statement`"));
    };
    let mut budget = QueryBudget::unlimited();
    if let Some(raw) = parsed.get("budget") {
        if let Some(denotations) = raw.get("denotations").and_then(Json::as_u64) {
            budget = budget.with_denotations(denotations);
        }
        if let Some(time_ms) = raw.get("time_ms").and_then(Json::as_u64) {
            budget = budget.with_time(Duration::from_millis(time_ms));
        }
    }
    let db = {
        let dbs = relock(state.dbs.read());
        match dbs.get(db_name) {
            Some(db) => Arc::clone(db),
            None => return (404, error_body(&format!("unknown database `{db_name}`"))),
        }
    };
    db.queries.fetch_add(1, Ordering::Relaxed);
    match run_statement(state, &db, statement, budget) {
        Ok((result, route)) => {
            let route_name = match &route {
                Route::Engine { .. } => "engine",
                Route::Interp => "interp",
                Route::Fallback { .. } => "fallback",
            };
            let mut members = vec![
                ("ok", Json::Bool(true)),
                ("db", Json::str(db_name)),
                ("value", Json::str(result.value.to_string())),
                ("type", Json::str(result.ty.to_string())),
                ("route", Json::str(route_name)),
            ];
            match result.bound {
                Some(bound) => members.push(("bound", Json::str(bound))),
                None => members.push(("bound", Json::Null)),
            }
            (200, Json::obj(members).to_string())
        }
        Err(e) => {
            db.errors.fetch_add(1, Ordering::Relaxed);
            (422, error_body(&e.to_string()))
        }
    }
}

/// Evaluate one statement against a database, with reads lock-free and
/// writes serialized + copy-on-write (see the module docs).
fn run_statement(
    state: &State,
    db: &Db,
    statement: &str,
    budget: QueryBudget,
) -> Result<(SessionResult, Route), SessionError> {
    let config = state.config;
    let is_bind = matches!(parse_statement(statement), Ok(Statement::Bind(..)));
    if is_bind {
        // Writer path: the mutex serializes `let` statements, so this
        // evaluation runs against the latest core with no competing commit
        // (readers are unaffected — they hold their own `Arc`).
        let guard = relock(db.write.lock());
        let core = relock(db.core.read()).clone();
        let evaluated = core.eval_statement(statement, config.mode, config.exec, budget)?;
        let route = evaluated.route.clone();
        let mut next = (*core).clone();
        let result = next.commit(evaluated);
        *relock(db.core.write()) = Arc::new(next);
        drop(guard);
        relock(db.stats.lock()).record(&route);
        Ok((result, route))
    } else {
        // Reader path: grab the current snapshot and evaluate lock-free.
        let core = relock(db.core.read()).clone();
        let evaluated = core.eval_statement(statement, config.mode, config.exec, budget)?;
        let route = evaluated.route.clone();
        relock(db.stats.lock()).record(&route);
        let result = SessionResult {
            value: evaluated.value,
            ty: evaluated.ty,
            bound: None,
        };
        Ok((result, route))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_query_and_stats_without_http() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        server
            .load_db("example", "let db = { (1, 10), (2, 20), (3, 30) }")
            .unwrap();
        assert_eq!(server.db_names(), vec!["example".to_string()]);
        let request = r#"{"db": "example", "statement": "{ fst(p) | p <- db, snd(p) <= 20 }"}"#;
        let (status, body) = query(&server.state, request);
        assert_eq!(status, 200, "{body}");
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(parsed.get("value").unwrap().as_str(), Some("{1, 2}"));
        assert_eq!(parsed.get("route").unwrap().as_str(), Some("engine"));
        // the repeat hits the statement-shape plan cache
        let (status, body) = query(&server.state, request);
        assert_eq!(status, 200, "{body}");
        let (status, body) = stats(&server.state);
        assert_eq!(status, 200);
        let parsed = Json::parse(&body).unwrap();
        let example = parsed.get("dbs").unwrap().get("example").unwrap();
        assert_eq!(example.get("queries").unwrap().as_u64(), Some(2));
        assert_eq!(example.get("engine").unwrap().as_u64(), Some(2));
        assert_eq!(example.get("plan_cache_misses").unwrap().as_u64(), Some(1));
        assert_eq!(example.get("plan_cache_hits").unwrap().as_u64(), Some(1));
        // the benchmark-shaped filter+project runs fully columnar
        assert!(example.get("columnar_batches").unwrap().as_u64() >= Some(1));
        assert_eq!(
            example.get("scalar_fallback_batches").unwrap().as_u64(),
            Some(0)
        );
    }

    #[test]
    fn bind_statements_swap_the_core_and_readers_keep_theirs() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        server.load_db("d", "let db = { 1, 2, 3 }").unwrap();
        let db = {
            let dbs = server.state.dbs.read().unwrap();
            Arc::clone(dbs.get("d").unwrap())
        };
        // a reader captures the pre-write snapshot
        let old_core = db.core.read().unwrap().clone();
        let (status, body) = query(
            &server.state,
            r#"{"db": "d", "statement": "let extra = { x + 10 | x <- db }"}"#,
        );
        assert_eq!(status, 200, "{body}");
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(parsed.get("bound").unwrap().as_str(), Some("extra"));
        // new queries see the new binding …
        let (status, body) = query(
            &server.state,
            r#"{"db": "d", "statement": "{ x | x <- extra }"}"#,
        );
        assert_eq!(status, 200, "{body}");
        // … while the captured reader core does not (snapshot isolation)
        assert!(old_core.value("extra").is_none());
        assert!(old_core.value("db").is_some());
    }

    #[test]
    fn budget_rejections_are_errors_not_corruption() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        server.load_db("d", "let db = { 1, 2, 3 }").unwrap();
        let body = r#"{"db": "d", "statement": "let out = { x | x <- db }",
                       "budget": {"time_ms": 0}}"#;
        let (status, response) = query(&server.state, body);
        assert_eq!(status, 422, "{response}");
        assert!(response.contains("time budget"), "{response}");
        // the failed bind left nothing behind; the same statement retries
        let retry = r#"{"db": "d", "statement": "let out = { x | x <- db }"}"#;
        let (status, response) = query(&server.state, retry);
        assert_eq!(status, 200, "{response}");
        let (_, response) = query(
            &server.state,
            r#"{"db": "d", "statement": "{ x | x <- out }"}"#,
        );
        assert!(response.contains("{1, 2, 3}"), "{response}");
    }

    #[test]
    fn unknown_db_and_bad_bodies_are_client_errors() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let (status, _) = query(&server.state, r#"{"db": "nope", "statement": "1"}"#);
        assert_eq!(status, 404);
        let (status, _) = query(&server.state, "not json");
        assert_eq!(status, 400);
        let (status, _) = query(&server.state, r#"{"statement": "1"}"#);
        assert_eq!(status, 400);
    }
}
