//! # or-server: a concurrent or-database service
//!
//! A long-lived process that keeps named OrQL databases resident — each one
//! a frozen, `Arc`-shared interner arena plus interned relation snapshots —
//! and serves statements over HTTP/JSON from a small thread pool.
//!
//! The service is the concurrency story of the workspace made load-bearing:
//!
//! * reads share one frozen arena snapshot and evaluate lock-free, each
//!   query chaining its own overlay arena on the shared base
//!   (`Interner::with_base`);
//! * writes (`let` statements) are serialized, committed copy-on-write, and
//!   published by swapping an `Arc<SessionCore>` — in-flight readers keep
//!   the snapshot they started with;
//! * per-query denotation and wall-clock budgets act as admission control,
//!   rejecting or-set products too large to serve before (or shortly after)
//!   they start.
//!
//! ## Endpoints
//!
//! | endpoint         | body                                       | result |
//! |------------------|--------------------------------------------|--------|
//! | `GET /healthz`   | —                                          | liveness + db count |
//! | `GET /stats`     | —                                          | per-db counters, routes, arena size |
//! | `POST /query`    | `{"db", "statement", "budget"?}`           | value, type, route |
//! | `POST /shutdown` | —                                          | begins graceful shutdown |
//!
//! See `docs/SERVER.md` for the full endpoint reference and the ownership
//! model, and [`server`] for the concurrency design.
//!
//! ## Example
//!
//! ```no_run
//! use or_server::{Server, ServerConfig};
//!
//! let server = Server::bind("127.0.0.1:7171", ServerConfig::default())?;
//! server.load_db("example", "let db = { (1, 10), (2, 20) }")?;
//! let handle = server.handle(); // call handle.shutdown() from elsewhere
//! server.serve()?; // blocks until shutdown
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod http;
pub mod json;
pub mod server;

pub use crate::json::{Json, JsonError};
pub use crate::server::{Server, ServerConfig, ServerHandle};
