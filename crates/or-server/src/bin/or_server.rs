//! `or-server` — serve named or-databases over HTTP/JSON.
//!
//! ```text
//! or-server [--addr HOST:PORT] [--db NAME=SCRIPT.orql]... [options]
//!
//!   --addr HOST:PORT       bind address (default 127.0.0.1:7171)
//!   --db NAME=PATH         load a database from an OrQL script (repeatable)
//!   --http-workers N       HTTP worker threads (default 4)
//!   --engine-workers N     engine worker threads per query
//!                          (default: OR_ENGINE_WORKERS or available cores)
//!   --or-budget N          default per-query denotation budget
//!   --time-budget-ms N     default per-query wall-clock budget
//!   --interp               serve via the reference interpreter (no engine)
//! ```
//!
//! Databases are loaded before the listener starts serving; a script error
//! aborts startup with a non-zero exit and the failing line.  Stop the
//! server with `POST /shutdown` — it drains in-flight connections and
//! exits cleanly.

use std::process::ExitCode;
use std::time::Duration;

use or_engine::ExecConfig;
use or_lang::ExecMode;
use or_server::{Server, ServerConfig};

fn fail(message: &str) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7171".to_string();
    let mut dbs: Vec<(String, String)> = Vec::new();
    let mut config = ServerConfig {
        exec: ExecConfig::from_env(),
        ..ServerConfig::default()
    };

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--addr" => match value("--addr") {
                Ok(v) => addr = v,
                Err(e) => return fail(&e),
            },
            "--db" => match value("--db") {
                Ok(v) => match v.split_once('=') {
                    Some((name, path)) if !name.is_empty() && !path.is_empty() => {
                        dbs.push((name.to_string(), path.to_string()));
                    }
                    _ => return fail("--db expects NAME=PATH"),
                },
                Err(e) => return fail(&e),
            },
            "--http-workers" => match value("--http-workers").map(|v| v.parse::<usize>()) {
                Ok(Ok(n)) if n >= 1 => config.http_workers = n,
                _ => return fail("--http-workers expects a positive integer"),
            },
            "--engine-workers" => match value("--engine-workers").map(|v| v.parse::<usize>()) {
                Ok(Ok(n)) if n >= 1 => config.exec = config.exec.with_workers(n),
                _ => return fail("--engine-workers expects a positive integer"),
            },
            "--or-budget" => match value("--or-budget").map(|v| v.parse::<u64>()) {
                Ok(Ok(n)) => config.exec = config.exec.with_or_budget(n),
                _ => return fail("--or-budget expects an integer"),
            },
            "--time-budget-ms" => match value("--time-budget-ms").map(|v| v.parse::<u64>()) {
                Ok(Ok(n)) => {
                    config.exec = config.exec.with_time_budget(Duration::from_millis(n));
                }
                _ => return fail("--time-budget-ms expects an integer"),
            },
            "--interp" => config.mode = ExecMode::Interp,
            "--help" | "-h" => {
                println!(
                    "usage: or-server [--addr HOST:PORT] [--db NAME=SCRIPT.orql]... \
                     [--http-workers N] [--engine-workers N] [--or-budget N] \
                     [--time-budget-ms N] [--interp]"
                );
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument `{other}`")),
        }
    }

    let server = match Server::bind(&addr, config) {
        Ok(server) => server,
        Err(e) => return fail(&format!("cannot bind {addr}: {e}")),
    };
    for (name, path) in &dbs {
        let script = match std::fs::read_to_string(path) {
            Ok(script) => script,
            Err(e) => return fail(&format!("cannot read {path}: {e}")),
        };
        if let Err(e) = server.load_db(name, &script) {
            return fail(&format!("{path}:{}: `{}`: {}", e.line, e.source, e.error));
        }
        eprintln!("loaded database `{name}` from {path}");
    }

    let local = match server.local_addr() {
        Ok(local) => local.to_string(),
        Err(_) => addr.clone(),
    };
    eprintln!(
        "or-server listening on {local} ({} database{}: {}); POST /shutdown to stop",
        dbs.len(),
        if dbs.len() == 1 { "" } else { "s" },
        if dbs.is_empty() {
            "none".to_string()
        } else {
            server.db_names().join(", ")
        },
    );
    match server.serve() {
        Ok(()) => {
            eprintln!("or-server: shut down cleanly");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("serve failed: {e}")),
    }
}
