//! Property-based tests of the equational theory of or-NRA: the monad laws
//! for both collection monads, the α-naturality equation from the coherence
//! diagrams, and the soundness of the optimizer — all checked extensionally
//! through the evaluator on random objects.

use proptest::prelude::*;

use or_nra::derived;
use or_nra::morphism::{Morphism as M, Prim};
use or_nra::normalize::{denotation_count, normalize_value};
use or_nra::optimize::simplified;
use or_nra::prelude::eval;
use or_object::generate::{GenConfig, Generator};
use or_object::{Type, Value};

/// A random set of pairs of small integers (the workhorse input shape).
fn pair_set() -> impl Strategy<Value = Value> {
    proptest::collection::vec((0i64..6, 0i64..6), 0..6).prop_map(|pairs| {
        Value::set(
            pairs
                .into_iter()
                .map(|(a, b)| Value::pair(Value::Int(a), Value::Int(b))),
        )
    })
}

/// A random or-set of small integers.
fn int_orset() -> impl Strategy<Value = Value> {
    proptest::collection::vec(0i64..8, 0..6).prop_map(Value::int_orset)
}

/// A random set of or-sets of small integers.
fn set_of_orsets() -> impl Strategy<Value = Value> {
    proptest::collection::vec(proptest::collection::vec(0i64..6, 1..4), 0..4)
        .prop_map(|os| Value::set(os.into_iter().map(Value::int_orset)))
}

fn agree(f: &M, g: &M, v: &Value) -> Result<bool, TestCaseError> {
    let a = eval(f, v).map_err(|e| TestCaseError::fail(format!("lhs failed: {e}")))?;
    let b = eval(g, v).map_err(|e| TestCaseError::fail(format!("rhs failed: {e}")))?;
    Ok(a == b)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Set-monad laws: μ∘η = id, μ∘map(η) = id, μ∘μ = μ∘map(μ),
    /// map(f)∘η = η∘f.
    #[test]
    fn set_monad_laws(v in pair_set()) {
        prop_assert!(agree(&M::Eta.then(M::Mu), &M::Id, &v)?);
        prop_assert!(agree(&M::map(M::Eta).then(M::Mu), &M::Id, &v)?);
        let doubly = Value::set([v.clone(), Value::set(v.elements().unwrap()[..v.elements().unwrap().len() / 2].to_vec())]);
        let triply = Value::set([doubly.clone()]);
        prop_assert!(agree(&M::Mu.then(M::Mu), &M::map(M::Mu).then(M::Mu), &triply)?);
        let f = M::Proj1;
        prop_assert!(agree(&M::Eta.then(M::map(f.clone())), &f.then(M::Eta), &Value::pair(Value::Int(1), Value::Int(2)))?);
    }

    /// Or-set-monad laws, mirrored.
    #[test]
    fn orset_monad_laws(v in int_orset()) {
        prop_assert!(agree(&M::OrEta.then(M::OrMu), &M::Id, &v)?);
        prop_assert!(agree(&M::ormap(M::OrEta).then(M::OrMu), &M::Id, &v)?);
        let nested = Value::orset([v.clone(), Value::int_orset([0, 1])]);
        let doubly_nested = Value::orset([nested.clone(), Value::orset([v.clone()])]);
        prop_assert!(agree(&M::OrMu.then(M::OrMu), &M::ormap(M::OrMu).then(M::OrMu), &doubly_nested)?);
    }

    /// α-naturality (one of the Theorem 4.2 diagrams):
    /// ormap(map(f)) ∘ α = α ∘ map(ormap(f)).
    #[test]
    fn alpha_naturality(v in set_of_orsets()) {
        let f = M::pair(M::Id, M::Id).then(M::Prim(Prim::Plus)); // double each int
        let lhs = M::Alpha.then(M::ormap(M::map(f.clone())));
        let rhs = M::map(M::ormap(f)).then(M::Alpha);
        prop_assert!(agree(&lhs, &rhs, &v)?);
    }

    /// ρ₂ and orρ₂ interact with projections as expected:
    /// map(π₁) ∘ ρ₂ returns copies of the first component.
    #[test]
    fn rho_projections(x in 0i64..10, s in proptest::collection::vec(0i64..10, 0..5)) {
        let v = Value::pair(Value::Int(x), Value::int_set(s.clone()));
        let got = eval(&M::Rho2.then(M::map(M::Proj1)), &v).unwrap();
        let expected = if s.is_empty() { Value::empty_set() } else { Value::int_set([x]) };
        prop_assert_eq!(got, expected);
        let w = Value::pair(Value::Int(x), Value::int_orset(s.clone()));
        let got = eval(&M::OrRho2.then(M::ormap(M::Proj2)), &w).unwrap();
        prop_assert_eq!(got, Value::int_orset(s));
    }

    /// The derived set operators satisfy their defining algebraic identities.
    #[test]
    fn derived_operator_identities(a in proptest::collection::vec(0i64..8, 0..6),
                                   b in proptest::collection::vec(0i64..8, 0..6)) {
        let sa = Value::int_set(a.clone());
        let sb = Value::int_set(b.clone());
        let pair = Value::pair(sa.clone(), sb.clone());
        // intersection ⊆ both arguments, difference ⊆ first, and
        // |intersect| + |difference| = |a|
        let inter = eval(&derived::intersect(), &pair).unwrap();
        let diff = eval(&derived::difference(), &pair).unwrap();
        prop_assert_eq!(
            eval(&derived::subset(), &Value::pair(inter.clone(), sa.clone())).unwrap(),
            Value::Bool(true)
        );
        prop_assert_eq!(
            eval(&derived::subset(), &Value::pair(diff.clone(), sa.clone())).unwrap(),
            Value::Bool(true)
        );
        prop_assert_eq!(
            inter.elements().unwrap().len() + diff.elements().unwrap().len(),
            sa.elements().unwrap().len()
        );
        // union is the join: both arguments are subsets of it
        let uni = eval(&M::Union, &pair).unwrap();
        prop_assert_eq!(
            eval(&derived::subset(), &Value::pair(sa, uni.clone())).unwrap(),
            Value::Bool(true)
        );
        prop_assert_eq!(
            eval(&derived::subset(), &Value::pair(sb, uni)).unwrap(),
            Value::Bool(true)
        );
    }

    /// The optimizer is sound on randomly generated query pipelines over
    /// randomly generated inputs of matching type.
    #[test]
    fn optimizer_soundness_on_generated_objects(seed in any::<u64>()) {
        let config = GenConfig { max_depth: 3, max_width: 3, ..GenConfig::default() };
        let mut gen = Generator::new(seed, config);
        let ty = Type::set(Type::prod(Type::Int, Type::orset(Type::Int)));
        let v = gen.object_of(&ty);
        let queries = vec![
            M::map(M::Proj2).then(M::map(M::ormap(M::Id))).then(M::Id),
            derived::select(M::Proj2.then(derived::or_is_empty()).then(M::Prim(Prim::Not))),
            M::map(M::pair(M::Proj1, M::Proj2)).then(M::map(M::Proj1)).then(M::map(M::Eta)).then(M::Mu),
            M::Eta.then(M::map(derived::exists(M::Proj1.then(M::pair(M::Id, M::constant(Value::Int(3)))).then(M::Eq)))),
        ];
        for q in queries {
            let s = simplified(&q);
            prop_assert!(s.size() <= q.size());
            prop_assert_eq!(eval(&q, &v).unwrap(), eval(&s, &v).unwrap());
        }
    }

    /// Normalization commutes with or-set union at the top level:
    /// normalize(a ∪or b) = normalize(a) ∪or normalize(b) for or-sets.
    #[test]
    fn normalize_distributes_over_or_union(a in set_of_orsets(), b in set_of_orsets()) {
        prop_assume!(denotation_count(&a) <= 256 && denotation_count(&b) <= 256);
        let oa = Value::orset([a.clone()]);
        let ob = Value::orset([b.clone()]);
        let unioned = eval(&M::OrUnion, &Value::pair(oa.clone(), ob.clone())).unwrap();
        let lhs = normalize_value(&unioned);
        let rhs = eval(
            &M::OrUnion,
            &Value::pair(normalize_value(&oa), normalize_value(&ob)),
        )
        .unwrap();
        prop_assert_eq!(lhs, rhs);
    }
}
