//! Column programs: the column-expressible fragment of [`RowProgram`].
//!
//! The physical engine's scalar path evaluates a [`RowProgram`] once per
//! row — an enum-dispatch tree walk that interns every intermediate value
//! (a filter like `snd(p) <= 30` interns one pair and one boolean *per
//! row*).  But the dominant per-row programs are tiny and regular:
//! projection chains, pre-interned constants, and a single comparison on
//! top.  For those, the whole batch can be processed **columnar**: resolve
//! each operand to a column of ids (one pair-spine walk per row, see
//! [`Interner::gather_path`](or_object::intern::Interner::gather_path)),
//! then run a branch-free compare kernel over the plain slices — no
//! intermediate interning, no per-row dispatch.
//!
//! This module is the *analysis*: [`ColumnProgram::of`] abstractly
//! interprets a [`RowProgram`] over the algebra of field paths and
//! constants, and [`ColumnPredicate::of`] recognizes the
//! `compare ∘ ⟨operand, operand⟩` shape (with optional negations) that the
//! engine's filter kernels execute.  Programs outside the fragment return
//! `None` and keep the scalar path — the fallback is **per operator**, so
//! one inexpressible predicate does not de-columnarize the rest of a plan.
//! Execution lives in `or-engine` (`column`/`kernels` modules), which also
//! falls back per *batch* when row shapes fail to match at runtime, so the
//! columnar path always agrees with the scalar path — errors included.

use or_object::intern::{Field, InternId};

use crate::morphism::Prim;
use crate::rowprog::RowProgram;

/// A column-expressible row transformer: what a [`RowProgram`] denotes
/// when it only projects, pairs, and emits pre-interned constants.
///
/// `Path(p)` is the field of the input row at `p` (the empty path is the
/// row itself); `Const` is a compile-time-interned constant; `Pair` builds
/// a row from two column-expressible parts (the one construction that
/// still interns — once per *surviving* row, at the result boundary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnProgram {
    /// The field of the input row at this pair-spine path.
    Path(Vec<Field>),
    /// A constant interned at compile time.
    Const(InternId),
    /// Pair formation from two column-expressible parts.
    Pair(Box<ColumnProgram>, Box<ColumnProgram>),
}

impl ColumnProgram {
    /// Analyze a row program: `Some` iff every operation is
    /// column-expressible (identity, projections, pair formation,
    /// constants, and compositions thereof).
    pub fn of(prog: &RowProgram) -> Option<ColumnProgram> {
        eval_on(prog, ColumnProgram::Path(Vec::new()))
    }

    /// The program as a bare field path, if that is all it is.
    pub fn as_path(&self) -> Option<&[Field]> {
        match self {
            ColumnProgram::Path(p) => Some(p),
            _ => None,
        }
    }

    /// Is this an operand a compare kernel can consume (a gatherable
    /// column or a broadcast constant — not a constructed pair)?
    fn is_operand(&self) -> bool {
        matches!(self, ColumnProgram::Path(_) | ColumnProgram::Const(_))
    }

    /// Can this program error on *some* input row?  Constants and the
    /// identity cannot; a non-empty path errors on rows missing the pair
    /// spine.  Totality is what licenses discarding a branch during
    /// [`project`] simplification without changing error behavior.
    fn is_total(&self) -> bool {
        match self {
            ColumnProgram::Const(_) => true,
            ColumnProgram::Path(p) => p.is_empty(),
            ColumnProgram::Pair(a, b) => a.is_total() && b.is_total(),
        }
    }
}

/// Abstractly interpret `prog` applied to the row denoted by `input`.
fn eval_on(prog: &RowProgram, input: ColumnProgram) -> Option<ColumnProgram> {
    match prog {
        RowProgram::Id => Some(input),
        RowProgram::Proj1 => project(input, Field::Fst),
        RowProgram::Proj2 => project(input, Field::Snd),
        RowProgram::Const(c) => Some(ColumnProgram::Const(*c)),
        RowProgram::Pair(f, g) => {
            let a = eval_on(f, input.clone())?;
            let b = eval_on(g, input)?;
            Some(ColumnProgram::Pair(Box::new(a), Box::new(b)))
        }
        RowProgram::Seq(steps) => steps.iter().try_fold(input, |acc, s| eval_on(s, acc)),
        _ => None,
    }
}

/// Project one field off an abstract value.  A projection off a
/// constructed `Pair` is simplified to the kept branch **only when the
/// discarded branch is total**: the scalar path evaluates both branches
/// per row, so dropping one that could error would diverge from the
/// scalar error behavior.  (The total case is common — query planners
/// scaffold predicates as `compare ∘ … ∘ ⟨!, id⟩`, pairing the row with a
/// unit environment that a projection immediately discards.)  Projections
/// off a `Const` stay out of the fragment.
fn project(input: ColumnProgram, field: Field) -> Option<ColumnProgram> {
    match input {
        ColumnProgram::Path(mut p) => {
            p.push(field);
            Some(ColumnProgram::Path(p))
        }
        ColumnProgram::Pair(a, b) => {
            let (keep, drop) = match field {
                Field::Fst => (a, b),
                Field::Snd => (b, a),
            };
            drop.is_total().then_some(*keep)
        }
        ColumnProgram::Const(_) => None,
    }
}

/// The comparison a columnar filter kernel runs over its operand columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnCmp {
    /// Structural equality — **id equality** under hash-consing, so the
    /// kernel compares raw `u32`s without resolving nodes.
    IdEq,
    /// Integer `<=` (operand columns resolved to `i64` first).
    IntLeq,
    /// Integer `<` (operand columns resolved to `i64` first).
    IntLt,
}

/// A column-expressible filter predicate: `cmp(a, b)`, optionally negated
/// (trailing `not`s in the row program toggle [`ColumnPredicate::negate`]).
/// Operands are restricted to gatherable columns and broadcast constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnPredicate {
    /// The comparison kernel.
    pub cmp: ColumnCmp,
    /// Left operand (a [`ColumnProgram::Path`] or [`ColumnProgram::Const`]).
    pub a: ColumnProgram,
    /// Right operand (same restriction).
    pub b: ColumnProgram,
    /// Invert the comparison's verdict (`not (a <= b)`, `a != b`, …).
    pub negate: bool,
}

impl ColumnPredicate {
    /// Recognize a row program of the shape
    /// `not* ∘ (eq | leq | lt) ∘ ⟨operand, operand⟩` (or the point-free
    /// variant where the comparison reads an already-paired row), with
    /// every operand column-expressible.
    pub fn of(prog: &RowProgram) -> Option<ColumnPredicate> {
        let steps: &[RowProgram] = match prog {
            RowProgram::Seq(steps) => steps,
            single => std::slice::from_ref(single),
        };
        // strip trailing negations
        let mut negate = false;
        let mut end = steps.len();
        while end > 0 && matches!(steps[end - 1], RowProgram::Prim(Prim::Not)) {
            negate = !negate;
            end -= 1;
        }
        if end == 0 {
            return None;
        }
        let cmp = match &steps[end - 1] {
            RowProgram::Eq => ColumnCmp::IdEq,
            RowProgram::Prim(Prim::Leq) => ColumnCmp::IntLeq,
            RowProgram::Prim(Prim::Lt) => ColumnCmp::IntLt,
            _ => return None,
        };
        // everything before the comparison must denote the operand pair
        let operand_pair = steps[..end - 1]
            .iter()
            .try_fold(ColumnProgram::Path(Vec::new()), |acc, s| eval_on(s, acc))?;
        let (a, b) = match operand_pair {
            ColumnProgram::Pair(a, b) => (*a, *b),
            // the comparison reads a pair already present in the row: its
            // components are the row's own fields
            ColumnProgram::Path(p) => {
                let mut fst = p.clone();
                let mut snd = p;
                fst.push(Field::Fst);
                snd.push(Field::Snd);
                (ColumnProgram::Path(fst), ColumnProgram::Path(snd))
            }
            ColumnProgram::Const(_) => return None,
        };
        if !a.is_operand() || !b.is_operand() {
            return None;
        }
        Some(ColumnPredicate { cmp, a, b, negate })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morphism::Morphism as M;
    use or_object::intern::Interner;
    use or_object::Value;

    fn compile(m: &M) -> RowProgram {
        RowProgram::compile(m, &mut Interner::new())
    }

    #[test]
    fn projection_chains_become_paths() {
        let prog = compile(&M::Proj2.then(M::Proj1).then(M::Proj1));
        assert_eq!(
            ColumnProgram::of(&prog),
            Some(ColumnProgram::Path(vec![
                Field::Snd,
                Field::Fst,
                Field::Fst
            ]))
        );
        assert_eq!(
            ColumnProgram::of(&compile(&M::Id)),
            Some(ColumnProgram::Path(Vec::new()))
        );
    }

    #[test]
    fn pair_heads_become_pair_programs() {
        // the equi-join bench projection: (fst(fst(r)), snd(snd(r)))
        let prog = compile(&M::pair(M::Proj1.then(M::Proj1), M::Proj2.then(M::Proj2)));
        let col = ColumnProgram::of(&prog).expect("column-expressible");
        assert_eq!(
            col,
            ColumnProgram::Pair(
                Box::new(ColumnProgram::Path(vec![Field::Fst, Field::Fst])),
                Box::new(ColumnProgram::Path(vec![Field::Snd, Field::Snd])),
            )
        );
    }

    #[test]
    fn constant_compare_predicates_are_recognized() {
        // the e13 filter: snd(p) <= 30
        let m = M::Proj2
            .then(M::pair(M::Id, M::constant(Value::Int(30))))
            .then(M::Prim(Prim::Leq));
        let pred = ColumnPredicate::of(&compile(&m)).expect("columnar");
        assert_eq!(pred.cmp, ColumnCmp::IntLeq);
        assert_eq!(pred.a, ColumnProgram::Path(vec![Field::Snd]));
        assert!(matches!(pred.b, ColumnProgram::Const(_)));
        assert!(!pred.negate);
    }

    #[test]
    fn equality_and_negation_are_recognized() {
        // snd(fst(r)) == fst(snd(r)), the equi-join predicate shape
        let m = M::pair(M::Proj1.then(M::Proj2), M::Proj2.then(M::Proj1)).then(M::Eq);
        let pred = ColumnPredicate::of(&compile(&m)).expect("columnar");
        assert_eq!(pred.cmp, ColumnCmp::IdEq);
        assert!(!pred.negate);
        // a doubly-negated leq folds back to leq
        let m = M::Prim(Prim::Leq)
            .then(M::Prim(Prim::Not))
            .then(M::Prim(Prim::Not));
        let pred = ColumnPredicate::of(&compile(&m)).expect("columnar");
        assert_eq!(pred.cmp, ColumnCmp::IntLeq);
        assert!(!pred.negate);
        // point-free: the row *is* the operand pair
        assert_eq!(pred.a, ColumnProgram::Path(vec![Field::Fst]));
        assert_eq!(pred.b, ColumnProgram::Path(vec![Field::Snd]));
        // single negation survives
        let m = M::pair(M::Proj1, M::Proj2)
            .then(M::Eq)
            .then(M::Prim(Prim::Not));
        let pred = ColumnPredicate::of(&compile(&m)).expect("columnar");
        assert!(pred.negate);
    }

    #[test]
    fn env_scaffolded_predicates_are_recognized() {
        // the session planner's guard shape:
        // Leq ∘ ⟨π₂∘π₂, K20∘!⟩ ∘ ⟨!, id⟩ — the unit environment is
        // discarded by a projection off a constructed pair, which is safe
        // to simplify because the dropped branch (a constant) is total
        let m = M::pair(M::Bang, M::Id)
            .then(M::pair(
                M::Proj2.then(M::Proj2),
                M::Bang.then(M::constant(Value::Int(20))),
            ))
            .then(M::Prim(Prim::Leq));
        let pred = ColumnPredicate::of(&compile(&m)).expect("columnar");
        assert_eq!(pred.cmp, ColumnCmp::IntLeq);
        assert_eq!(pred.a, ColumnProgram::Path(vec![Field::Snd]));
        assert!(matches!(pred.b, ColumnProgram::Const(_)));
    }

    #[test]
    fn out_of_fragment_programs_fall_back() {
        assert_eq!(ColumnProgram::of(&compile(&M::Eta)), None);
        assert_eq!(ColumnProgram::of(&compile(&M::map(M::Proj1))), None);
        assert_eq!(ColumnPredicate::of(&compile(&M::Prim(Prim::Plus))), None);
        // a projection off a constructed pair is not simplified when the
        // discarded branch could error (here: a projection of the row)
        let m = M::pair(M::Proj2, M::Proj1).then(M::Proj1);
        assert_eq!(ColumnProgram::of(&compile(&m)), None);
        // value_leq needs the arena's structural order — not columnar
        let m = M::Prim(Prim::ValueLeq);
        assert_eq!(ColumnPredicate::of(&compile(&m)), None);
    }
}
