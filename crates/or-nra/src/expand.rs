//! Corollary 4.3: `normalize` is expressible inside or-NRA.
//!
//! The conceptual language or-NRA⁺ adds `normalize` as a primitive for
//! convenience, but for every fixed type `t` the morphism
//! `normalize_t : t → nf(t)` is already definable in plain or-NRA.  The
//! construction (the proof of Corollary 4.3) has three stages:
//!
//! 1. **Tagging.** Translate the object `o : t` to `o' : t'` where every set
//!    element is paired with itself as a tag (`{x₁,…,xₙ}' = {(x₁', x₁),…}`).
//!    The tags keep structurally distinct set elements distinct even when the
//!    payloads later collapse to equal or-sets — this is how the multiset
//!    semantics of Section 4 is simulated without multisets.
//! 2. **Mirrored rewriting.** Follow any rewriting of the type `t` to its
//!    normal form; each rewrite step is mirrored on tagged objects by the
//!    primed functions `or_rho₂`, `or_rho₁`, `or_mu`, and
//!    `α' = α ∘ map(or_rho₁)` (which threads the tag through).
//! 3. **Untagging.** Project the tags away from the final or-set of tag-carrying
//!    objects.
//!
//! Experiment E11 compares the expanded morphism with the native primitive.

use or_object::types::{redexes, Redex, RewriteRule};
use or_object::Type;

use crate::derived::{or_rho1, parallel};
use crate::error::TypeError;
use crate::morphism::Morphism as M;

/// The tag-carrying translation `t'` of a type: every set type `{s}` becomes
/// `{s' × s}` (the second component is the tag), products and or-sets are
/// translated componentwise, base types are unchanged.
pub fn tagged_type(t: &Type) -> Type {
    match t {
        Type::Bool | Type::Int | Type::Str | Type::Unit => t.clone(),
        Type::Prod(a, b) => Type::prod(tagged_type(a), tagged_type(b)),
        Type::Set(s) => Type::set(Type::prod(tagged_type(s), (**s).clone())),
        Type::OrSet(s) => Type::orset(tagged_type(s)),
        Type::Bag(s) => Type::bag(Type::prod(tagged_type(s), (**s).clone())),
    }
}

/// The or-NRA morphism `tag_t : t → t'` that attaches tags
/// (`{x}' = {(x', x)}`).
pub fn tagging(t: &Type) -> M {
    match t {
        Type::Bool | Type::Int | Type::Str | Type::Unit => M::Id,
        Type::Prod(a, b) => parallel(tagging(a), tagging(b)),
        Type::Set(s) | Type::Bag(s) => M::map(M::pair(tagging(s), M::Id)),
        Type::OrSet(s) => M::ormap(tagging(s)),
    }
}

/// The or-NRA morphism that removes the tags from a normalized, tag-carrying
/// object whose or-set-free payload type is `strip` (i.e. `nf(t)` without the
/// outer or-set).
pub fn untagging(strip: &Type) -> M {
    match strip {
        Type::Bool | Type::Int | Type::Str | Type::Unit => M::Id,
        Type::Prod(a, b) => parallel(untagging(a), untagging(b)),
        Type::Set(s) | Type::Bag(s) => M::map(M::Proj1.then(untagging(s))),
        Type::OrSet(s) => untagging(s),
    }
}

/// The primed object-level function mirroring one rewrite step at type-path
/// `path` of the (original, untagged) type `t`, acting on tagged objects.
fn primed_dapp(t: &Type, path: &[u8], rule: RewriteRule) -> Result<M, TypeError> {
    if path.is_empty() {
        return Ok(match rule {
            RewriteRule::PairRight => M::OrRho2,
            RewriteRule::PairLeft => or_rho1(),
            RewriteRule::OrFlatten => M::OrMu,
            // α' threads the tag of each set element through the or-set
            RewriteRule::SetAlpha => M::map(or_rho1()).then(M::Alpha),
        });
    }
    let (step, rest) = (path[0], &path[1..]);
    match (t, step) {
        (Type::Prod(a, _), 0) => Ok(M::pair(
            M::Proj1.then(primed_dapp(a, rest, rule)?),
            M::Proj2,
        )),
        (Type::Prod(_, b), 1) => Ok(M::pair(
            M::Proj1,
            M::Proj2.then(primed_dapp(b, rest, rule)?),
        )),
        (Type::Set(s), 0) | (Type::Bag(s), 0) => Ok(M::map(M::pair(
            M::Proj1.then(primed_dapp(s, rest, rule)?),
            M::Proj2,
        ))),
        (Type::OrSet(s), 0) => Ok(M::ormap(primed_dapp(s, rest, rule)?)),
        _ => Err(TypeError::Shape {
            message: format!("invalid rewrite path {path:?} into type {t}"),
        }),
    }
}

/// Build the or-NRA expansion of `normalize_t` following a rewriting of `t`
/// in which each step's redex is selected by `choose` from the available
/// redexes (any choice yields the same function by the Coherence Theorem;
/// different choices yield syntactically different — and differently
/// expensive — morphisms).
pub fn expand_normalize_with<F>(t: &Type, mut choose: F) -> Result<M, TypeError>
where
    F: FnMut(&[Redex]) -> usize,
{
    if !t.contains_orset() {
        return Ok(M::Id);
    }
    let mut morphism = tagging(t);
    let mut cur = t.clone();
    loop {
        let reds = redexes(&cur);
        if reds.is_empty() {
            break;
        }
        let idx = choose(&reds).min(reds.len() - 1);
        let r = &reds[idx];
        let step = primed_dapp(&cur, &r.path, r.rule)?;
        morphism = morphism.then(step);
        cur = or_object::types::apply_rule_at(&cur, &r.path, r.rule).ok_or_else(|| {
            TypeError::Shape {
                message: format!("rule {:?} inapplicable at {:?} in {cur}", r.rule, r.path),
            }
        })?;
    }
    // cur = nf(t) = <strip(t)>
    let strip = t.strip_orsets();
    Ok(morphism.then(M::ormap(untagging(&strip))))
}

/// The expansion of `normalize_t` using the outermost-first rewriting.
pub fn expand_normalize(t: &Type) -> Result<M, TypeError> {
    expand_normalize_with(t, |_| 0)
}

/// The expansion of `normalize_t` using an innermost-first rewriting — the
/// order in which premature or-set collapses would occur without the tags,
/// so this variant is the sharper test of the tagging construction.
pub fn expand_normalize_innermost(t: &Type) -> Result<M, TypeError> {
    expand_normalize_with(t, |reds| reds.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use crate::infer::output_type;
    use crate::normalize::normalize_value_typed;
    use or_object::generate::{GenConfig, Generator};
    use or_object::Value;

    fn check_expansion(v: &Value, t: &Type) {
        let expected = normalize_value_typed(v, t);
        for expansion in [
            expand_normalize(t).unwrap(),
            expand_normalize_innermost(t).unwrap(),
        ] {
            let got = eval(&expansion, v)
                .unwrap_or_else(|e| panic!("expansion failed on {v} : {t}: {e}"));
            assert_eq!(
                got, expected,
                "expansion of normalize at {t} applied to {v}"
            );
        }
    }

    #[test]
    fn expansion_matches_normalize_on_the_section_4_example() {
        let v = Value::pair(
            Value::set([Value::int_orset([1, 2]), Value::int_orset([3])]),
            Value::int_orset([1, 2]),
        );
        let t = Type::prod(Type::set(Type::orset(Type::Int)), Type::orset(Type::Int));
        check_expansion(&v, &t);
    }

    #[test]
    fn tags_prevent_premature_collapse_of_duplicate_orsets() {
        // Both elements of the set normalize to the or-set <1,2>; without the
        // tagging the innermost rewriting would merge them and lose the
        // possibility {1,2}.
        let v = Value::set([
            Value::orset([Value::int_orset([1, 2])]),
            Value::orset([Value::int_orset([1]), Value::int_orset([2])]),
        ]);
        let t = Type::set(Type::orset(Type::orset(Type::Int)));
        check_expansion(&v, &t);
    }

    #[test]
    fn expansion_is_identity_on_orset_free_types() {
        let t = Type::set(Type::prod(Type::Int, Type::Bool));
        assert_eq!(expand_normalize(&t).unwrap(), M::Id);
    }

    #[test]
    fn expansion_type_checks_to_the_normal_form() {
        let t = Type::prod(Type::set(Type::orset(Type::Int)), Type::orset(Type::Bool));
        let m = expand_normalize(&t).unwrap();
        assert!(!m.uses_normalize());
        let out = output_type(&m, &t).unwrap();
        assert_eq!(out, t.normal_form());
    }

    #[test]
    fn expansion_matches_normalize_on_random_objects() {
        let config = GenConfig {
            max_depth: 4,
            max_width: 2,
            ..GenConfig::default()
        };
        let mut gen = Generator::new(77, config);
        for _ in 0..30 {
            let (t, v) = gen.typed_or_object();
            check_expansion(&v, &t);
        }
    }

    #[test]
    fn empty_set_at_orset_type_expands_to_wrapped_empty_set() {
        // normalize_{ {<int>} } ({}) = <{}> — the case where the structural
        // heuristic of the untyped primitive differs (see normalize.rs docs).
        let t = Type::set(Type::orset(Type::Int));
        let m = expand_normalize(&t).unwrap();
        let got = eval(&m, &Value::empty_set()).unwrap();
        assert_eq!(got, Value::orset([Value::empty_set()]));
    }

    #[test]
    fn tagged_type_and_tagging_agree() {
        let t = Type::set(Type::orset(Type::Int));
        let v = Value::set([Value::int_orset([1, 2]), Value::int_orset([3])]);
        let tagged = eval(&tagging(&t), &v).unwrap();
        assert!(tagged.has_type(&tagged_type(&t)));
    }
}
